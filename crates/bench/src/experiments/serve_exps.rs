//! Serving-layer load harness: QPS and latency quantiles of the
//! admission-controlled query engine under simulated concurrent clients.
//!
//! A real extraction pipeline (`entity_store_flow`, one run per entity
//! type and crawl round) fills an [`ExtractionStore`] through
//! `Executor::run_into`; then 1/8/64/512 client threads replay
//! deterministic query streams against it, each query passing through
//! [`AdmissionController::admit_blocking`] before execution. Wall QPS and
//! per-query latency are real measured time — which is why this file is
//! on the lint's wall-clock allowlist — while everything byte-addressable
//! stays deterministic:
//!
//! - every client's query stream is a pure function of `(seed, client
//!   index, query index)` via a splitmix64 mixer (no RNG state, no time);
//! - per-client response digests fold in query order and combine in
//!   client-index order, so the run digest is independent of thread
//!   interleaving;
//! - the sweep runs at two shard counts and the digests must match
//!   (responses are shard-count invariant), and a serial replay against a
//!   snapshot-restored store must reproduce the same digest (responses
//!   survive kill-and-resume byte-identically).

use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use crate::report::ExperimentResult;
use websift_corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
use websift_flow::cluster::ClusterSpec;
use websift_flow::IeResources;
use websift_ner::EntityType;
use websift_observe::json::{array, ObjectWriter};
use websift_observe::Observer;
use websift_pipeline::flows::{entity_store_flow, run_over_documents_into};
use websift_serve::{
    parse_query, AdmissionController, ExtractionStore, QueryEngine, StoreSnapshot,
};

/// Simulated client counts every shard configuration is measured at.
pub const SERVE_CLIENTS: [usize; 4] = [1, 8, 64, 512];

/// Shard counts the sweep covers — two, so the cross-shard digest check
/// always has something to compare.
pub const SERVE_SHARDS: [usize; 2] = [4, 16];

/// The serving cluster: 4 nodes x 16 cores, 16 GB per node. With the
/// per-query footprint below, the admission controller caps in-flight
/// queries at the 64-core budget.
const SERVE_NODES: usize = 4;
const SERVE_NODE_RAM_GB: u64 = 16;
const SERVE_NODE_CORES: usize = 16;
/// Memory charged per in-flight query (64 MB).
const QUERY_MEMORY_BYTES: u64 = 64 << 20;

/// DoP the store-building pipeline runs at. Fixed (not host-derived) so
/// the ingested posting order — and with it every digest below — is the
/// same on every machine.
const INGEST_DOP: usize = 4;

/// Seed for the digest fold; per-client accumulators derive from it.
const DIGEST_SEED: u64 = 0x5EED_BA5E_D16E_5715;

/// One measured (shard count, client count) cell.
#[derive(Debug, Clone)]
pub struct ServePoint {
    pub shards: usize,
    pub clients: usize,
    /// Total queries executed in the cell.
    pub queries: u64,
    pub wall_secs: f64,
    pub qps: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    /// Order-independent-by-construction fold of every response digest.
    pub digest: u64,
}

/// Full harness outcome: the rendered table, raw points, and the two
/// byte-identity verdicts `--check` gates on.
#[derive(Debug)]
pub struct ServeReport {
    pub result: ExperimentResult,
    pub points: Vec<ServePoint>,
    pub docs: usize,
    pub queries_per_client: usize,
    /// Most queries the admission controller ever runs at once.
    pub admission_capacity: usize,
    pub store_keys: usize,
    pub store_postings: u64,
    /// Shard-count-invariant store content digest.
    pub content_digest: u64,
    pub snapshot_bytes: usize,
    /// Response digests equal across shard counts at every client count.
    pub digests_agree: bool,
    /// Serial replay on a snapshot-restored store reproduced the
    /// threaded run's digest.
    pub snapshot_agrees: bool,
}

/// splitmix64: the standard 64-bit finalizing mixer. Stateless, so a
/// query stream is addressable by `(seed, client, index)` alone.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fold_digest(acc: u64, x: u64) -> u64 {
    splitmix64(acc ^ x.rotate_left(17))
}

/// Builds the store the way production would: the entity extraction
/// pipeline runs once per entity type and crawl round, draining its
/// `store:` sink into the store via `run_into`.
pub fn build_store(docs: usize, seed: u64, shards: usize) -> ExtractionStore {
    let lexicon = Arc::new(Lexicon::generate(LexiconScale::tiny()));
    let resources = IeResources::quick_for_tests(LexiconScale::tiny());
    let documents =
        Generator::with_lexicon(CorpusKind::Medline, seed, lexicon).documents(docs.max(2));
    let mut store = ExtractionStore::new("bench", shards);
    // Two crawl rounds: the first half of the corpus lands in round 0,
    // the second in round 1, so `round` query clauses have data to hit.
    let half = documents.len() / 2;
    for entity in EntityType::all() {
        let plan = entity_store_flow(&resources, entity, "bench");
        store.set_round(0);
        run_over_documents_into(&plan, &documents[..half], INGEST_DOP, &mut store)
            .expect("serve ingest flow");
        store.set_round(1);
        run_over_documents_into(&plan, &documents[half..], INGEST_DOP, &mut store)
            .expect("serve ingest flow");
    }
    store
}

/// Rebuilds `src` at a different shard count by walking it in global key
/// order. Content digest is shard-count invariant, so this is exact.
pub fn reshard(src: &ExtractionStore, shards: usize) -> ExtractionStore {
    let mut out = ExtractionStore::new(src.name(), shards);
    for (key, postings) in src.iter() {
        for p in postings {
            out.insert(key.clone(), *p);
        }
    }
    out.set_round(src.round());
    out
}

/// The query vocabulary mined from the store itself: same seed, same
/// store, same vocabulary — no side channel. Multi-token entity names
/// are skipped (the query grammar takes one token per entity).
struct Vocab {
    entities: Vec<String>,
    corpora: Vec<String>,
}

fn vocab(store: &ExtractionStore) -> Vocab {
    let mut entities = BTreeSet::new();
    let mut corpora = BTreeSet::new();
    for (key, _) in store.iter() {
        if !key.entity.is_empty() && !key.entity.contains(char::is_whitespace) {
            entities.insert(key.entity.clone());
        }
        if !key.corpus.is_empty() {
            corpora.insert(key.corpus.clone());
        }
    }
    Vocab {
        entities: entities.into_iter().collect(),
        corpora: corpora.into_iter().collect(),
    }
}

/// The `i`-th query of client `client` — a query *string*, so the load
/// path exercises the untrusted-input parser, not just the engine.
fn client_query(v: &Vocab, seed: u64, client: usize, i: usize) -> String {
    let mix =
        |salt: u64| splitmix64(seed ^ ((client as u64) << 24) ^ ((i as u64) << 4) ^ salt);
    let ent = |salt: u64| &v.entities[(mix(salt) % v.entities.len() as u64) as usize];
    let corp = |salt: u64| &v.corpora[(mix(salt) % v.corpora.len() as u64) as usize];
    match mix(0) % 8 {
        0 | 1 => format!("lookup {}", ent(1)),
        2 => format!("lookup {} in {}", ent(1), corp(2)),
        3 => format!("lookup {} round {}", ent(1), mix(3) % 2),
        4 => format!("cooccur {} {}", ent(1), ent(2)),
        5 => format!("cooccur {} {} in {}", ent(1), ent(2), corp(2)),
        6 => format!("stats {}", ent(1)),
        _ => format!("stats {} top {}", ent(1), 1 + mix(3) % 4),
    }
}

/// One client's whole stream, serially: latencies out, digest out. The
/// threaded cell runs this per thread; the snapshot check runs it
/// serially — both must produce the same digest.
fn run_client(
    engine: &QueryEngine<'_>,
    ctl: Option<&AdmissionController>,
    v: &Vocab,
    seed: u64,
    client: usize,
    queries: usize,
) -> (Vec<f64>, u64) {
    let mut latencies = Vec::with_capacity(queries);
    let mut digest = splitmix64(DIGEST_SEED ^ client as u64);
    for i in 0..queries {
        let text = client_query(v, seed, client, i);
        let query = parse_query(&text).expect("bench-generated queries are well-formed");
        let permit = ctl.map(|c| c.admit_blocking());
        // lint:allow(wall_clock): per-query latency is the measurement this harness exists for
        let t = Instant::now();
        let response = engine.execute(&query, (client * queries + i) as f64);
        latencies.push(t.elapsed().as_secs_f64());
        drop(permit);
        digest = fold_digest(digest, response.digest());
    }
    (latencies, digest)
}

/// Runs one (store, client count) cell with real threads, every query
/// gated by the admission controller. Returns wall seconds, all
/// latencies, and the interleaving-independent run digest.
fn run_cell(
    engine: &QueryEngine<'_>,
    ctl: &AdmissionController,
    v: &Vocab,
    seed: u64,
    clients: usize,
    queries_per_client: usize,
) -> (f64, Vec<f64>, u64) {
    // lint:allow(wall_clock): cell wall time is the QPS denominator
    let t0 = Instant::now();
    let per_client: Vec<(Vec<f64>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                scope.spawn(move || {
                    run_client(engine, Some(ctl), v, seed, client, queries_per_client)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::with_capacity(clients * queries_per_client);
    let mut digest = DIGEST_SEED;
    for (lats, client_digest) in per_client {
        latencies.extend(lats);
        digest = fold_digest(digest, client_digest);
    }
    (wall, latencies, digest)
}

/// The serial (no threads, no admission) digest of the same workload —
/// identical to [`run_cell`]'s by construction.
fn replay_digest(
    engine: &QueryEngine<'_>,
    v: &Vocab,
    seed: u64,
    clients: usize,
    queries_per_client: usize,
) -> u64 {
    let mut digest = DIGEST_SEED;
    for client in 0..clients {
        let (_, d) = run_client(engine, None, v, seed, client, queries_per_client);
        digest = fold_digest(digest, d);
    }
    digest
}

fn quantile_ms(sorted_secs: &[f64], q: f64) -> f64 {
    if sorted_secs.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_secs.len() - 1) as f64 * q).round() as usize;
    sorted_secs[idx] * 1e3
}

/// Runs the standard sweep: [`SERVE_SHARDS`] x [`SERVE_CLIENTS`].
pub fn serve(docs: usize, queries_per_client: usize, seed: u64) -> ServeReport {
    serve_at(docs, queries_per_client, seed, &SERVE_SHARDS, &SERVE_CLIENTS)
}

/// Runs the sweep at explicit shard and client counts (`--quick` uses a
/// shorter client list; the shard list must keep >= 2 entries for the
/// cross-shard identity check to mean anything).
pub fn serve_at(
    docs: usize,
    queries_per_client: usize,
    seed: u64,
    shard_counts: &[usize],
    client_counts: &[usize],
) -> ServeReport {
    assert!(shard_counts.len() >= 2, "need >= 2 shard counts to cross-check digests");
    let base = build_store(docs, seed, shard_counts[0]);
    let v = vocab(&base);
    assert!(!v.entities.is_empty(), "ingest produced no queryable entities");

    let obs = Observer::new();
    let cluster = ClusterSpec::local(SERVE_NODES, SERVE_NODE_RAM_GB, SERVE_NODE_CORES);
    let ctl = AdmissionController::new(cluster, QUERY_MEMORY_BYTES)
        .expect("serve bench cluster admits a single query");
    let admission_capacity = ctl.capacity();

    let mut result = ExperimentResult::new(
        "Serving",
        "Query QPS and latency vs concurrent clients, per shard count",
        &["shards", "clients", "queries", "wall s", "QPS", "p50 ms", "p99 ms", "digest"],
    );

    let mut points: Vec<ServePoint> = Vec::new();
    for &shards in shard_counts {
        let store = reshard(&base, shards);
        let engine = QueryEngine::new(&store, &obs);
        // Warm-up, untimed: first-touch of lazily faulted pages.
        run_client(&engine, None, &v, seed, 0, queries_per_client.min(4));
        for &clients in client_counts {
            let (wall, mut lats, digest) =
                run_cell(&engine, &ctl, &v, seed, clients, queries_per_client);
            lats.sort_by(f64::total_cmp);
            let queries = (clients * queries_per_client) as u64;
            let qps = if wall > 0.0 { queries as f64 / wall } else { 0.0 };
            let point = ServePoint {
                shards,
                clients,
                queries,
                wall_secs: wall,
                qps,
                p50_ms: quantile_ms(&lats, 0.50),
                p99_ms: quantile_ms(&lats, 0.99),
                digest,
            };
            result.row(&[
                shards.to_string(),
                clients.to_string(),
                queries.to_string(),
                format!("{:.3}", point.wall_secs),
                format!("{:.0}", point.qps),
                format!("{:.3}", point.p50_ms),
                format!("{:.3}", point.p99_ms),
                format!("{:016x}", point.digest),
            ]);
            points.push(point);
        }
    }

    // Cross-shard identity: at every client count, the digests of the
    // two (or more) shard configurations must be equal.
    let digests_agree = client_counts.iter().all(|&clients| {
        let mut per_shard =
            points.iter().filter(|p| p.clients == clients).map(|p| p.digest);
        let first = per_shard.next();
        per_shard.all(|d| Some(d) == first)
    });

    // Snapshot/resume identity: capture, restore, and serially replay
    // the smallest cell; the digest must match the threaded run's.
    let snapshot = StoreSnapshot::capture(&base);
    let restored = snapshot.restore().expect("snapshot restores");
    let replay_clients = client_counts.first().copied().unwrap_or(1);
    let restored_engine = QueryEngine::new(&restored, &obs);
    let replayed =
        replay_digest(&restored_engine, &v, seed, replay_clients, queries_per_client);
    let snapshot_agrees = points
        .iter()
        .find(|p| p.shards == shard_counts[0] && p.clients == replay_clients)
        .is_some_and(|p| p.digest == replayed);

    result.note(format!(
        "{docs} docs ingested via run_into ({} posting-list keys, {} postings, content \
         digest {:016x}); {queries_per_client} queries/client; admission caps in-flight \
         queries at {admission_capacity} ({SERVE_NODES}x{SERVE_NODE_CORES} cores, \
         {} MB/query); digests {} across shard counts and {} a serial replay on a \
         snapshot-restored store ({} snapshot bytes)",
        base.key_count(),
        base.posting_count(),
        base.content_digest(),
        QUERY_MEMORY_BYTES >> 20,
        if digests_agree { "agree" } else { "DISAGREE" },
        if snapshot_agrees { "match" } else { "MISMATCH" },
        snapshot.size_bytes(),
    ));

    ServeReport {
        result,
        points,
        docs,
        queries_per_client,
        admission_capacity,
        store_keys: base.key_count(),
        store_postings: base.posting_count(),
        content_digest: base.content_digest(),
        snapshot_bytes: snapshot.size_bytes(),
        digests_agree,
        snapshot_agrees,
    }
}

/// Machine-readable report for `BENCH_SERVE.json`. Host parallelism and
/// the sweep's shard/client grid are stamped in so wall-clock numbers
/// can be compared across machines.
pub fn serve_json(report: &ServeReport) -> String {
    let points = array(report.points.iter().map(|p| {
        ObjectWriter::new()
            .u64("shards", p.shards as u64)
            .u64("clients", p.clients as u64)
            .u64("queries", p.queries)
            .f64("wall_secs", p.wall_secs)
            .f64("qps", p.qps)
            .f64("p50_ms", p.p50_ms)
            .f64("p99_ms", p.p99_ms)
            .u64("digest", p.digest)
            .finish()
    }));
    let mut shard_counts: Vec<u64> = report.points.iter().map(|p| p.shards as u64).collect();
    shard_counts.dedup();
    let mut client_counts: Vec<u64> =
        report.points.iter().map(|p| p.clients as u64).collect();
    client_counts.sort_unstable();
    client_counts.dedup();
    ObjectWriter::new()
        .str("experiment", "serve")
        .u64("docs", report.docs as u64)
        .u64("queries_per_client", report.queries_per_client as u64)
        .u64("host_logical_cores", crate::report::host_logical_cores())
        .u64("admission_capacity", report.admission_capacity as u64)
        .u64("store_keys", report.store_keys as u64)
        .u64("store_postings", report.store_postings)
        .u64("content_digest", report.content_digest)
        .u64("snapshot_bytes", report.snapshot_bytes as u64)
        .raw("digests_agree", if report.digests_agree { "true" } else { "false" })
        .raw("snapshot_agrees", if report.snapshot_agrees { "true" } else { "false" })
        .raw("shard_counts", &array(shard_counts.iter().map(|s| s.to_string())))
        .raw("client_counts", &array(client_counts.iter().map(|c| c.to_string())))
        .raw("points", &points)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_smoke_reports_every_cell_and_digests_hold() {
        let report = serve_at(10, 3, 7, &[2, 8], &[1, 4]);
        assert_eq!(report.points.len(), 2 * 2);
        assert!(report.points.iter().all(|p| p.queries == 3 * p.clients as u64));
        assert!(report.points.iter().all(|p| p.qps > 0.0));
        assert!(report.digests_agree, "shard counts produced different responses");
        assert!(report.snapshot_agrees, "snapshot/replay changed responses");
        assert!(report.store_postings > 0);
        let json = serve_json(&report);
        assert!(json.contains("\"experiment\":\"serve\""));
        assert!(json.contains("\"digests_agree\":true"));
        assert!(json.contains("\"snapshot_agrees\":true"));
        assert!(json.contains("\"host_logical_cores\""));
    }

    #[test]
    fn query_streams_are_reproducible_and_parse() {
        let store = build_store(8, 11, 4);
        let v = vocab(&store);
        for client in 0..3 {
            for i in 0..20 {
                let a = client_query(&v, 42, client, i);
                let b = client_query(&v, 42, client, i);
                assert_eq!(a, b);
                parse_query(&a).expect("generated query parses");
            }
        }
        // different clients see different streams
        let a = client_query(&v, 42, 0, 0);
        let b = client_query(&v, 42, 1, 0);
        let c = client_query(&v, 42, 2, 0);
        assert!(a != b || b != c, "client streams should diverge");
    }

    #[test]
    fn resharding_preserves_content() {
        let store = build_store(8, 13, 4);
        let wide = reshard(&store, 16);
        assert_eq!(store.content_digest(), wide.content_digest());
        assert_eq!(store.posting_count(), wide.posting_count());
    }
}
