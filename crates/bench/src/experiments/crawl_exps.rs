//! Crawl-side experiments: Table 1, §4.1 crawl statistics, classifier and
//! boilerplate quality, Table 2, and the §5 precision-vs-yield trade-off.

use crate::report::ExperimentResult;
use rand::rngs::StdRng;
use rand::SeedableRng;
use websift_corpus::{CorpusKind, Generator, HtmlConfig, Lexicon, SearchCategory};
use websift_crawler::{
    default_engines, evaluate_extraction, generate_seeds, train_focus_classifier,
    BoilerplateDetector, CrawlConfig, FocusedCrawler, NaiveBayes,
};
use websift_pipeline::paper;
use websift_stats::eval::kfold_indices;
use websift_stats::ConfusionMatrix;
use websift_web::{pagerank, PageId, SimulatedWeb, WebGraph, WebGraphConfig};

/// The default classifier threshold used by the crawl experiments (the
/// paper's "geared towards high precision" configuration).
pub const HIGH_PRECISION_THRESHOLD: f64 = 4.0;

fn fmt(v: f64) -> String {
    format!("{v:.3}")
}

/// Table 1: seed keyword categories, with our scaled query sets.
pub fn table1(lexicon: &Lexicon) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Table 1",
        "Seed keyword categories",
        &["category", "paper total", "paper 1st crawl", "example terms (ours)"],
    );
    for cat in SearchCategory::all() {
        let (total, first) = cat.paper_counts();
        let examples = lexicon.search_terms(cat, 3).join(", ");
        result.row(&[
            cat.name().to_string(),
            total.to_string(),
            first.to_string(),
            examples,
        ]);
    }
    result.note("paper examples: cancer/chronic pain; thymoma/nausea/cough; GAD-67/Aspirin; BRCA/Cactin");
    result
}

/// Builds the standard simulated web for the crawl experiments.
pub fn standard_web() -> SimulatedWeb {
    SimulatedWeb::new(WebGraph::generate(WebGraphConfig::default()))
}

/// §2.2 + §4.1: seed generation (small vs large query sets) and the full
/// focused crawl with its statistics.
pub fn crawl(web: &SimulatedWeb, lexicon: &Lexicon, max_pages: usize) -> Vec<ExperimentResult> {
    // --- seed generation, two runs as in §2.2
    // The first run's keywords were "too general": engines answer with
    // authoritative portal front pages, which the classifier (or, for our
    // link-dense front pages, the length filter) rejects immediately.
    let small_queries: Vec<String> = lexicon
        .search_terms(SearchCategory::General, 16)
        .into_iter()
        .map(|t| t.to_lowercase())
        .collect();
    let large_queries: Vec<String> = lexicon
        .search_terms(SearchCategory::General, 40)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Disease, 300))
        .chain(lexicon.search_terms(SearchCategory::Drug, 250))
        .chain(lexicon.search_terms(SearchCategory::Gene, 400))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds_small = generate_seeds(web, &mut default_engines(web), &small_queries);
    let seeds_large = generate_seeds(web, &mut default_engines(web), &large_queries);

    let mut seed_result = ExperimentResult::new(
        "§2.2",
        "Seed generation (two runs)",
        &["run", "queries", "seed URLs", "paper seed URLs"],
    );
    seed_result.row(&[
        "first".into(),
        small_queries.len().to_string(),
        seeds_small.urls.len().to_string(),
        paper::SEEDS_FIRST.to_string(),
    ]);
    seed_result.row(&[
        "second".into(),
        large_queries.len().to_string(),
        seeds_large.urls.len().to_string(),
        paper::SEEDS_SECOND.to_string(),
    ]);
    seed_result.note("absolute counts scale with the simulated web; the ratio and the frontier effect below are the reproduced shapes");

    // --- crawl with the small seed set: expected to die early
    let classifier = train_focus_classifier(300, HIGH_PRECISION_THRESHOLD, 77);
    let config = CrawlConfig {
        max_pages,
        threads: 8,
        ..CrawlConfig::default()
    };
    let report_small =
        FocusedCrawler::new(web, classifier.clone(), config).crawl(seeds_small.urls.clone());

    // --- the main crawl with the large seed set
    let mut crawler = FocusedCrawler::new(web, classifier, config);
    let report = crawler.crawl(seeds_large.urls.clone());

    let mut crawl_result = ExperimentResult::new(
        "§4.1",
        "Focused crawl statistics",
        &["metric", "measured", "paper"],
    );
    crawl_result.row(&[
        "pages downloaded+classified (small seeds)".into(),
        (report_small.relevant.len() + report_small.irrelevant.len()).to_string(),
        "crawl 'terminated quickly'".into(),
    ]);
    crawl_result.row(&[
        "frontier exhausted (small seeds)".into(),
        report_small.frontier_exhausted.to_string(),
        "true".into(),
    ]);
    crawl_result.row(&[
        "pages downloaded+classified".into(),
        (report.relevant.len() + report.irrelevant.len()).to_string(),
        "~21M".into(),
    ]);
    crawl_result.row(&[
        "harvest rate (pages)".into(),
        fmt(report.harvest_rate()),
        fmt(paper::HARVEST_RATE),
    ]);
    crawl_result.row(&[
        "harvest rate (bytes)".into(),
        fmt(report.harvest_rate_bytes()),
        "0.381 (373/980 GB)".into(),
    ]);
    let (mime, length, lang) = report.filter_stats.reduction_fractions();
    crawl_result.row(&["MIME-filter reduction".into(), fmt(mime), fmt(paper::FILTER_REDUCTIONS.0)]);
    crawl_result.row(&["language-filter reduction".into(), fmt(lang), fmt(paper::FILTER_REDUCTIONS.1)]);
    crawl_result.row(&["length-filter reduction".into(), fmt(length), fmt(paper::FILTER_REDUCTIONS.2)]);
    crawl_result.row(&[
        "download rate (docs/simulated s)".into(),
        format!("{:.1}", report.docs_per_sec()),
        "3-4".into(),
    ]);
    crawl_result.row(&[
        "spider-trap URLs rejected".into(),
        report.trap_rejected.to_string(),
        "n/a (guarded)".into(),
    ]);
    crawl_result.row(&[
        "frontier exhausted".into(),
        report.frontier_exhausted.to_string(),
        "true ('crawl frontier eventually emptied')".into(),
    ]);
    vec![seed_result, crawl_result]
}

/// §4.1: Naive-Bayes classifier quality — 10-fold cross-validation on its
/// training corpus, then the 200-page crawl sample against gold labels.
pub fn classifier(web: &SimulatedWeb) -> ExperimentResult {
    // training corpus: Medline-like (relevant) vs irrelevant-web docs
    let relevant: Vec<String> = Generator::new(CorpusKind::Medline, 41)
        .documents(200)
        .into_iter()
        .map(|d| d.body)
        .collect();
    let irrelevant: Vec<String> = Generator::new(CorpusKind::IrrelevantWeb, 42)
        .documents(200)
        .into_iter()
        .map(|d| d.body)
        .collect();
    let mut docs: Vec<(&str, bool)> = relevant
        .iter()
        .map(|d| (d.as_str(), true))
        .chain(irrelevant.iter().map(|d| (d.as_str(), false)))
        .collect();
    // interleave classes so contiguous folds stay balanced
    docs.sort_by_key(|&(d, _)| d.len());

    let mut cv = ConfusionMatrix::default();
    for (train_idx, test_idx) in kfold_indices(docs.len(), 10) {
        let model = NaiveBayes::train(train_idx.iter().map(|&i| docs[i]))
            .with_threshold(HIGH_PRECISION_THRESHOLD);
        for &i in &test_idx {
            let (text, gold) = docs[i];
            cv.record(model.is_relevant(text), gold);
        }
    }

    // crawl sample: 100 relevant + 100 irrelevant *web* pages (per gold)
    let model = train_focus_classifier(300, HIGH_PRECISION_THRESHOLD, 77);
    let mut sample = ConfusionMatrix::default();
    let graph = web.graph();
    let mut taken_rel = 0;
    let mut taken_irr = 0;
    for pid in 0..graph.num_pages() as u32 {
        let url = graph.url_of(PageId(pid));
        let Some(doc) = web.gold_document(&url) else { continue };
        let gold = graph.page(PageId(pid)).relevant;
        if gold && taken_rel < 100 {
            taken_rel += 1;
        } else if !gold && taken_irr < 100 {
            taken_irr += 1;
        } else {
            continue;
        }
        sample.record(model.is_relevant(&doc.body), gold);
        if taken_rel == 100 && taken_irr == 100 {
            break;
        }
    }

    let mut result = ExperimentResult::new(
        "§4.1 classifier",
        "Focus classifier quality",
        &["evaluation", "precision", "recall", "paper P", "paper R"],
    );
    result.row(&[
        "10-fold CV (training corpus)".into(),
        fmt(cv.precision()),
        fmt(cv.recall()),
        fmt(paper::CLASSIFIER_CV.0),
        fmt(paper::CLASSIFIER_CV.1),
    ]);
    result.row(&[
        "200-page crawl sample".into(),
        fmt(sample.precision()),
        fmt(sample.recall()),
        fmt(paper::CLASSIFIER_SAMPLE.0),
        fmt(paper::CLASSIFIER_SAMPLE.1),
    ]);
    result.note("high-precision threshold configuration, as in the paper");
    result
}

/// §4.1: boilerplate detection — a generated gold set (the 1,906-page
/// analogue) and a crawl sample (content pages of the simulated web).
pub fn boilerplate(web: &SimulatedWeb) -> ExperimentResult {
    let detector = BoilerplateDetector::default();
    // gold set: wrapped pages with known net text, defects but not severe
    let mut rng = StdRng::seed_from_u64(1906);
    let gen = Generator::new(CorpusKind::RelevantWeb, 19);
    let cfg = HtmlConfig {
        p_severe: 0.0,
        ..HtmlConfig::default()
    };
    let mut gp = Vec::new();
    let mut gr = Vec::new();
    let mut crashes = 0usize;
    for i in 0..190 {
        let doc = gen.document(i);
        let paragraphs: Vec<String> = doc.body.split("\n\n").map(str::to_string).collect();
        let page = websift_corpus::wrap_page(&doc.title, &paragraphs, &[], &cfg, &mut rng);
        match detector.extract(&page.html) {
            Ok(net) => {
                let (p, r) = evaluate_extraction(&net, &page.net_text);
                gp.push(p);
                gr.push(r);
            }
            Err(_) => crashes += 1,
        }
    }

    // crawl sample: real pages from the simulated web incl. severe markup
    let graph = web.graph();
    let mut sp = Vec::new();
    let mut sr = Vec::new();
    let mut sample_crashes = 0usize;
    let mut taken = 0;
    for pid in 0..graph.num_pages() as u32 {
        if taken >= 200 {
            break;
        }
        let url = graph.url_of(PageId(pid));
        let Some(gold) = web.gold_net_text(&url) else { continue };
        let Ok(resp) = web.fetch(&url) else { continue };
        taken += 1;
        let html = String::from_utf8_lossy(&resp.body);
        match detector.extract(&html) {
            Ok(net) => {
                let (p, r) = evaluate_extraction(&net, &gold);
                if net.is_empty() {
                    sample_crashes += 1;
                } else {
                    sp.push(p);
                    sr.push(r);
                }
            }
            Err(_) => sample_crashes += 1,
        }
    }

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut result = ExperimentResult::new(
        "§4.1 boilerplate",
        "Boilerplate detection quality",
        &["evaluation", "precision", "recall", "paper P", "paper R", "crashes/empty"],
    );
    result.row(&[
        format!("gold set ({} pages)", gp.len() + crashes),
        fmt(mean(&gp)),
        fmt(mean(&gr)),
        fmt(paper::BOILERPLATE_GOLD.0),
        fmt(paper::BOILERPLATE_GOLD.1),
        crashes.to_string(),
    ]);
    result.row(&[
        format!("crawl sample ({taken} pages)"),
        fmt(mean(&sp)),
        fmt(mean(&sr)),
        fmt(paper::BOILERPLATE_SAMPLE.0),
        fmt(paper::BOILERPLATE_SAMPLE.1),
        sample_crashes.to_string(),
    ]);
    result.note("recall loss concentrates in tables/lists (short blocks), as in the paper");
    result
}

/// Table 2: top domains of the crawled link graph by PageRank.
pub fn table2(crawler: &mut FocusedCrawler<'_>, top: usize) -> ExperimentResult {
    let scores = pagerank(crawler.linkdb.adjacency(), 0.85, 40);
    let (groups, names) = crawler.linkdb.host_groups();
    let host_scores = websift_web::pagerank::aggregate_by_group(&scores, &groups, names.len());
    let ranked = websift_web::pagerank::top_k(&host_scores, top);
    let mut result = ExperimentResult::new(
        "Table 2",
        format!("Top {top} domains by PageRank").as_str(),
        &["rank", "domain", "pagerank"],
    );
    for (i, &h) in ranked.iter().enumerate() {
        result.row(&[
            (i + 1).to_string(),
            names[h].clone(),
            format!("{:.5}", host_scores[h]),
        ]);
    }
    result.note("paper's list mixes clearly biomedical domains with hubs (wikipedia, blogger, slideshare) and the seed engines' own hosts (arxiv, nature) — the same classes appear here");
    result
}

/// §5: the precision-vs-yield trade-off — sweeping the classifier
/// threshold and measuring crawl yield, harvest rate, and precision.
pub fn tradeoff(web: &SimulatedWeb, seeds: &[websift_web::Url], max_pages: usize) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "§5 trade-off",
        "Classifier threshold: precision vs yield",
        &["threshold", "relevant pages (yield)", "harvest rate", "precision vs gold", "frontier exhausted"],
    );
    for threshold in [-8.0, -3.0, 0.0, 3.0, 8.0, 15.0] {
        let classifier = train_focus_classifier(300, threshold, 77);
        let mut crawler = FocusedCrawler::new(
            web,
            classifier,
            CrawlConfig {
                max_pages,
                threads: 8,
                ..CrawlConfig::default()
            },
        );
        let report = crawler.crawl(seeds.to_vec());
        let gold_true = report
            .relevant
            .iter()
            .filter(|p| p.gold_relevant == Some(true))
            .count();
        let precision = gold_true as f64 / report.relevant.len().max(1) as f64;
        result.row(&[
            format!("{threshold:+.0}"),
            report.relevant.len().to_string(),
            fmt(report.harvest_rate()),
            fmt(precision),
            report.frontier_exhausted.to_string(),
        ]);
    }
    result.note("low thresholds buy yield with lower precision; high thresholds exhaust the frontier sooner — the open question of §5");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_categories() {
        use websift_corpus::LexiconScale;
        let lexicon = Lexicon::generate(LexiconScale::tiny());
        let t = table1(&lexicon);
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("gene-specific"));
    }
}
