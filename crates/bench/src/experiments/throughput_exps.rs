//! Wall-clock throughput harness for the fused executor (the perf side
//! of the fusion PR — everything else about fusion is byte-identity).
//!
//! Drives the Fig-4/5 linguistic pipeline over a generated relevant-web
//! corpus and measures **real** records/second at DoP {1, 4, 8, 16} for
//! three engines:
//!
//! - `fused` — the current executor, operator fusion on (default);
//! - `unfused` — the same executor with `fusion: false`: one physical
//!   pass per plan node, but still ownership-passing;
//! - `baseline` — an emulation of the pre-fusion system's per-record
//!   costs: every operator deep-clones its input records (the old
//!   clone-out-of-the-buffer dataflow, re-allocating string contents the
//!   way `String` fields did), walks `approx_bytes` over both input
//!   and output (the old two-traversal byte accounting), and re-makes
//!   the per-record full-text copy the seed UDFs opened with.
//!
//! Simulated seconds are pure accounting and identical across all three
//! by construction; this module is about the wall clock, which is why it
//! is on the lint's wall-clock allowlist.

use std::collections::HashMap;
use std::time::Instant;

use crate::report::ExperimentResult;
use websift_corpus::{CorpusKind, Generator};
use websift_flow::{
    ExecutionConfig, Executor, LogicalPlan, NodeOp, OpFunc, Operator, Record, Value,
};
use websift_observe::json::{array, ObjectWriter};
use websift_pipeline::documents_to_records;

/// The DoP sweep every mode is measured at.
pub const THROUGHPUT_DOPS: [usize; 4] = [1, 4, 8, 16];

/// The DoP the acceptance ratios are quoted at.
pub const ACCEPTANCE_DOP: usize = 8;

/// One measured (mode, DoP) cell.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    pub mode: &'static str,
    pub dop: usize,
    pub records: usize,
    /// Best observed wall seconds for one full run of the pipeline
    /// (minimum over `REPS` interleaved repetitions).
    pub wall_secs: f64,
    pub records_per_sec: f64,
}

/// The full harness outcome: the rendered table plus the raw points and
/// the two acceptance ratios at [`ACCEPTANCE_DOP`].
#[derive(Debug)]
pub struct ThroughputReport {
    pub result: ExperimentResult,
    pub points: Vec<ThroughputPoint>,
    pub docs: usize,
    pub fused_vs_unfused: f64,
    pub fused_vs_baseline: f64,
}

/// Deep clone re-allocating every string payload — what cloning a record
/// cost before `Value::Str` became `Arc<str>`.
fn deep_clone_value(v: &Value) -> Value {
    match v {
        Value::Str(s) => Value::Str(std::sync::Arc::from(&**s)),
        Value::Array(a) => Value::Array(a.iter().map(deep_clone_value).collect()),
        Value::Object(o) => Value::Object(
            o.iter().map(|(k, v)| (k.clone(), deep_clone_value(v))).collect(),
        ),
        other => other.clone(),
    }
}

fn deep_clone(r: &Record) -> Record {
    Record(r.0.iter().map(|(k, v)| (k.clone(), deep_clone_value(v))).collect())
}

/// Operators whose seed-version UDF body opened with
/// `r.text().unwrap_or("").to_string()` — a full copy of the document
/// text per record, made so the UDF could keep reading the text while
/// mutating the record — before this PR switched them to the shared
/// `Record::text_shared()` handle. The baseline charges that copy back.
fn seed_udf_copied_text(name: &str) -> bool {
    matches!(
        name,
        "ie.annotate_sentences"
            | "ie.annotate_tokens"
            | "ie.annotate_pos"
            | "ie.annotate_negation"
            | "ie.annotate_pronouns"
            | "ie.annotate_parentheses"
            | "wa.repair_markup"
            | "wa.remove_markup"
            | "wa.extract_net_text"
            | "wa.extract_links"
    ) || name.starts_with("ie.annotate_entities_")
}

/// Wraps one operator with the pre-fusion system's per-record physical
/// overhead, leaving name, kind, cost model, and annotations untouched so
/// scheduling and simulated accounting are identical.
///
/// The seed executor (a) walked `Record::approx_bytes` over every input
/// and every output record — and that method cloned the whole record
/// (then `String`-payloaded) into a `Value::Object` per call — and
/// (b) cloned each record out of the shared input slice into the UDF.
/// `deep_clone(..).approx_bytes()` reproduces (a); `f(deep_clone(&r))`
/// reproduces (b). On top of that, the seed *UDFs* in
/// [`seed_udf_copied_text`] copied the document text once per record;
/// (c) charges that copy back.
fn wrap_pre_fusion(op: &Operator) -> Operator {
    let old_bytes_walk = |r: &Record| {
        std::hint::black_box(deep_clone(r).approx_bytes());
    };
    let text_copy = seed_udf_copied_text(&op.name);
    let old_udf_prologue = move |r: &Record| {
        if text_copy {
            std::hint::black_box(r.text().map(str::to_string));
        }
    };
    let mut wrapped = match op.func().clone() {
        OpFunc::Map(f) => Operator::map(&op.name, op.package, move |r| {
            old_bytes_walk(&r);
            old_udf_prologue(&r);
            let out = f(deep_clone(&r));
            old_bytes_walk(&out);
            out
        }),
        OpFunc::FlatMap(f) => Operator::flat_map(&op.name, op.package, move |r| {
            old_bytes_walk(&r);
            old_udf_prologue(&r);
            let out = f(deep_clone(&r));
            for r in &out {
                old_bytes_walk(r);
            }
            out
        }),
        OpFunc::Filter(f) => Operator::filter(&op.name, op.package, move |r| {
            old_bytes_walk(r);
            let keep = f(r);
            if keep {
                // the old loop pushed `r.clone()` into the output, then
                // walked the clone again in the bytes_out pass
                let kept = deep_clone(r);
                old_bytes_walk(&kept);
            }
            keep
        }),
        OpFunc::Reduce { key, aggregate } => Operator::reduce(
            &op.name,
            op.package,
            move |r| key(r),
            move |k, group| {
                let group: Vec<Record> = group
                    .iter()
                    .map(|r| {
                        std::hint::black_box(deep_clone(r).approx_bytes());
                        deep_clone(r)
                    })
                    .collect();
                let out = aggregate.apply_group(k, group);
                for r in &out {
                    std::hint::black_box(deep_clone(r).approx_bytes());
                }
                out
            },
        ),
    };
    wrapped.reads = op.reads.clone();
    wrapped.writes = op.writes.clone();
    wrapped.cost = op.cost;
    wrapped.library = op.library.clone();
    wrapped
}

/// Rebuilds `plan` with every operator passed through `wrap`, preserving
/// node ids and edges (the flows here are single-input DAGs).
fn rebuild_with(plan: &LogicalPlan, wrap: impl Fn(&Operator) -> Operator) -> LogicalPlan {
    let mut out = LogicalPlan::new();
    for node in plan.nodes() {
        let id = match &node.op {
            NodeOp::Source(name) => out.source(name),
            NodeOp::Op(op) => out
                .add(node.input.expect("op has input"), wrap(op))
                .expect("same plan shape"),
            NodeOp::Sink(name) => out
                .sink(node.input.expect("sink has input"), name)
                .expect("same plan shape"),
        };
        assert_eq!(id, node.id, "rebuild must preserve node ids");
    }
    out
}

fn throughput_corpus(docs: usize) -> Vec<Record> {
    documents_to_records(&Generator::new(CorpusKind::RelevantWeb, 777).documents(docs))
}

/// One timed run; returns wall seconds.
fn time_run(plan: &LogicalPlan, records: &[Record], dop: usize, fusion: bool) -> f64 {
    let config = ExecutionConfig { fusion, ..ExecutionConfig::local(dop) };
    let exec = Executor::new(config);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records.to_vec());
    // lint:allow(wall_clock): the throughput harness measures real execution wall time
    let t = Instant::now();
    let out = exec.run(plan, inputs).expect("throughput flow");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(out.sinks.values().map(Vec::len).sum::<usize>());
    secs
}

/// Timed repetitions per (mode, DoP) cell; the reported wall time is the
/// minimum, measured interleaved across modes (like `recovery_exps`'
/// overhead table) so slow drift — cold caches, cgroup CPU throttling —
/// hits every mode equally instead of whichever ran first.
const REPS: usize = 3;

/// Additional interleaved rounds run at the acceptance DoP only. The
/// acceptance ratios are medians of per-round paired ratios, and a
/// median over 3 rounds still collapses when an ambient stall covers 2
/// of them — observed on this box as multi-second freezes that best-of
/// cells shrug off but a 3-round median does not. Widening the median
/// to 5 rounds at the one DoP that decides acceptance keeps it honest
/// without inflating the whole sweep.
const EXTRA_ACCEPT_ROUNDS: usize = 2;

/// Fused speedup over the engine at `other` (0 = baseline, 1 = unfused),
/// as the median over rounds of the within-round wall-time ratio. Each
/// round's three runs are adjacent in time, so a round-scale load spike
/// inflates numerator and denominator together instead of one cell.
fn median_paired_ratio(rounds: &[[f64; 3]], other: usize) -> f64 {
    let mut ratios: Vec<f64> = rounds
        .iter()
        .filter(|r| r[2] > 0.0)
        .map(|r| r[other] / r[2])
        .collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Runs the sweep at the standard DoPs. `docs` sizes the corpus (use a
/// few hundred for a smoke run, more for stable numbers).
pub fn throughput(docs: usize) -> ThroughputReport {
    throughput_at(docs, &THROUGHPUT_DOPS)
}

/// Runs the sweep at an explicit DoP list (the unit test and `--quick`
/// runs use a shorter one).
pub fn throughput_at(docs: usize, dops: &[usize]) -> ThroughputReport {
    let plan = websift_pipeline::linguistic_flow("docs");
    let baseline_plan = rebuild_with(&plan, wrap_pre_fusion);
    let records = throughput_corpus(docs);

    let mut result = ExperimentResult::new(
        "Throughput",
        "Wall-clock records/sec, linguistic pipeline (interleaved best of 3)",
        &["DoP", "baseline rec/s", "unfused rec/s", "fused rec/s", "fused/baseline", "fused/unfused"],
    );

    let engines: [(&'static str, &LogicalPlan, bool); 3] = [
        ("baseline", &baseline_plan, false),
        ("unfused", &plan, false),
        ("fused", &plan, true),
    ];

    // Warm-up: one untimed run per engine populates lazy resources and
    // the page cache before anything is measured.
    for (_, plan, fusion) in &engines {
        time_run(plan, &records, dops.first().copied().unwrap_or(1), *fusion);
    }

    // Quote the acceptance ratios at DoP 8 when measured, else at the
    // largest DoP in the sweep (short --quick sweeps).
    let accept_dop = if dops.contains(&ACCEPTANCE_DOP) {
        ACCEPTANCE_DOP
    } else {
        dops.iter().copied().max().unwrap_or(1)
    };

    let mut points = Vec::new();
    let mut accept_rounds: Vec<[f64; 3]> = Vec::new();
    for &dop in dops {
        let mut best = [f64::MAX; 3];
        let reps = REPS + if dop == accept_dop { EXTRA_ACCEPT_ROUNDS } else { 0 };
        for _ in 0..reps {
            let mut round = [0.0f64; 3];
            for (i, (_, plan, fusion)) in engines.iter().enumerate() {
                round[i] = time_run(plan, &records, dop, *fusion);
                best[i] = best[i].min(round[i]);
            }
            if dop == accept_dop {
                accept_rounds.push(round);
            }
        }
        let mut rps = [0.0f64; 3];
        for (i, (mode, _, _)) in engines.iter().enumerate() {
            rps[i] = if best[i] > 0.0 { records.len() as f64 / best[i] } else { 0.0 };
            points.push(ThroughputPoint {
                mode,
                dop,
                records: records.len(),
                wall_secs: best[i],
                records_per_sec: rps[i],
            });
        }
        let [base, unfused, fused] = rps;
        result.row(&[
            dop.to_string(),
            format!("{base:.0}"),
            format!("{unfused:.0}"),
            format!("{fused:.0}"),
            format!("{:.2}x", if base > 0.0 { fused / base } else { 0.0 }),
            format!("{:.2}x", if unfused > 0.0 { fused / unfused } else { 0.0 }),
        ]);
    }

    // The acceptance ratios pair runs from the same interleaved round —
    // adjacent in time, so ambient-load drift on a shared box multiplies
    // both sides of the ratio and cancels — and take the median round.
    let fused_vs_unfused = median_paired_ratio(&accept_rounds, 1);
    let fused_vs_baseline = median_paired_ratio(&accept_rounds, 0);
    result.note(format!(
        "{docs} source records; rec/s = source records / best-of-{REPS} wall seconds \
         (interleaved across modes); \
         baseline emulates the pre-fusion system (per-operator deep clones + \
         double approx_bytes traversals + the seed UDFs' full-text copies); \
         acceptance ratios are medians of \
         per-round paired ratios over {} rounds; at DoP {accept_dop} fused is \
         {fused_vs_baseline:.2}x baseline (target >= 2x) and {fused_vs_unfused:.2}x unfused",
        REPS + EXTRA_ACCEPT_ROUNDS
    ));

    ThroughputReport { result, points, docs, fused_vs_unfused, fused_vs_baseline }
}

/// The batch-size grid the batched-execution sweep measures, in records
/// per physical batch. 256 is the executor's default
/// (`websift_flow::DEFAULT_BATCH_SIZE`); 1 is record-at-a-time.
pub const BATCH_GRID: [usize; 4] = [1, 64, 256, 1024];

/// One measured (batch_size, DoP) cell of the batched-execution sweep.
/// Batch size is physical only — every cell computes byte-identical
/// output — so the cells differ exclusively in dispatch amortization and
/// working-set size.
#[derive(Debug, Clone)]
pub struct BatchPoint {
    pub batch_size: usize,
    pub dop: usize,
    pub records: usize,
    pub wall_secs: f64,
    pub records_per_sec: f64,
}

/// Outcome of the batch-size sweep over the fused linguistic pipeline.
#[derive(Debug)]
pub struct BatchGridReport {
    pub result: ExperimentResult,
    pub points: Vec<BatchPoint>,
    pub docs: usize,
    /// Default-batch speedup over record-at-a-time (batch 1) at DoP 1 —
    /// the "batched dispatch must not lose" gate, with no parallelism to
    /// hide per-batch overhead. Median of per-round paired wall ratios.
    pub batched_vs_record_at_dop1: f64,
}

/// One timed fused run at an explicit batch size; returns wall seconds.
fn time_batched_run(plan: &LogicalPlan, records: &[Record], dop: usize, batch: usize) -> f64 {
    let config = ExecutionConfig { batch_size: Some(batch), ..ExecutionConfig::local(dop) };
    let exec = Executor::new(config);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records.to_vec());
    // lint:allow(wall_clock): the throughput harness measures real execution wall time
    let t = Instant::now();
    let out = exec.run(plan, inputs).expect("batched throughput flow");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(out.sinks.values().map(Vec::len).sum::<usize>());
    secs
}

/// Runs the batch-size grid at the given DoPs (typically {1, 8}: the
/// no-parallelism cell that decides the check gate plus the acceptance
/// DoP). Rounds interleave the whole grid so ambient drift hits every
/// batch size equally.
pub fn batch_grid_at(docs: usize, dops: &[usize]) -> BatchGridReport {
    let plan = websift_pipeline::linguistic_flow("docs");
    let records = throughput_corpus(docs);
    let default_at = BATCH_GRID
        .iter()
        .position(|&b| b == websift_flow::DEFAULT_BATCH_SIZE)
        .expect("grid includes the default batch size");

    let mut result = ExperimentResult::new(
        "Batch grid",
        "Wall-clock records/sec by physical batch size, fused linguistic pipeline",
        &["DoP", "b=1 rec/s", "b=64 rec/s", "b=256 rec/s", "b=1024 rec/s", "b256/b1"],
    );

    // Warm-up pass before anything is measured.
    time_batched_run(&plan, &records, dops.first().copied().unwrap_or(1), BATCH_GRID[0]);

    let mut points = Vec::new();
    let mut dop1_rounds: Vec<[f64; BATCH_GRID.len()]> = Vec::new();
    for &dop in dops {
        let mut best = [f64::MAX; BATCH_GRID.len()];
        let reps = REPS + if dop == 1 { EXTRA_ACCEPT_ROUNDS } else { 0 };
        for _ in 0..reps {
            let mut round = [0.0f64; BATCH_GRID.len()];
            for (i, &batch) in BATCH_GRID.iter().enumerate() {
                round[i] = time_batched_run(&plan, &records, dop, batch);
                best[i] = best[i].min(round[i]);
            }
            if dop == 1 {
                dop1_rounds.push(round);
            }
        }
        let mut rps = [0.0f64; BATCH_GRID.len()];
        for (i, &batch) in BATCH_GRID.iter().enumerate() {
            rps[i] = if best[i] > 0.0 { records.len() as f64 / best[i] } else { 0.0 };
            points.push(BatchPoint {
                batch_size: batch,
                dop,
                records: records.len(),
                wall_secs: best[i],
                records_per_sec: rps[i],
            });
        }
        result.row(&[
            dop.to_string(),
            format!("{:.0}", rps[0]),
            format!("{:.0}", rps[1]),
            format!("{:.0}", rps[2]),
            format!("{:.0}", rps[3]),
            format!("{:.2}x", if rps[0] > 0.0 { rps[default_at] / rps[0] } else { 0.0 }),
        ]);
    }

    // Paired within-round ratio (batch-1 wall / default-batch wall) so
    // ambient load cancels, median over the widened DoP-1 rounds.
    let mut ratios: Vec<f64> = dop1_rounds
        .iter()
        .filter(|r| r[default_at] > 0.0)
        .map(|r| r[0] / r[default_at])
        .collect();
    ratios.sort_by(f64::total_cmp);
    let batched_vs_record_at_dop1 =
        if ratios.is_empty() { 0.0 } else { ratios[ratios.len() / 2] };
    result.note(format!(
        "{docs} source records; batch size is physical only (output bytes identical \
         across the grid); at DoP 1 the default batch ({}) is \
         {batched_vs_record_at_dop1:.2}x record-at-a-time",
        websift_flow::DEFAULT_BATCH_SIZE
    ));

    BatchGridReport { result, points, docs, batched_vs_record_at_dop1 }
}

/// One measured (mode, DoP) cell of the partial-aggregation sweep.
#[derive(Debug, Clone)]
pub struct CombiningPoint {
    pub mode: &'static str,
    pub dop: usize,
    pub records: usize,
    pub wall_secs: f64,
    pub records_per_sec: f64,
    /// Bytes through the reduce shuffle emulation — every input record's
    /// codec roundtrip uncombined, per-chunk sorted partial-aggregate
    /// maps combined. Deterministic per (plan, input, DoP).
    pub shuffle_bytes: u64,
}

/// Outcome of the combined-vs-uncombined sweep over the Reduce-terminated
/// token-frequency pipeline.
#[derive(Debug)]
pub struct CombiningReport {
    pub result: ExperimentResult,
    pub points: Vec<CombiningPoint>,
    pub docs: usize,
    /// Combined speedup over uncombined at [`ACCEPTANCE_DOP`] (median of
    /// per-round paired wall-time ratios).
    pub combined_vs_uncombined: f64,
    /// The same paired-median ratio at every measured DoP, in sweep
    /// order — `--check` reads DoP 1 from here.
    pub ratios: Vec<(usize, f64)>,
    pub shuffle_bytes_uncombined: u64,
    pub shuffle_bytes_combined: u64,
}

impl CombiningReport {
    /// Median paired combined/uncombined throughput ratio at `dop`, if
    /// that DoP was measured.
    pub fn ratio_at(&self, dop: usize) -> Option<f64> {
        self.ratios.iter().find(|(d, _)| *d == dop).map(|(_, r)| *r)
    }

    /// Shuffle-byte shrink factor (uncombined / combined) at the
    /// acceptance DoP.
    pub fn shuffle_reduction(&self) -> f64 {
        if self.shuffle_bytes_combined == 0 {
            0.0
        } else {
            self.shuffle_bytes_uncombined as f64 / self.shuffle_bytes_combined as f64
        }
    }
}

/// One timed run with combining toggled; returns wall seconds and the
/// physical shuffle bytes of the run.
fn time_combining_run(
    plan: &LogicalPlan,
    records: &[Record],
    dop: usize,
    combining: bool,
) -> (f64, u64) {
    let config = ExecutionConfig { combining, ..ExecutionConfig::local(dop) };
    let exec = Executor::new(config);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records.to_vec());
    // lint:allow(wall_clock): the throughput harness measures real execution wall time
    let t = Instant::now();
    let out = exec.run(plan, inputs).expect("combining flow");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(out.sinks.values().map(Vec::len).sum::<usize>());
    (secs, out.physical.shuffle_bytes)
}

/// Median over rounds of the within-round uncombined/combined wall-time
/// ratio (the pairwise analogue of [`median_paired_ratio`]).
fn median_paired_ratio2(rounds: &[[f64; 2]]) -> f64 {
    let mut ratios: Vec<f64> =
        rounds.iter().filter(|r| r[1] > 0.0).map(|r| r[0] / r[1]).collect();
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(f64::total_cmp);
    ratios[ratios.len() / 2]
}

/// Runs the combining sweep at the standard DoPs.
pub fn combining(docs: usize) -> CombiningReport {
    combining_at(docs, &THROUGHPUT_DOPS)
}

/// Combined-vs-uncombined sweep over the Reduce-terminated
/// token-frequency pipeline at an explicit DoP list.
///
/// Uncombined, the final reduce's shuffle emulation codec-roundtrips
/// every exploded token record; combined, the fused workers fold each
/// chunk into sorted partial-aggregate maps and only those cross the
/// shuffle. All deterministic surfaces (sink bytes, metrics, traces,
/// checkpoints) are bit-identical between the two by construction — this
/// sweep measures the wall clock and the shuffled bytes.
pub fn combining_at(docs: usize, dops: &[usize]) -> CombiningReport {
    let plan = websift_pipeline::token_frequency_flow("docs");
    let records = throughput_corpus(docs);

    let mut result = ExperimentResult::new(
        "Partial aggregation",
        "Wall-clock records/sec, token-frequency pipeline (interleaved best of 3)",
        &[
            "DoP",
            "uncombined rec/s",
            "combined rec/s",
            "combined/uncombined",
            "shuffle bytes (unc)",
            "shuffle bytes (comb)",
            "shuffle shrink",
        ],
    );

    // Warm-up, untimed.
    for combining in [false, true] {
        time_combining_run(&plan, &records, dops.first().copied().unwrap_or(1), combining);
    }

    let accept_dop = if dops.contains(&ACCEPTANCE_DOP) {
        ACCEPTANCE_DOP
    } else {
        dops.iter().copied().max().unwrap_or(1)
    };

    let mut points = Vec::new();
    let mut ratios = Vec::new();
    let mut accept_shuffle = [0u64; 2];
    for &dop in dops {
        let mut best = [f64::MAX; 2];
        let mut shuffle = [0u64; 2];
        let mut rounds: Vec<[f64; 2]> = Vec::new();
        let reps = REPS + if dop == accept_dop { EXTRA_ACCEPT_ROUNDS } else { 0 };
        for _ in 0..reps {
            let mut round = [0.0f64; 2];
            for (i, combining) in [false, true].into_iter().enumerate() {
                let (secs, bytes) = time_combining_run(&plan, &records, dop, combining);
                round[i] = secs;
                best[i] = best[i].min(secs);
                shuffle[i] = bytes; // deterministic per (dop, mode)
            }
            rounds.push(round);
        }
        let ratio = median_paired_ratio2(&rounds);
        ratios.push((dop, ratio));
        if dop == accept_dop {
            accept_shuffle = shuffle;
        }
        let mut rps = [0.0f64; 2];
        for (i, mode) in ["uncombined", "combined"].into_iter().enumerate() {
            rps[i] = if best[i] > 0.0 { records.len() as f64 / best[i] } else { 0.0 };
            points.push(CombiningPoint {
                mode,
                dop,
                records: records.len(),
                wall_secs: best[i],
                records_per_sec: rps[i],
                shuffle_bytes: shuffle[i],
            });
        }
        let shrink =
            if shuffle[1] > 0 { shuffle[0] as f64 / shuffle[1] as f64 } else { 0.0 };
        result.row(&[
            dop.to_string(),
            format!("{:.0}", rps[0]),
            format!("{:.0}", rps[1]),
            format!("{ratio:.2}x"),
            shuffle[0].to_string(),
            shuffle[1].to_string(),
            format!("{shrink:.1}x"),
        ]);
    }

    let combined_vs_uncombined =
        ratios.iter().find(|(d, _)| *d == accept_dop).map(|(_, r)| *r).unwrap_or(0.0);
    let mut report = CombiningReport {
        result,
        points,
        docs,
        combined_vs_uncombined,
        ratios,
        shuffle_bytes_uncombined: accept_shuffle[0],
        shuffle_bytes_combined: accept_shuffle[1],
    };
    report.result.note(format!(
        "{docs} source records through the token-frequency flow; per-DoP ratios are \
         medians of per-round paired ratios ({} rounds at the acceptance DoP); at DoP {accept_dop} \
         combining is {combined_vs_uncombined:.2}x uncombined (target >= 1.3x) and \
         shrinks the reduce shuffle {:.1}x ({} -> {} bytes); deterministic surfaces \
         are bit-identical in both modes (see crates/flow/tests/partial_agg.rs)",
        REPS + EXTRA_ACCEPT_ROUNDS,
        report.shuffle_reduction(),
        report.shuffle_bytes_uncombined,
        report.shuffle_bytes_combined,
    ));
    report
}

/// Wall seconds spent in each operator of the linguistic pipeline, run
/// stage-at-a-time over the corpus (`exp_throughput --per-op`): the
/// profile that tells you *where* fused time goes.
pub fn per_op_breakdown(docs: usize) -> Vec<(String, f64, usize)> {
    let plan = websift_pipeline::linguistic_flow("docs");
    let mut cur = throughput_corpus(docs);
    let mut out = Vec::new();
    for node in plan.nodes() {
        if let NodeOp::Op(op) = &node.op {
            // lint:allow(wall_clock): the throughput harness measures real execution wall time
            let t = Instant::now();
            cur = op.apply(std::mem::take(&mut cur));
            out.push((op.name.clone(), t.elapsed().as_secs_f64(), cur.len()));
        }
    }
    out
}

/// Machine-readable report for `BENCH_THROUGHPUT.json`: the fusion sweep
/// over the linguistic pipeline plus the partial-aggregation sweep over
/// the token-frequency pipeline. The host's logical core count and the
/// measured DoP grid are stamped in so a reader can tell whether a sweep
/// measured parallel scaling or (on a single-core box) only overhead
/// elimination.
pub fn throughput_json(
    report: &ThroughputReport,
    combining: &CombiningReport,
    batches: &BatchGridReport,
) -> String {
    let points = array(report.points.iter().map(|p| {
        ObjectWriter::new()
            .str("mode", p.mode)
            .u64("dop", p.dop as u64)
            .u64("records", p.records as u64)
            .f64("wall_secs", p.wall_secs)
            .f64("records_per_sec", p.records_per_sec)
            .finish()
    }));
    let combining_points = array(combining.points.iter().map(|p| {
        ObjectWriter::new()
            .str("mode", p.mode)
            .u64("dop", p.dop as u64)
            .u64("records", p.records as u64)
            .f64("wall_secs", p.wall_secs)
            .f64("records_per_sec", p.records_per_sec)
            .u64("shuffle_bytes", p.shuffle_bytes)
            .finish()
    }));
    let batch_points = array(batches.points.iter().map(|p| {
        ObjectWriter::new()
            .u64("batch_size", p.batch_size as u64)
            .u64("dop", p.dop as u64)
            .u64("records", p.records as u64)
            .f64("wall_secs", p.wall_secs)
            .f64("records_per_sec", p.records_per_sec)
            .finish()
    }));
    let mut dops: Vec<u64> = report.points.iter().map(|p| p.dop as u64).collect();
    dops.sort_unstable();
    dops.dedup();
    ObjectWriter::new()
        .str("experiment", "throughput")
        .str("pipeline", "linguistic")
        .u64("docs", report.docs as u64)
        .u64("host_logical_cores", crate::report::host_logical_cores())
        .raw("dops", &array(dops.iter().map(|d| d.to_string())))
        .u64("acceptance_dop", ACCEPTANCE_DOP as u64)
        .f64("fused_vs_unfused", report.fused_vs_unfused)
        .f64("fused_vs_baseline", report.fused_vs_baseline)
        .f64("combined_vs_uncombined", combining.combined_vs_uncombined)
        .u64("shuffle_bytes_uncombined", combining.shuffle_bytes_uncombined)
        .u64("shuffle_bytes_combined", combining.shuffle_bytes_combined)
        .f64("shuffle_reduction", combining.shuffle_reduction())
        .raw("batch_sizes", &array(BATCH_GRID.iter().map(|b| b.to_string())))
        .u64("default_batch_size", websift_flow::DEFAULT_BATCH_SIZE as u64)
        .f64("batched_vs_record_dop1", batches.batched_vs_record_at_dop1)
        .raw("points", &points)
        .raw("combining_points", &combining_points)
        .raw("batch_points", &batch_points)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_rebuild_preserves_results() {
        // The wrapped plan must compute exactly what the original does —
        // the wrapper only burns the old physical overhead.
        let plan = websift_pipeline::linguistic_flow("docs");
        let baseline = rebuild_with(&plan, wrap_pre_fusion);
        let records = throughput_corpus(12);
        let run = |p: &LogicalPlan| {
            let mut inputs = HashMap::new();
            inputs.insert("docs".to_string(), records.clone());
            Executor::new(ExecutionConfig::local(4)).run(p, inputs).unwrap()
        };
        let a = run(&plan);
        let b = run(&baseline);
        assert_eq!(a.sinks, b.sinks);
        assert_eq!(
            a.metrics.simulated_secs.to_bits(),
            b.metrics.simulated_secs.to_bits(),
            "emulation must not disturb simulated accounting"
        );
    }

    #[test]
    fn deep_clone_reallocates_strings() {
        let mut r = Record::new();
        r.set("text", "some body");
        let c = deep_clone(&r);
        match (r.get("text").unwrap(), c.get("text").unwrap()) {
            (Value::Str(a), Value::Str(b)) => {
                assert_eq!(a, b);
                assert!(!std::sync::Arc::ptr_eq(a, b), "baseline clone must reallocate");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn throughput_smoke_produces_all_cells() {
        let report = throughput_at(6, &[1, 4]);
        assert_eq!(report.points.len(), 3 * 2);
        assert!(report.points.iter().all(|p| p.records_per_sec > 0.0));
        let combining = combining_at(6, &[1, 4]);
        assert_eq!(combining.points.len(), 2 * 2);
        assert!(combining.points.iter().all(|p| p.records_per_sec > 0.0));
        let batches = batch_grid_at(6, &[1]);
        assert_eq!(batches.points.len(), BATCH_GRID.len());
        assert!(batches.points.iter().all(|p| p.records_per_sec > 0.0));
        let json = throughput_json(&report, &combining, &batches);
        assert!(json.contains("\"fused_vs_baseline\""));
        assert!(json.contains("\"host_logical_cores\""));
        assert!(json.contains("\"dops\":[1,4]"));
        assert!(json.contains("\"mode\":\"fused\""));
        assert!(json.contains("\"combined_vs_uncombined\""));
        assert!(json.contains("\"shuffle_reduction\""));
        assert!(json.contains("\"mode\":\"combined\""));
        assert!(json.contains("\"batch_sizes\":[1,64,256,1024]"));
        assert!(json.contains("\"default_batch_size\":256"));
        assert!(json.contains("\"batched_vs_record_dop1\""));
        assert!(json.contains("\"batch_size\":1024"));
    }

    #[test]
    fn combining_shrinks_the_shuffle_at_every_dop() {
        let report = combining_at(8, &[1, 2]);
        for dop in [1usize, 2] {
            let by = |mode: &str| {
                report
                    .points
                    .iter()
                    .find(|p| p.mode == mode && p.dop == dop)
                    .map(|p| p.shuffle_bytes)
                    .unwrap()
            };
            assert!(
                by("combined") < by("uncombined"),
                "dop {dop}: combined {} !< uncombined {}",
                by("combined"),
                by("uncombined")
            );
        }
        assert!(report.ratio_at(1).is_some());
        assert!(report.ratio_at(2).is_some());
        assert!(report.shuffle_reduction() > 1.0);
    }
}
