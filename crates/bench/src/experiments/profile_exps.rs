//! Profiler-driven cost decomposition: the paper's startup-vs-per-record
//! cost split (the 20-minute dictionary load vs the per-character scan,
//! §4.2 / Fig. 8's cost accounting) regenerated from **live
//! instrumentation** — the executor's [`websift_observe::Profiler`] scope
//! tree — instead of from the hard-coded cost-model constants.

use crate::report::ExperimentResult;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Arc;
use websift_corpus::{CorpusKind, Generator};
use websift_flow::{ExecutionConfig, Executor, FlowResilience};
use websift_observe::{MetricValue, Observer};
use websift_pipeline::{documents_to_records, full_analysis_plan, ExperimentContext};

/// Everything one observed profiling run yields: the decomposition table,
/// the flamegraph-format folded stacks, and the observer's summary.
pub struct ProfileRun {
    pub result: ExperimentResult,
    pub folded: String,
    pub summary: String,
}

/// Per-operator startup/work split harvested from profiler scopes.
#[derive(Default, Clone, Copy)]
struct OpCost {
    startup_secs: f64,
    work_secs: f64,
}

/// Runs the full Fig.-2 analysis flow under an [`Observer`] and derives
/// each operator's startup-vs-per-record cost split from the profiler's
/// `flow;op:<name>;{startup,work}` scopes. Deterministic: all figures are
/// simulated seconds off the logical clock.
pub fn cost_decomposition(ctx: &ExperimentContext, docs: usize) -> ProfileRun {
    let generator =
        Generator::with_lexicon(CorpusKind::Medline, 77, Arc::new(ctx.lexicon.as_ref().clone()));
    let records = documents_to_records(&generator.documents(docs));
    let n_records = records.len() as f64;
    let plan = full_analysis_plan(&ctx.resources);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records);

    let obs = Observer::new();
    Executor::new(ExecutionConfig::local(4))
        .run_observed(&plan, inputs, &FlowResilience::default(), &obs)
        .expect("profile flow must run");

    // Harvest the split from the profiler scope tree, not the cost models.
    let mut by_op: BTreeMap<String, OpCost> = BTreeMap::new();
    for scope in obs.profiler().scopes() {
        let [root, op, kind] = match scope.path.as_slice() {
            [a, b, c] => [a.as_str(), b.as_str(), c.as_str()],
            _ => continue,
        };
        if root != "flow" {
            continue;
        }
        let Some(name) = op.strip_prefix("op:") else { continue };
        let entry = by_op.entry(name.to_string()).or_default();
        match kind {
            "startup" => entry.startup_secs += scope.self_secs,
            "work" => entry.work_secs += scope.self_secs,
            _ => {}
        }
    }

    let total_startup: f64 = by_op.values().map(|c| c.startup_secs).sum();
    let total_work: f64 = by_op.values().map(|c| c.work_secs).sum();
    let grand_total = total_startup + total_work;

    let mut result = ExperimentResult::new(
        "Fig 8 (cost split)",
        "Startup vs per-record cost by operator, from profiler scopes; simulated seconds",
        &["operator", "startup s", "work s", "per-record ms", "startup share"],
    );
    let mut ops: Vec<(&String, &OpCost)> = by_op.iter().collect();
    ops.sort_by(|a, b| {
        let (ta, tb) = (a.1.startup_secs + a.1.work_secs, b.1.startup_secs + b.1.work_secs);
        tb.partial_cmp(&ta).unwrap().then_with(|| a.0.cmp(b.0))
    });
    for (name, cost) in ops {
        let op_total = cost.startup_secs + cost.work_secs;
        result.row(&[
            name.clone(),
            format!("{:.1}", cost.startup_secs),
            format!("{:.1}", cost.work_secs),
            format!("{:.2}", cost.work_secs / n_records * 1e3),
            format!("{:.0}%", cost.startup_secs / op_total.max(f64::MIN_POSITIVE) * 100.0),
        ]);
    }
    result.row(&[
        "(all operators)".into(),
        format!("{total_startup:.1}"),
        format!("{total_work:.1}"),
        format!("{:.2}", total_work / n_records * 1e3),
        format!("{:.0}%", total_startup / grand_total.max(f64::MIN_POSITIVE) * 100.0),
    ]);
    result.note(format!(
        "measured live from the executor's profiler over {docs} documents — \
         the gene dictionary's ≈20-minute simulated load dominates startup \
         while the ML taggers carry the highest per-record cost (the paper's \
         §4.2 split)"
    ));
    let snap = obs.registry().snapshot();
    let op_execs: u64 = snap
        .by_name("flow.op_secs")
        .map(|(_, _, v)| match v {
            MetricValue::Histogram(h) => h.count,
            _ => 0,
        })
        .sum();
    result.note(format!(
        "registry cross-check: the flow.op_secs histograms saw {op_execs} operator executions"
    ));

    ProfileRun {
        result,
        folded: obs.profiler().folded(),
        summary: obs.summary(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposition_finds_startup_dominated_dictionaries() {
        let ctx = ExperimentContext::tiny(13);
        let run = cost_decomposition(&ctx, 6);
        // every plan operator shows up
        let ops: Vec<&str> = run.result.rows.iter().map(|r| r[0].as_str()).collect();
        assert!(ops.iter().any(|o| o.contains("annotate_entities_dict_gene")), "{ops:?}");
        assert!(ops.iter().any(|o| o.contains("annotate_entities_ml_gene")));
        // the folded output is non-empty and parseable: "path count" lines
        assert!(!run.folded.is_empty());
        for line in run.folded.lines() {
            let (path, count) = line.rsplit_once(' ').expect("folded line format");
            assert!(!path.is_empty());
            count.parse::<u64>().expect("folded counts are integers");
        }
        assert!(run.summary.contains("== metrics =="));
    }
}
