//! Content-analysis experiments: Table 3, Fig. 6 (+§4.3.1), Fig. 7,
//! Table 4 (+TLA filtering), and Fig. 8 (+JSD).

use crate::report::ExperimentResult;
use std::collections::{HashMap, HashSet};
use websift_corpus::CorpusKind;
use websift_flow::Record;
use websift_ner::{EntityType, Method};
use websift_pipeline::{
    aggregate, aggregate_entities, compare, overlap_partition, paper, CorpusEntities,
    CorpusLinguistics, ExperimentContext, Measure,
};

/// The corpus display order used throughout (matches the paper's tables).
pub const ORDER: [CorpusKind; 4] = [
    CorpusKind::RelevantWeb,
    CorpusKind::IrrelevantWeb,
    CorpusKind::Medline,
    CorpusKind::Pmc,
];

/// Table 3: corpus summary — size, documents, mean chars.
pub fn table3(ctx: &ExperimentContext) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Table 3",
        "Summary of data sets (ours at reduced scale)",
        &[
            "corpus",
            "docs (ours)",
            "mean chars (ours)",
            "total MB (ours)",
            "paper docs",
            "paper mean chars",
            "paper GB",
        ],
    );
    for kind in ORDER {
        let docs = ctx.corpora.get(kind);
        let total: u64 = docs.iter().map(|d| d.raw_len() as u64).sum();
        let mean = total / docs.len().max(1) as u64;
        let (gb, pdocs, pmean) = kind.paper_stats();
        result.row(&[
            kind.name().to_string(),
            docs.len().to_string(),
            mean.to_string(),
            format!("{:.1}", total as f64 / 1e6),
            pdocs.to_string(),
            pmean.to_string(),
            format!("{gb:.0}"),
        ]);
    }
    result.note("our corpora are generated at a configurable fraction of the paper's counts; mean raw sizes follow the same ordering (relevant > PMC > irrelevant > Medline in chars)");
    result
}

/// Runs the full analysis flow over every corpus, returning per-corpus
/// annotated records from both sinks.
pub fn run_all_corpora(
    ctx: &ExperimentContext,
    dop: usize,
) -> HashMap<CorpusKind, (Vec<Record>, Vec<Record>)> {
    let plan = websift_pipeline::full_analysis_plan(&ctx.resources);
    let mut out = HashMap::new();
    for kind in ORDER {
        let docs = ctx.corpora.get(kind);
        let flow_out = websift_pipeline::run_over_documents(&plan, docs, dop)
            .expect("analysis flow runs locally");
        let linguistic = flow_out.sinks.get("linguistic").cloned().unwrap_or_default();
        let entities = flow_out.sinks.get("entities").cloned().unwrap_or_default();
        out.insert(kind, (linguistic, entities));
    }
    out
}

/// Fig. 6 + §4.3.1: linguistic distributions and pairwise significance.
pub fn fig6(results: &HashMap<CorpusKind, (Vec<Record>, Vec<Record>)>) -> Vec<ExperimentResult> {
    let stats: HashMap<CorpusKind, CorpusLinguistics> = ORDER
        .iter()
        .map(|&k| (k, aggregate(&results[&k].0)))
        .collect();

    let mut dist = ExperimentResult::new(
        "Fig 6",
        "Linguistic properties per corpus",
        &[
            "corpus",
            "docs",
            "mean doc chars",
            "doc chars stddev",
            "mean sentence chars",
            "negation /1000 sents",
            "pronouns /1000 sents",
            "parens /1000 sents",
        ],
    );
    for kind in ORDER {
        let s = &stats[&kind];
        let dl = s.doc_length.as_ref();
        dist.row(&[
            kind.name().to_string(),
            s.documents.to_string(),
            dl.map(|d| format!("{:.0}", d.mean)).unwrap_or_default(),
            dl.map(|d| format!("{:.0}", d.std_dev)).unwrap_or_default(),
            s.sentence_length
                .as_ref()
                .map(|d| format!("{:.0}", d.mean))
                .unwrap_or_default(),
            format!("{:.1}", s.negation_per_1000_sentences),
            format!("{:.1}", s.pronouns_per_1000_sentences),
            format!("{:.1}", s.parens_per_1000_sentences),
        ]);
    }
    dist.note("paper orderings: doc length PMC > relevant > irrelevant > Medline; negation Medline < relevant < (PMC, irrelevant); pronouns highest in PMC; parentheses PMC > relevant > Medline > irrelevant; relevant corpus has the largest doc-length variance");

    let mut tests = ExperimentResult::new(
        "Fig 6 significance",
        "Mann-Whitney U tests between corpora (paper: all P < 0.01)",
        &["measure", "pair", "P-value", "significant at 0.01"],
    );
    let pairs = [
        (CorpusKind::RelevantWeb, CorpusKind::IrrelevantWeb),
        (CorpusKind::RelevantWeb, CorpusKind::Medline),
        (CorpusKind::RelevantWeb, CorpusKind::Pmc),
        (CorpusKind::IrrelevantWeb, CorpusKind::Medline),
        (CorpusKind::Medline, CorpusKind::Pmc),
    ];
    for measure in Measure::all() {
        for (a, b) in pairs {
            if let Some(r) = compare(&stats[&a], &stats[&b], measure) {
                tests.row(&[
                    measure.name().to_string(),
                    format!("{} vs {}", a.name(), b.name()),
                    if r.p_value < 1e-4 {
                        format!("{:.1e}", r.p_value)
                    } else {
                        format!("{:.4}", r.p_value)
                    },
                    r.significant_at(0.01).to_string(),
                ]);
            }
        }
    }
    vec![dist, tests]
}

fn entity_stats(
    results: &HashMap<CorpusKind, (Vec<Record>, Vec<Record>)>,
) -> HashMap<CorpusKind, CorpusEntities> {
    ORDER
        .iter()
        .map(|&k| (k, aggregate_entities(&results[&k].1)))
        .collect()
}

/// Fig. 7: entity mentions per 1000 sentences by corpus and type.
pub fn fig7(results: &HashMap<CorpusKind, (Vec<Record>, Vec<Record>)>) -> ExperimentResult {
    let stats = entity_stats(results);
    let mut result = ExperimentResult::new(
        "Fig 7",
        "Entity mentions per 1000 sentences (dict + ML combined)",
        &["corpus", "disease", "drug", "gene", "paper disease", "paper drug", "paper gene (dict)"],
    );
    for (i, kind) in ORDER.iter().enumerate() {
        let s = &stats[kind];
        result.row(&[
            kind.name().to_string(),
            format!("{:.1}", s.mentions_per_1000_sentences(EntityType::Disease)),
            format!("{:.1}", s.mentions_per_1000_sentences(EntityType::Drug)),
            format!("{:.1}", s.mentions_per_1000_sentences(EntityType::Gene)),
            format!("{:.1}", paper::DISEASE_PER_1000[i]),
            format!("{:.1}", paper::DRUG_PER_1000[i]),
            format!("{:.1}", paper::GENE_DICT_PER_1000[i]),
        ]);
    }
    result.note("shape targets: relevant >> irrelevant for every type; Medline densest; differences significant (P < 0.01 in the paper)");
    result
}

/// Table 4: distinct entity names by corpus and method, plus the TLA
/// filtering of ML gene names.
pub fn table4(results: &HashMap<CorpusKind, (Vec<Record>, Vec<Record>)>) -> Vec<ExperimentResult> {
    let mut stats = entity_stats(results);

    let mut t4 = ExperimentResult::new(
        "Table 4",
        "Number of distinct entity names by corpus",
        &["data set", "method", "disease", "drug", "gene", "paper disease", "paper drug", "paper gene"],
    );
    let paper_cell = |table: &[[u64; 4]; 2], mi: usize, ci: usize| table[mi][ci].to_string();
    for (ci, kind) in ORDER.iter().enumerate() {
        let s = &stats[kind];
        for (mi, method) in [Method::Dictionary, Method::Ml].into_iter().enumerate() {
            t4.row(&[
                kind.name().to_string(),
                method.name().to_string(),
                s.distinct_names(EntityType::Disease, method).to_string(),
                s.distinct_names(EntityType::Drug, method).to_string(),
                s.distinct_names(EntityType::Gene, method).to_string(),
                paper_cell(&paper::TABLE4_DISEASE, mi, ci),
                paper_cell(&paper::TABLE4_DRUG, mi, ci),
                paper_cell(&paper::TABLE4_GENE, mi, ci),
            ]);
        }
    }
    t4.note("shape targets: ML > dictionary for every corpus/type; relevant >> irrelevant; the ML gene inventory on web text is inflated by acronym false positives");

    let mut tla = ExperimentResult::new(
        "§4.3.2 TLA filter",
        "Filtering three-letter acronyms from ML gene names",
        &["corpus", "distinct ML gene names before", "after", "reduction"],
    );
    for kind in ORDER {
        let s = stats.get_mut(&kind).unwrap();
        let (before, after) = s.tla_filter_ml(EntityType::Gene);
        tla.row(&[
            kind.name().to_string(),
            before.to_string(),
            after.to_string(),
            format!("{:.0}%", (1.0 - after as f64 / before.max(1) as f64) * 100.0),
        ]);
    }
    tla.note(format!(
        "paper: relevant-crawl ML gene names drop {} -> {} after removing TLAs",
        paper::TLA_GENE_REDUCTION.0,
        paper::TLA_GENE_REDUCTION.1
    ));
    vec![t4, tla]
}

/// Fig. 8: overlap of distinct dictionary-found names across corpora, and
/// the JSD matrix.
pub fn fig8(results: &HashMap<CorpusKind, (Vec<Record>, Vec<Record>)>) -> Vec<ExperimentResult> {
    let stats = entity_stats(results);
    let mut overlap = ExperimentResult::new(
        "Fig 8",
        "Pairwise overlap of distinct dictionary names (Jaccard)",
        &["entity", "rel∩irrel", "rel∩Medline", "rel∩PMC", "paper rel∩irrel"],
    );
    let paper_pair = |e: EntityType| match e {
        EntityType::Disease => paper::OVERLAP_REL_IRREL_DISEASE,
        EntityType::Drug => paper::OVERLAP_REL_IRREL_DRUG,
        EntityType::Gene => paper::OVERLAP_REL_IRREL_GENE,
    };
    for entity in EntityType::all() {
        let sets: Vec<(&str, HashSet<String>)> = ORDER
            .iter()
            .map(|&k| {
                let names: HashSet<String> = stats[&k]
                    .dict_name_counts
                    .get(&entity)
                    .map(|m| m.keys().cloned().collect())
                    .unwrap_or_default();
                (k.name(), names)
            })
            .collect();
        let refs: Vec<(&str, &HashSet<String>)> =
            sets.iter().map(|(n, s)| (*n, s)).collect();
        let partition = overlap_partition(&refs);
        overlap.row(&[
            entity.name().to_string(),
            format!("{:.2}", partition.pairwise_overlap(0, 1)),
            format!("{:.2}", partition.pairwise_overlap(0, 2)),
            format!("{:.2}", partition.pairwise_overlap(0, 3)),
            format!("{:.2}", paper_pair(entity)),
        ]);
    }
    overlap.note("shape targets: rel∩irrel small; rel∩Medline and rel∩PMC considerably larger; thousands of names appear only in relevant web documents");

    let mut jsd = ExperimentResult::new(
        "§4.3.2 JSD",
        "Jensen-Shannon divergence of dictionary-name distributions",
        &["pair", "disease", "drug", "gene", "paper range"],
    );
    let pairs: [(CorpusKind, CorpusKind, (f64, f64)); 5] = [
        (CorpusKind::RelevantWeb, CorpusKind::IrrelevantWeb, paper::JSD_REL_IRREL),
        (CorpusKind::RelevantWeb, CorpusKind::Medline, paper::JSD_REL_MEDLINE),
        (CorpusKind::RelevantWeb, CorpusKind::Pmc, paper::JSD_REL_PMC),
        (CorpusKind::IrrelevantWeb, CorpusKind::Medline, paper::JSD_IRREL_MEDLINE),
        (CorpusKind::IrrelevantWeb, CorpusKind::Pmc, paper::JSD_IRREL_PMC),
    ];
    let empty = HashMap::new();
    for (a, b, (lo, hi)) in pairs {
        let d = |e: EntityType| {
            let ca = stats[&a].dict_name_counts.get(&e).unwrap_or(&empty);
            let cb = stats[&b].dict_name_counts.get(&e).unwrap_or(&empty);
            websift_pipeline::name_divergence(ca, cb)
        };
        jsd.row(&[
            format!("{} vs {}", a.name(), b.name()),
            format!("{:.3}", d(EntityType::Disease)),
            format!("{:.3}", d(EntityType::Drug)),
            format!("{:.3}", d(EntityType::Gene)),
            format!("{lo:.3}..{hi:.3}"),
        ]);
    }
    jsd.note("shape target: rel-vs-irrel divergences exceed rel-vs-Medline and rel-vs-PMC — the relevant crawl is 'more similar to the biomedical literature'");
    vec![overlap, jsd]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_covers_four_corpora() {
        let ctx = ExperimentContext::tiny(2);
        let t = table3(&ctx);
        assert_eq!(t.rows.len(), 4);
    }
}
