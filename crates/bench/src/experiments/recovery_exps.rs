//! Resilience experiments: goodput and recovery overhead under injected
//! faults, plus the kill-and-resume determinism check.
//!
//! The paper's pipeline lost whole crawl segments and flow runs to
//! infrastructure failures ("war story", §4.2). These experiments
//! measure what the `websift-resilience` subsystem buys back: crawls
//! and flows are driven at fault rates {0 %, 1 %, 5 %, 20 %}, and at
//! each rate a run is killed mid-flight and resumed from its last
//! checkpoint to confirm the recovery invariant — same seed, same
//! final statistics, bit for bit.

use std::time::Instant;

use crate::report::ExperimentResult;
use websift_crawler::{
    train_focus_classifier, CrawlConfig, CrawlReport, FocusedCrawler, ResilienceOptions,
};
use websift_flow::{
    ExecutionConfig, Executor, FlowResilience, LogicalPlan, Operator, Package, Record,
};
use websift_web::{PageId, SimulatedWeb, Url, WebGraph, WebGraphConfig};

/// The fault rates exercised by every recovery experiment.
pub const FAULT_RATES: [f64; 4] = [0.0, 0.01, 0.05, 0.20];

const FAULT_SEED: u64 = 0x5EED_FA17;
const CHECKPOINT_EVERY_ROUNDS: u64 = 4;

fn recovery_web() -> SimulatedWeb {
    SimulatedWeb::new(WebGraph::generate(WebGraphConfig {
        hosts: 80,
        pages_per_host_median: 15.0,
        ..WebGraphConfig::default()
    }))
}

fn crawl_config() -> CrawlConfig {
    CrawlConfig {
        max_pages: 1_200,
        fetch_list_total: 80,
        threads: 4,
        ..CrawlConfig::default()
    }
}

fn seeds_of(web: &SimulatedWeb) -> Vec<Url> {
    let graph = web.graph();
    (0..graph.num_pages() as u32)
        .map(PageId)
        .filter(|&p| graph.page(p).relevant)
        .take(25)
        .map(|p| graph.url_of(p))
        .collect()
}

fn fresh_crawler(web: &SimulatedWeb) -> FocusedCrawler<'_> {
    FocusedCrawler::new(web, train_focus_classifier(80, 1.5, 99), crawl_config())
}

fn pages(report: &CrawlReport) -> u64 {
    (report.relevant.len() + report.irrelevant.len()) as u64
}

/// Pages harvested per simulated hour — throughput net of retries,
/// backoff waits, and recovery stalls.
fn goodput(report: &CrawlReport) -> f64 {
    if report.simulated_secs <= 0.0 {
        return 0.0;
    }
    pages(report) as f64 / (report.simulated_secs / 3600.0)
}

/// Crawl-side recovery: goodput under faults and the kill-and-resume
/// determinism check at every fault rate.
pub fn crawl_recovery() -> Vec<ExperimentResult> {
    let web = recovery_web();
    let seeds = seeds_of(&web);

    let mut table = ExperimentResult::new(
        "Recovery (crawl)",
        "Focused crawl under injected faults",
        &[
            "fault rate",
            "pages",
            "failed",
            "retries",
            "exhausted",
            "breaker trips",
            "panics",
            "goodput (pages/sim-h)",
            "recovery wait (sim s)",
            "resume ✓",
        ],
    );

    let mut baseline_goodput = None;
    for rate in FAULT_RATES {
        let opts = ResilienceOptions::injected(FAULT_SEED, rate, CHECKPOINT_EVERY_ROUNDS);
        let (report, _) = fresh_crawler(&web).crawl_resilient(seeds.clone(), &opts);

        // Kill the same configuration mid-crawl, resume from the last
        // checkpoint, and compare complete final state digests.
        let killed_opts = ResilienceOptions {
            stop_after_rounds: Some(6),
            ..opts.clone()
        };
        let mut victim = fresh_crawler(&web);
        let (_, ckpts) = victim.crawl_resilient(seeds.clone(), &killed_opts);
        let resumed_ok = match ckpts.last() {
            Some(ckpt) => {
                match FocusedCrawler::resume_from(&web, ckpt, crawl_config(), &opts, None) {
                    Ok((resumed, resumed_report, _)) => {
                        let mut probe = fresh_crawler(&web);
                        let (probe_report, _) = probe.crawl_resilient(seeds.clone(), &opts);
                        probe.state_digest(&probe_report)
                            == resumed.state_digest(&resumed_report)
                    }
                    Err(_) => false,
                }
            }
            None => false,
        };

        let gp = goodput(&report);
        baseline_goodput.get_or_insert(gp);
        let r = &report.resilience;
        table.row(&[
            format!("{:.0} %", rate * 100.0),
            pages(&report).to_string(),
            report.failed.to_string(),
            r.retries_scheduled.to_string(),
            r.retries_exhausted.to_string(),
            r.breaker_trips.to_string(),
            r.worker_panics.to_string(),
            format!("{gp:.0}"),
            format!("{:.1}", r.recovery_wait_ms as f64 / 1000.0),
            if resumed_ok { "yes" } else { "NO" }.to_string(),
        ]);
    }
    if let Some(base) = baseline_goodput {
        table.note(format!(
            "goodput at rate 0 is the fault-free ceiling ({base:.0} pages/sim-h); \
             every row's resume ✓ re-runs the crawl killed at round 6 and requires a \
             bit-identical final state digest"
        ));
    }

    vec![table, checkpoint_overhead(&web, &seeds)]
}

/// Wall-clock cost of checkpointing itself: a fault-free resilient run
/// (checkpoint every 4 rounds) against the plain `crawl()` path.
fn checkpoint_overhead(web: &SimulatedWeb, seeds: &[Url]) -> ExperimentResult {
    let mut result = ExperimentResult::new(
        "Recovery (overhead)",
        "Checkpointing overhead at fault rate 0",
        &["variant", "wall ms", "checkpoints", "last ckpt bytes", "sim hours"],
    );

    // Interleaved best-of-5: the minimum wall time of each variant is
    // far more stable than any single short run.
    let opts = ResilienceOptions::injected(FAULT_SEED, 0.0, CHECKPOINT_EVERY_ROUNDS);
    let mut plain_ms = f64::MAX;
    let mut plain_sim = 0.0;
    let mut ckpt_ms = f64::MAX;
    let mut ckpt_sim = 0.0;
    let mut n_ckpts = 0usize;
    let mut last_bytes = 0usize;
    for _ in 0..5 {
        let mut crawler = fresh_crawler(web);
        // lint:allow(wall_clock): recovery experiments report real re-execution wall time
        let t = Instant::now();
        let report = crawler.crawl(seeds.to_vec());
        plain_ms = plain_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        plain_sim = report.simulated_secs / 3600.0;

        let mut crawler = fresh_crawler(web);
        // lint:allow(wall_clock): recovery experiments report real re-execution wall time
        let t = Instant::now();
        let (report, ckpts) = crawler.crawl_resilient(seeds.to_vec(), &opts);
        ckpt_ms = ckpt_ms.min(t.elapsed().as_secs_f64() * 1000.0);
        ckpt_sim = report.simulated_secs / 3600.0;
        n_ckpts = ckpts.len();
        last_bytes = ckpts.last().map(|c| c.size_bytes()).unwrap_or(0);
    }

    result.row(&[
        "plain crawl()".to_string(),
        format!("{plain_ms:.0}"),
        "0".to_string(),
        "-".to_string(),
        format!("{plain_sim:.2}"),
    ]);
    result.row(&[
        format!("checkpoint every {CHECKPOINT_EVERY_ROUNDS} rounds"),
        format!("{ckpt_ms:.0}"),
        n_ckpts.to_string(),
        last_bytes.to_string(),
        format!("{ckpt_sim:.2}"),
    ]);
    let overhead = if plain_ms > 0.0 {
        (ckpt_ms - plain_ms) / plain_ms * 100.0
    } else {
        0.0
    };
    result.note(format!(
        "wall-clock checkpointing overhead {overhead:+.1} % (target < 5 %); \
         simulated crawl time is identical by construction — snapshots cost \
         no simulated seconds, only the encode"
    ));
    result
}

fn analysis_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let norm = plan
        .add(
            src,
            Operator::map("normalize", Package::Base, |mut r| {
                let text = r.text().map(str::to_lowercase).unwrap_or_default();
                r.set("text", text);
                r
            }),
        )
        .expect("static plan");
    let tag = plan
        .add(
            norm,
            Operator::map("measure", Package::Wa, |mut r| {
                let words = r.text().map(|t| t.split_whitespace().count()).unwrap_or(0);
                r.set("words", words);
                r
            }),
        )
        .expect("static plan");
    let keep = plan
        .add(
            tag,
            Operator::filter("keep-substantive", Package::Base, |r| {
                r.get("words").and_then(|v| v.as_int()).unwrap_or(0) >= 3
            }),
        )
        .expect("static plan");
    plan.sink(keep, "analyzed").expect("static plan");
    plan
}

fn flow_docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            let words = 1 + (i * 7) % 12;
            let body = (0..words).map(|w| format!("W{}", (i + w) % 97)).collect::<Vec<_>>();
            r.set("id", i).set("text", body.join(" "));
            r
        })
        .collect()
}

/// Flow-side recovery: partition retries, node-loss rescheduling, and
/// the operator-granular kill-and-resume determinism check.
pub fn flow_recovery() -> ExperimentResult {
    let mut table = ExperimentResult::new(
        "Recovery (flow)",
        "Analysis flow under injected faults",
        &[
            "fault rate",
            "sink records",
            "partition retries",
            "store-read retries",
            "nodes lost",
            "sim secs",
            "resume ✓",
        ],
    );

    let plan = analysis_plan();
    let exec = Executor::new(ExecutionConfig::local(8));
    let inputs = || {
        let mut m = std::collections::HashMap::new();
        m.insert("crawl".to_string(), flow_docs(600));
        m
    };

    for rate in FAULT_RATES {
        let res = FlowResilience::injected(FAULT_SEED, rate, 1);
        let run = exec.run_resilient(&plan, inputs(), &res);
        let (cells, resumable) = match &run {
            Ok(r) => match &r.output {
                Some(out) => {
                    let m = &out.metrics;
                    (
                        vec![
                            out.sinks.values().map(Vec::len).sum::<usize>().to_string(),
                            m.partition_retries.to_string(),
                            m.store_read_retries.to_string(),
                            format!("{:?}", m.nodes_lost),
                            format!("{:.1}", m.simulated_secs),
                        ],
                        true,
                    )
                }
                None => (vec!["interrupted".to_string(); 5], false),
            },
            Err(e) => {
                let mut cells = vec![format!("failed: {e}")];
                cells.resize(5, "-".to_string());
                (cells, false)
            }
        };

        let resume_cell = if resumable {
            let killed = FlowResilience {
                stop_after_nodes: Some(2),
                ..res.clone()
            };
            let ok = exec
                .run_resilient(&plan, inputs(), &killed)
                .ok()
                .and_then(|r| r.checkpoints.last().cloned())
                .and_then(|ckpt| exec.resume_from(&plan, &ckpt, inputs(), &res).ok())
                .and_then(|r| r.output)
                .map(|resumed| {
                    run.as_ref()
                        .ok()
                        .and_then(|r| r.output.as_ref())
                        .map(|base| base.deterministic_digest() == resumed.deterministic_digest())
                        .unwrap_or(false)
                })
                .unwrap_or(false);
            if ok { "yes" } else { "NO" }
        } else {
            "-"
        };

        let mut row = vec![format!("{:.0} %", rate * 100.0)];
        row.extend(cells);
        row.push(resume_cell.to_string());
        table.row(&row);
    }
    table.note(
        "faults are injected uniformly across transient errors, worker panics, \
         node losses, and store read/write failures; a flow that loses every \
         cluster node reports the failed node id and is marked '-' for resume",
    );
    table
}
