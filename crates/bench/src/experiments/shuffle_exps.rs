//! Scale-out harness for the sharded physical runtime: records/sec on a
//! spec-built pipeline at shard counts {1, 2, 4, 8}, for both worker
//! flavours — in-process socketpair threads and real OS worker processes
//! (the `shard_worker` binary) speaking the frame protocol over pipes —
//! against the unsharded in-process engine.
//!
//! Sharding is physical only: every cell computes byte-identical output,
//! and the harness pins that by comparing every cell's deterministic
//! digest against the unsharded baseline's (the `--check` gate in
//! `exp_shuffle`). What the cells differ in is wall clock, frame counts,
//! and wire bytes — which is why this module is on the lint's wall-clock
//! allowlist.
//!
//! The worker binary is found via the `WEBSIFT_SHARD_WORKER` env var or
//! as a sibling of the running benchmark executable; when neither works,
//! process-mode cells are skipped with a note rather than failing the
//! sweep (the in-process cells and the digest gate still run).

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Instant;

use crate::report::ExperimentResult;
use websift_flow::{
    AggSpec, ExecutionConfig, Executor, KeySpec, LogicalPlan, OpSpec, Package, Record,
    ShardConfig, SpecOp,
};
use websift_observe::json::{array, ObjectWriter};

/// The shard counts the sweep measures.
pub const SHUFFLE_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Timed repetitions per cell; the reported wall time is the minimum,
/// measured interleaved across modes so ambient drift hits every cell
/// equally.
const REPS: usize = 3;

/// One measured (mode, shards) cell.
#[derive(Debug, Clone)]
pub struct ShufflePoint {
    /// `"in-process"` baseline, `"threads"` (socketpair workers), or
    /// `"processes"` (real `shard_worker` children).
    pub mode: &'static str,
    /// Worker shard count; 0 for the unsharded baseline.
    pub shards: usize,
    pub records: usize,
    pub wall_secs: f64,
    pub records_per_sec: f64,
    /// `FlowOutput::deterministic_digest` of the run — identical across
    /// every cell or the sweep is broken.
    pub digest: u64,
    pub frames: u64,
    pub wire_bytes: u64,
}

/// The full harness outcome.
#[derive(Debug)]
pub struct ShuffleReport {
    pub result: ExperimentResult,
    pub points: Vec<ShufflePoint>,
    pub docs: usize,
    pub shards: Vec<usize>,
    /// Every cell's digest equals the unsharded baseline's.
    pub digests_identical: bool,
    pub baseline_digest: u64,
    /// The worker binary process-mode cells used, when found.
    pub worker_bin: Option<PathBuf>,
}

/// Locates the `shard_worker` binary: `WEBSIFT_SHARD_WORKER` wins, then
/// a sibling of the current executable (bench bins and flow bins land in
/// the same target directory). `None` means process-mode cells are
/// skipped.
pub fn worker_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("WEBSIFT_SHARD_WORKER") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let sibling = std::env::current_exe().ok()?.with_file_name("shard_worker");
    sibling.is_file().then_some(sibling)
}

/// The measured pipeline, built entirely from [`OpSpec`]s so every stage
/// is eligible for worker shards: stamp -> dup -> parity -> grow ->
/// upper -> tally (a combinable Count reduce).
fn shuffle_plan() -> LogicalPlan {
    let specs = [
        OpSpec::new(
            "stamp",
            Package::Base,
            SpecOp::MapStamp { field: "stamp".into(), from: "id".into(), mul: 3, add: 1 },
        ),
        OpSpec::new("dup", Package::Base, SpecOp::FlatMapDup { copies: 2, tag: "half".into() }),
        OpSpec::new(
            "parity",
            Package::Base,
            SpecOp::FilterIntMod { field: "id".into(), modulus: 2, keep: 0 },
        ),
        OpSpec::new(
            "grow",
            Package::Base,
            SpecOp::MapGrow { suffix: " lorem ipsum dolor sit amet consectetur".into() },
        ),
        OpSpec::new("upper", Package::Base, SpecOp::MapUpper),
        OpSpec::new(
            "tally",
            Package::Base,
            SpecOp::Reduce {
                key: KeySpec::IntMod { field: "id".into(), modulus: 17, prefix: "g".into() },
                agg: AggSpec::Count { into: "id".into() },
            },
        ),
    ];
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("docs");
    for spec in specs {
        prev = plan.add(prev, spec.build()).expect("shuffle plan");
    }
    plan.sink(prev, "out").expect("shuffle plan");
    plan
}

fn shuffle_corpus(docs: usize) -> Vec<Record> {
    (0..docs)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set(
                "text",
                format!("document {i} with a body of web text long enough to cost something"),
            );
            r
        })
        .collect()
}

/// One timed run; returns wall seconds, the deterministic digest, and
/// the (frames, wire bytes) that crossed shard channels.
fn time_shuffle_run(
    plan: &LogicalPlan,
    records: &[Record],
    sharding: Option<ShardConfig>,
) -> (f64, u64, u64, u64) {
    let config = ExecutionConfig { sharding, ..ExecutionConfig::local(4) };
    let exec = Executor::new(config);
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), records.to_vec());
    // lint:allow(wall_clock): the shuffle harness measures real scale-out wall time
    let t = Instant::now();
    let out = exec.run(plan, inputs).expect("shuffle flow");
    let secs = t.elapsed().as_secs_f64();
    std::hint::black_box(out.sinks.values().map(Vec::len).sum::<usize>());
    (secs, out.deterministic_digest(), out.physical.shard_frames, out.physical.shard_wire_bytes)
}

/// Runs the sweep at the given shard counts.
pub fn shuffle_at(docs: usize, shards: &[usize]) -> ShuffleReport {
    let plan = shuffle_plan();
    let records = shuffle_corpus(docs);
    let worker_bin = worker_binary();

    let mut result = ExperimentResult::new(
        "Shuffle",
        "Wall-clock records/sec by worker-shard count (interleaved best of 3)",
        &["shards", "threads rec/s", "processes rec/s", "frames", "wire bytes", "digest"],
    );

    // Per shard count: the thread-worker config, plus the process-worker
    // config when the binary is reachable.
    let configs = |n: usize| -> Vec<(&'static str, ShardConfig)> {
        let mut v = vec![("threads", ShardConfig::in_process(n))];
        if let Some(bin) = &worker_bin {
            v.push(("processes", ShardConfig::process(n, bin)));
        }
        v
    };

    // Warm-up plus the unsharded baseline digest.
    let (_, baseline_digest, _, _) = time_shuffle_run(&plan, &records, None);
    let mut best_base = f64::MAX;
    let mut points = Vec::new();
    for _ in 0..REPS {
        let (secs, ..) = time_shuffle_run(&plan, &records, None);
        best_base = best_base.min(secs);
    }
    points.push(ShufflePoint {
        mode: "in-process",
        shards: 0,
        records: records.len(),
        wall_secs: best_base,
        records_per_sec: if best_base > 0.0 { records.len() as f64 / best_base } else { 0.0 },
        digest: baseline_digest,
        frames: 0,
        wire_bytes: 0,
    });

    let mut digests_identical = true;
    for &n in shards {
        let mut row: Vec<String> = vec![n.to_string()];
        let mut row_frames = 0u64;
        let mut row_wire = 0u64;
        let mut row_digest = baseline_digest;
        for (mode, cfg) in configs(n) {
            let mut best = f64::MAX;
            let mut digest = 0u64;
            let mut frames = 0u64;
            let mut wire = 0u64;
            for _ in 0..REPS {
                let (secs, d, f, w) = time_shuffle_run(&plan, &records, Some(cfg.clone()));
                best = best.min(secs);
                (digest, frames, wire) = (d, f, w);
            }
            digests_identical &= digest == baseline_digest;
            let rps = if best > 0.0 { records.len() as f64 / best } else { 0.0 };
            row.push(format!("{rps:.0}"));
            (row_frames, row_wire, row_digest) = (frames, wire, digest);
            points.push(ShufflePoint {
                mode,
                shards: n,
                records: records.len(),
                wall_secs: best,
                records_per_sec: rps,
                digest,
                frames,
                wire_bytes: wire,
            });
        }
        if worker_bin.is_none() {
            row.push("(skipped)".to_string());
        }
        row.push(row_frames.to_string());
        row.push(row_wire.to_string());
        row.push(format!("{row_digest:016x}"));
        result.row(&row);
    }

    result.note(format!(
        "{docs} source records at DoP 4; sharding is physical only — every cell's \
         deterministic digest {} the unsharded baseline's ({baseline_digest:016x}); \
         worker binary: {}",
        if digests_identical { "matches" } else { "DIVERGES FROM" },
        match &worker_bin {
            Some(p) => p.display().to_string(),
            None => "not found, process-mode cells skipped".to_string(),
        }
    ));

    ShuffleReport {
        result,
        points,
        docs,
        shards: shards.to_vec(),
        digests_identical,
        baseline_digest,
        worker_bin,
    }
}

/// Machine-readable report for `BENCH_SHUFFLE.json`. The host's logical
/// core count and the measured shard grid are stamped in so a reader can
/// tell whether a sweep measured real scale-out or single-core overhead.
pub fn shuffle_json(report: &ShuffleReport) -> String {
    let points = array(report.points.iter().map(|p| {
        ObjectWriter::new()
            .str("mode", p.mode)
            .u64("shards", p.shards as u64)
            .u64("records", p.records as u64)
            .f64("wall_secs", p.wall_secs)
            .f64("records_per_sec", p.records_per_sec)
            .u64("digest", p.digest)
            .u64("frames", p.frames)
            .u64("wire_bytes", p.wire_bytes)
            .finish()
    }));
    ObjectWriter::new()
        .str("experiment", "shuffle")
        .str("pipeline", "spec-built stamp/dup/parity/grow/upper/tally")
        .u64("docs", report.docs as u64)
        .u64("host_logical_cores", crate::report::host_logical_cores())
        .raw("shards", &array(report.shards.iter().map(|s| s.to_string())))
        .raw("process_workers_measured", if report.worker_bin.is_some() { "true" } else { "false" })
        .raw("digests_identical", if report.digests_identical { "true" } else { "false" })
        .u64("baseline_digest", report.baseline_digest)
        .raw("points", &points)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_smoke_produces_all_cells_and_identical_digests() {
        let report = shuffle_at(24, &[1, 2]);
        // baseline + per shard count: threads always, processes only
        // when the worker binary is reachable from the test runner
        let per_shard = if report.worker_bin.is_some() { 2 } else { 1 };
        assert_eq!(report.points.len(), 1 + 2 * per_shard);
        assert!(report.points.iter().all(|p| p.records_per_sec > 0.0));
        assert!(report.digests_identical, "sharding must be digest-invariant");
        let sharded_frames: u64 =
            report.points.iter().filter(|p| p.shards > 0).map(|p| p.frames).sum();
        assert!(sharded_frames > 0, "sharded cells crossed real channels");

        let json = shuffle_json(&report);
        assert!(json.contains("\"experiment\":\"shuffle\""));
        assert!(json.contains("\"host_logical_cores\""));
        assert!(json.contains("\"shards\":[1,2]"));
        assert!(json.contains("\"digests_identical\":true"));
        assert!(json.contains("\"mode\":\"threads\""));
    }
}
