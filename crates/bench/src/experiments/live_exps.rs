//! Live incremental-execution harness: cost-per-new-document of the
//! per-round delta pass vs a batch full recompute, per crawl round and
//! DoP, plus the three-way byte-identity `--check` gates on.
//!
//! A [`LiveSession`] crawls a simulated web round by round, running the
//! live extraction flow over each round's *new* pages only and folding
//! the terminal reduce into retained per-key state. After every round
//! the harness replays the same round slices through the *original*
//! plan on a fresh store — the batch full-recompute oracle — and
//! records both costs in simulated seconds (the deterministic clock, so
//! the cost ratio is machine-independent). Wall time per round is also
//! measured — crawl-to-queryable wall freshness — which is why this
//! file is on the lint's wall-clock allowlist. `--check` requires:
//!
//! - store `content_digest` after round k identical for (a) the
//!   incremental session, (b) the batch recompute over the cumulative
//!   corpus, and (c) a session killed at a watermark and resumed;
//! - every deterministic surface (digest, retained-state bytes, reduce
//!   output) identical across the DoP grid;
//! - incremental cost per new document strictly below the full
//!   recompute's from round 2 onward.

use std::sync::Arc;
use std::time::Instant;

use crate::report::ExperimentResult;
use websift_corpus::{CorpusKind, Document, LexiconScale};
use websift_crawler::{
    train_focus_classifier, CrawlConfig, CrawledPage, ResilienceOptions,
};
use websift_flow::IeResources;
use websift_ner::EntityType;
use websift_observe::json::{array, ObjectWriter};
use websift_observe::Observer;
use websift_live::{LiveOptions, LiveSession, Watermark};
use websift_pipeline::flows::{live_extraction_flow, run_over_documents_into};
use websift_serve::ExtractionStore;
use websift_web::{PageId, SimulatedWeb, Url, WebGraph, WebGraphConfig};

/// DoP grid every round is measured at. Deterministic surfaces must be
/// identical across the whole grid.
pub const LIVE_DOPS: [usize; 3] = [1, 2, 4];

/// Store name the live flow routes its `store:` sink to.
const STORE: &str = "live";

/// Store shard count — fixed so content digests are comparable across
/// runs (they are shard-invariant anyway, but keep one variable fewer).
const SHARDS: usize = 4;

/// One measured (DoP, round) cell.
#[derive(Debug, Clone)]
pub struct LivePoint {
    pub dop: usize,
    pub round: u32,
    pub new_documents: u64,
    pub delta_records: u64,
    /// Corpus size after this round (what the recompute pays for).
    pub cumulative_documents: u64,
    /// Simulated seconds of the delta pass over this round's new pages.
    pub incremental_secs: f64,
    /// Simulated seconds of rerunning the full plan over the cumulative
    /// corpus (every round slice, replayed with its round stamp).
    pub recompute_secs: f64,
    /// Simulated crawl-to-queryable latency of this round.
    pub freshness_secs: f64,
    /// Real wall seconds the round took (crawl + delta + seal).
    pub wall_secs: f64,
    /// Incremental store digest after this round.
    pub store_digest: u64,
    /// Batch-oracle store digest after the same rounds.
    pub recompute_digest: u64,
}

impl LivePoint {
    /// Simulated cost per new document, incremental vs recompute. Both
    /// are `None` for a round that admitted no new documents.
    pub fn cost_per_doc(&self) -> Option<(f64, f64)> {
        if self.new_documents == 0 {
            return None;
        }
        let n = self.new_documents as f64;
        Some((self.incremental_secs / n, self.recompute_secs / n))
    }
}

/// Full harness outcome: the rendered table, raw points, and the
/// verdicts `--check` gates on.
#[derive(Debug)]
pub struct LiveReport {
    pub result: ExperimentResult,
    pub points: Vec<LivePoint>,
    pub max_pages: usize,
    pub dops: Vec<usize>,
    /// Rounds the crawl ran (identical at every DoP — the crawl does
    /// not depend on flow parallelism).
    pub rounds: u32,
    pub total_documents: u64,
    pub store_postings: u64,
    /// Final incremental store content digest.
    pub content_digest: u64,
    /// Per-key `AggState` entries retained at the end of the session.
    pub retained_keys: u64,
    /// Round the kill-and-resume check severed the session at.
    pub resume_round: u32,
    /// (a) == (b): incremental digest equals the batch recompute's at
    /// every round boundary, at every DoP.
    pub digests_agree: bool,
    /// (a) == (c): the resumed session's watermarks and final store are
    /// byte-identical to the uninterrupted run's.
    pub resume_agrees: bool,
    /// Digest, retained-state bytes, and reduce output identical across
    /// the DoP grid.
    pub dop_invariant: bool,
    /// Incremental cost/new-doc < recompute cost/new-doc for every
    /// round >= 2 at every DoP (simulated seconds).
    pub incremental_wins: bool,
}

fn live_web() -> SimulatedWeb {
    SimulatedWeb::new(WebGraph::generate(WebGraphConfig::tiny()))
}

fn seeds_for(web: &SimulatedWeb) -> Vec<Url> {
    (0..web.graph().num_pages() as u32)
        .map(PageId)
        .filter(|&p| web.graph().page(p).relevant)
        .take(10)
        .map(|p| web.graph().url_of(p))
        .collect()
}

fn crawl_config(max_pages: usize) -> CrawlConfig {
    CrawlConfig { max_pages, threads: 4, ..CrawlConfig::default() }
}

/// The same document construction the live session applies per round,
/// over the cumulative crawl — the batch oracle's input.
fn docs_from_pages(pages: &[CrawledPage]) -> Vec<Document> {
    pages
        .iter()
        .enumerate()
        .map(|(i, p)| Document {
            id: i as u64,
            kind: CorpusKind::RelevantWeb,
            url: Some(p.url.to_string()),
            title: String::new(),
            body: p.net_text.clone(),
            html: None,
            gold: Default::default(),
        })
        .collect()
}

/// Everything one uninterrupted session run yields that the report
/// needs: per-round samples, watermark frames (for the resume check),
/// and the final deterministic surfaces.
struct SessionRun {
    samples: Vec<RoundSample>,
    watermarks: Vec<Watermark>,
    cumulative: Vec<Document>,
    final_digest: u64,
    state_bytes: Vec<u8>,
    finished: Vec<websift_flow::Record>,
    postings: u64,
    retained_keys: u64,
}

struct RoundSample {
    round: u32,
    new_documents: u64,
    delta_records: u64,
    cumulative_documents: u64,
    incremental_secs: f64,
    freshness_secs: f64,
    wall_secs: f64,
    store_digest: u64,
}

fn start_session<'w>(
    web: &'w SimulatedWeb,
    plan: &websift_flow::LogicalPlan,
    max_pages: usize,
    dop: usize,
) -> LiveSession<'w> {
    LiveSession::start(
        web,
        train_focus_classifier(60, 2.0, 4),
        crawl_config(max_pages),
        seeds_for(web),
        &ResilienceOptions::default(),
        plan,
        ExtractionStore::new(STORE, SHARDS),
        LiveOptions { dop, ..LiveOptions::default() },
        Arc::new(Observer::new()),
    )
    .expect("live bench session starts")
}

/// Runs one session to crawl exhaustion, sampling every round.
fn run_session(
    web: &SimulatedWeb,
    plan: &websift_flow::LogicalPlan,
    max_pages: usize,
    dop: usize,
) -> SessionRun {
    let mut session = start_session(web, plan, max_pages, dop);
    let mut samples = Vec::new();
    let mut watermarks = Vec::new();
    let mut total_docs = 0u64;
    let mut prev_incremental = 0.0f64;
    loop {
        // lint:allow(wall_clock): per-round wall latency is the crawl-to-queryable freshness this harness reports
        let t = Instant::now();
        let Some(round) = session.advance().expect("live bench round advances") else {
            break;
        };
        let wall_secs = t.elapsed().as_secs_f64();
        total_docs += round.new_documents as u64;
        let incremental_total = session.metrics().incremental_cost_secs;
        samples.push(RoundSample {
            round: round.round,
            new_documents: round.new_documents as u64,
            delta_records: round.delta_records as u64,
            cumulative_documents: total_docs,
            incremental_secs: incremental_total - prev_incremental,
            freshness_secs: round.freshness_secs,
            wall_secs,
            store_digest: round.watermark.parts().store_digest,
        });
        prev_incremental = incremental_total;
        watermarks.push(round.watermark);
    }
    let cumulative = docs_from_pages(&session.crawl().report().relevant);
    SessionRun {
        final_digest: session.store().content_digest(),
        postings: session.store().posting_count(),
        retained_keys: session.metrics().retained_keys,
        state_bytes: session.state_bytes(),
        finished: session.finished("token_frequencies").expect("retained sink"),
        samples,
        watermarks,
        cumulative,
    }
}

/// Batch full-recompute oracle after round `upto` (1-based index into
/// the sample list): a fresh store fed every round slice through the
/// original plan, returning (content digest, total simulated seconds) —
/// what a non-incremental pipeline pays to reach the same state.
fn recompute(
    plan: &websift_flow::LogicalPlan,
    docs: &[Document],
    samples: &[RoundSample],
    upto: usize,
    dop: usize,
) -> (u64, f64) {
    let mut store = ExtractionStore::new(STORE, SHARDS);
    let mut secs = 0.0;
    let mut cursor = 0usize;
    for sample in &samples[..upto] {
        let count = sample.new_documents as usize;
        store.set_round(sample.round);
        let out = run_over_documents_into(plan, &docs[cursor..cursor + count], dop, &mut store)
            .expect("batch oracle flow");
        secs += out.metrics.simulated_secs;
        cursor += count;
    }
    (store.content_digest(), secs)
}

/// Kill-and-resume check at `dop`: resume a fresh session from the
/// uninterrupted run's round-`kill_after` watermark and require every
/// subsequent watermark frame and the final digest to be byte-identical.
fn resume_agrees(
    web: &SimulatedWeb,
    plan: &websift_flow::LogicalPlan,
    max_pages: usize,
    dop: usize,
    straight: &SessionRun,
    kill_after: usize,
) -> bool {
    let frame = straight.watermarks[kill_after - 1].as_bytes().to_vec();
    let watermark = Watermark::from_bytes(frame).expect("watermark decodes");
    let mut resumed = LiveSession::resume_from(
        web,
        crawl_config(max_pages),
        &ResilienceOptions::default(),
        plan,
        LiveOptions { dop, ..LiveOptions::default() },
        Arc::new(Observer::new()),
        &watermark,
    )
    .expect("live bench session resumes");
    let mut marks = Vec::new();
    while let Some(round) = resumed.advance().expect("resumed round advances") {
        marks.push(round.watermark);
    }
    marks.len() == straight.watermarks.len() - kill_after
        && straight.watermarks[kill_after..]
            .iter()
            .zip(&marks)
            .all(|(a, b)| a.as_bytes() == b.as_bytes())
        && resumed.store().content_digest() == straight.final_digest
        && resumed.state_bytes() == straight.state_bytes
}

/// Runs the standard sweep: every DoP in [`LIVE_DOPS`] over the same
/// crawl, plus the batch oracle per round and one resume check.
pub fn live(max_pages: usize) -> LiveReport {
    live_at(max_pages, &LIVE_DOPS)
}

/// Runs the sweep at explicit DoPs (`--quick` uses a shorter grid; at
/// least one DoP is required, and >= 2 make the invariance check mean
/// something).
pub fn live_at(max_pages: usize, dops: &[usize]) -> LiveReport {
    assert!(!dops.is_empty(), "need at least one DoP");
    let web = live_web();
    let resources = IeResources::quick_for_tests(LexiconScale::tiny());
    let plan = live_extraction_flow(&resources, EntityType::Gene, STORE);

    let runs: Vec<SessionRun> =
        dops.iter().map(|&dop| run_session(&web, &plan, max_pages, dop)).collect();
    let base = &runs[0];
    assert!(base.samples.len() >= 2, "crawl ended after one round; raise max_pages");

    let mut result = ExperimentResult::new(
        "Live",
        "Incremental delta pass vs batch full recompute, per crawl round and DoP",
        &[
            "DoP", "round", "new docs", "Δ records", "corpus", "incr s/doc",
            "recomp s/doc", "speedup", "fresh s", "digest",
        ],
    );

    let mut points: Vec<LivePoint> = Vec::new();
    let mut digests_agree = true;
    for (run, &dop) in runs.iter().zip(dops) {
        for (k, sample) in run.samples.iter().enumerate() {
            let (recompute_digest, recompute_secs) =
                recompute(&plan, &run.cumulative, &run.samples, k + 1, dop);
            digests_agree &= sample.store_digest == recompute_digest;
            let point = LivePoint {
                dop,
                round: sample.round,
                new_documents: sample.new_documents,
                delta_records: sample.delta_records,
                cumulative_documents: sample.cumulative_documents,
                incremental_secs: sample.incremental_secs,
                recompute_secs,
                freshness_secs: sample.freshness_secs,
                wall_secs: sample.wall_secs,
                store_digest: sample.store_digest,
                recompute_digest,
            };
            let (incr_per, recomp_per) = point.cost_per_doc().unwrap_or((0.0, 0.0));
            result.row(&[
                dop.to_string(),
                point.round.to_string(),
                point.new_documents.to_string(),
                point.delta_records.to_string(),
                point.cumulative_documents.to_string(),
                format!("{incr_per:.4}"),
                format!("{recomp_per:.4}"),
                if incr_per > 0.0 { format!("{:.2}x", recomp_per / incr_per) } else { "-".into() },
                format!("{:.3}", point.freshness_secs),
                format!("{:016x}", point.store_digest),
            ]);
            points.push(point);
        }
    }

    // DoP invariance: every deterministic surface equal across the grid.
    let dop_invariant = runs.iter().all(|r| {
        r.final_digest == base.final_digest
            && r.state_bytes == base.state_bytes
            && r.finished == base.finished
            && r.samples.len() == base.samples.len()
            && r.samples
                .iter()
                .zip(&base.samples)
                .all(|(a, b)| a.store_digest == b.store_digest)
    });

    // Kill-and-resume: sever the first run mid-session and replay.
    let kill_after = (base.samples.len() / 2).max(1);
    let resume_ok = resume_agrees(&web, &plan, max_pages, dops[0], base, kill_after);

    // The incremental claim: from round 2 on, the delta pass must beat a
    // full recompute per new document (round 1 is a wash by definition —
    // there is nothing retained yet to save).
    let incremental_wins = points
        .iter()
        .filter(|p| p.round >= 2)
        .filter_map(LivePoint::cost_per_doc)
        .all(|(incr, recomp)| incr < recomp);

    result.note(format!(
        "{} rounds, {} documents, {} postings (content digest {:016x}); {} retained \
         reduce keys; incremental digest {} the batch recompute's at every round and DoP \
         {dops:?}; kill at round {kill_after} + resume {}; deterministic surfaces {} \
         across DoPs; incremental cost/new-doc {} the full recompute's from round 2 on \
         (simulated seconds)",
        base.samples.len(),
        base.cumulative.len(),
        base.postings,
        base.final_digest,
        base.retained_keys,
        if digests_agree { "matches" } else { "MISMATCHES" },
        if resume_ok { "replays byte-identically" } else { "DIVERGES" },
        if dop_invariant { "agree" } else { "DISAGREE" },
        if incremental_wins { "beats" } else { "DOES NOT BEAT" },
    ));

    LiveReport {
        result,
        points,
        max_pages,
        dops: dops.to_vec(),
        rounds: base.samples.len() as u32,
        total_documents: base.cumulative.len() as u64,
        store_postings: base.postings,
        content_digest: base.final_digest,
        retained_keys: base.retained_keys,
        resume_round: kill_after as u32,
        digests_agree,
        resume_agrees: resume_ok,
        dop_invariant,
        incremental_wins,
    }
}

/// Machine-readable report for `BENCH_LIVE.json`. Host parallelism and
/// the round/DoP grid are stamped in so wall-clock freshness can be
/// compared across machines; costs are simulated seconds and must not
/// vary across machines at all.
pub fn live_json(report: &LiveReport) -> String {
    let points = array(report.points.iter().map(|p| {
        let (incr_per, recomp_per) = p.cost_per_doc().unwrap_or((0.0, 0.0));
        ObjectWriter::new()
            .u64("dop", p.dop as u64)
            .u64("round", u64::from(p.round))
            .u64("new_documents", p.new_documents)
            .u64("delta_records", p.delta_records)
            .u64("cumulative_documents", p.cumulative_documents)
            .f64("incremental_secs", p.incremental_secs)
            .f64("recompute_secs", p.recompute_secs)
            .f64("incremental_secs_per_doc", incr_per)
            .f64("recompute_secs_per_doc", recomp_per)
            .f64("freshness_secs", p.freshness_secs)
            .f64("wall_secs", p.wall_secs)
            .u64("store_digest", p.store_digest)
            .u64("recompute_digest", p.recompute_digest)
            .finish()
    }));
    let rounds = array((1..=report.rounds).map(|r| u64::from(r).to_string()));
    let dops = array(report.dops.iter().map(|d| d.to_string()));
    ObjectWriter::new()
        .str("experiment", "live")
        .u64("max_pages", report.max_pages as u64)
        .u64("host_logical_cores", crate::report::host_logical_cores())
        .u64("rounds", u64::from(report.rounds))
        .u64("total_documents", report.total_documents)
        .u64("store_postings", report.store_postings)
        .u64("content_digest", report.content_digest)
        .u64("retained_keys", report.retained_keys)
        .u64("resume_round", u64::from(report.resume_round))
        .raw("digests_agree", if report.digests_agree { "true" } else { "false" })
        .raw("resume_agrees", if report.resume_agrees { "true" } else { "false" })
        .raw("dop_invariant", if report.dop_invariant { "true" } else { "false" })
        .raw("incremental_wins", if report.incremental_wins { "true" } else { "false" })
        .raw("round_grid", &rounds)
        .raw("dop_grid", &dops)
        .raw("points", &points)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_smoke_holds_every_verdict() {
        let report = live_at(60, &[1, 2]);
        assert!(report.rounds >= 2);
        assert_eq!(report.points.len(), 2 * report.rounds as usize);
        assert!(report.digests_agree, "incremental store diverged from batch recompute");
        assert!(report.resume_agrees, "kill-and-resume diverged");
        assert!(report.dop_invariant, "deterministic surfaces vary with DoP");
        assert!(report.incremental_wins, "delta pass lost to a full recompute");
        assert!(report.store_postings > 0);
        let json = live_json(&report);
        assert!(json.contains("\"experiment\":\"live\""));
        assert!(json.contains("\"digests_agree\":true"));
        assert!(json.contains("\"resume_agrees\":true"));
        assert!(json.contains("\"dop_invariant\":true"));
        assert!(json.contains("\"incremental_wins\":true"));
        assert!(json.contains("\"host_logical_cores\""));
    }

    #[test]
    fn recompute_oracle_is_deterministic() {
        let web = live_web();
        let resources = IeResources::quick_for_tests(LexiconScale::tiny());
        let plan = live_extraction_flow(&resources, EntityType::Gene, STORE);
        let run = run_session(&web, &plan, 60, 2);
        let upto = run.samples.len();
        let (d1, s1) = recompute(&plan, &run.cumulative, &run.samples, upto, 2);
        let (d2, s2) = recompute(&plan, &run.cumulative, &run.samples, upto, 2);
        assert_eq!(d1, d2);
        assert_eq!(s1, s2);
        assert_eq!(d1, run.final_digest);
    }
}
