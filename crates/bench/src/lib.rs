//! Shared helpers for the websift benchmark and experiment harness.
//! The real content lives in `src/bin/*` (experiment binaries, one per
//! paper table/figure) and `benches/*` (Criterion benches).

pub mod experiments;
pub mod report;

pub use report::{fmt_table, ExperimentResult};
