//! Static-analyzer integration tests (satellite 3):
//!
//! 1. golden-file tests — the three §4.2 failure modes (use-before-def,
//!    OpenNLP version conflict, over-memory admission) plus the silent
//!    combining-disabled pitfall (WS010) produce exactly the committed
//!    diagnostics JSON, byte for byte;
//! 2. a property test — logical optimization never changes the analyzer's
//!    *error* verdict: the set of (code, message) error pairs is identical
//!    before and after `optimize`, across randomly generated chain plans.

use proptest::prelude::*;
use websift_analyze::{diagnostics_to_json, Severity};
use websift_flow::packages::ie;
use websift_flow::{
    analyze_plan, analyze_script, optimize, AnalyzeOptions, ClusterSpec, CostModel, LogicalPlan,
    Operator, OperatorRegistry, Package, Record,
};

fn ie_registry() -> OperatorRegistry {
    let mut reg = OperatorRegistry::new();
    reg.register("ie.annotate_sentences", ie::annotate_sentences);
    reg.register("ie.annotate_negation", ie::annotate_negation);
    reg
}

/// §4.2 failure 1: an annotator applied before the annotation it reads
/// exists. `ie.annotate_negation` consumes sentence spans, but the script
/// runs it before `ie.annotate_sentences`.
const USE_BEFORE_DEF: &str = "\
$pages = read 'crawl';
$neg = apply ie.annotate_negation $pages;
$sents = apply ie.annotate_sentences $neg;
write $neg 'negation';
write $sents 'sentences';";

#[test]
fn golden_use_before_def() {
    let diags = analyze_script(USE_BEFORE_DEF, &ie_registry(), &AnalyzeOptions::default())
        .expect("script parses");
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/use_before_def.json").trim_end(),
    );
    assert_eq!(diags[0].line, Some(2), "mapped to the offending script line");
}

/// §4.2 failure 2: the OpenNLP war story — a v1.5 annotator and a v1.4
/// ML entity tagger in one flow, which a single class loader cannot host.
fn version_conflict_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan.add(src, ie::annotate_sentences()).expect("static plan");
    let disease = plan
        .add(
            sents,
            Operator::map("ie.annotate_entities_ml[disease]", Package::Ie, |r| r)
                .with_reads(&["text", "sentences"])
                .with_writes(&["entities"])
                .with_library("opennlp", 14),
        )
        .expect("static plan");
    plan.sink(disease, "entities").expect("static plan");
    plan
}

#[test]
fn golden_version_conflict() {
    let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
    let diags = analyze_plan(&version_conflict_plan(), &opts);
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/version_conflict.json").trim_end(),
    );
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

/// §4.2 failure 3: a flow whose per-worker footprint can never fit the
/// paper cluster's 24 GB nodes at DoP 28.
fn over_memory_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let mut prev = src;
    for (i, gb) in [20u64, 20, 20].iter().enumerate() {
        prev = plan
            .add(
                prev,
                Operator::map(&format!("ie.fat_model_{i}"), Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&[&format!("fat{i}")])
                    .with_cost(CostModel {
                        memory_bytes: gb << 30,
                        ..CostModel::default()
                    }),
            )
            .expect("static plan");
    }
    plan.sink(prev, "out").expect("static plan");
    plan
}

#[test]
fn golden_over_memory() {
    let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
    let diags = analyze_plan(&over_memory_plan(), &opts);
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/over_memory.json").trim_end(),
    );
}

/// The sharded variant of §4.2 failure 3: a 10 GB flow that fits a
/// two-node 24 GB cluster at DoP 2 in the one-process model (one worker
/// per node sharing the footprint), but not as 8 worker *processes* —
/// 4 shards per node each need the full 10 GB resident, and 40 GB > 24 GB.
fn sharded_memory_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let fat = plan
        .add(
            src,
            Operator::map("ie.fat_model", Package::Ie, |r| r)
                .with_reads(&["text"])
                .with_writes(&["fat"])
                .with_cost(CostModel {
                    memory_bytes: 10u64 << 30,
                    ..CostModel::default()
                }),
        )
        .expect("static plan");
    plan.sink(fat, "out").expect("static plan");
    plan
}

#[test]
fn golden_sharded_over_memory() {
    let cluster = ClusterSpec::local(2, 24, 8);
    let plan = sharded_memory_plan();

    // one multi-threaded process per node: 10 GB fits 24 GB nodes
    let unsharded = AnalyzeOptions::default().with_admission(cluster.clone(), 2);
    assert!(
        analyze_plan(&plan, &unsharded).is_empty(),
        "the unsharded plan is admissible"
    );
    websift_flow::admit(&plan, 2, &cluster).expect("runtime admission agrees");

    // 8 shard processes across 2 nodes: 4 x 10 GB per node does not
    let sharded = unsharded.with_shards(8);
    let diags = analyze_plan(&plan, &sharded);
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/sharded_over_memory.json").trim_end(),
    );
    let err = websift_flow::admit_sharded(&plan, 2, &cluster, Some(8)).unwrap_err();
    assert!(err.to_string().contains("10.0 GB"), "{err}");
}

/// The silent-pitfall golden: a per-corpus tally written as a `Custom`
/// closure. The plan is correct and runs, but the executor cannot
/// pre-aggregate it inside fused stages — the optimizer must say so
/// (WS010, info severity) instead of silently shipping every group
/// uncombined.
fn custom_aggregate_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan.add(src, ie::annotate_sentences()).expect("static plan");
    let tally = plan
        .add(
            sents,
            Operator::reduce(
                "ie.tally_by_corpus",
                Package::Ie,
                |r| format!("{:?}", r.get("corpus")),
                |key, group| {
                    let mut out = Record::new();
                    out.set("key", key).set("count", group.len());
                    vec![out]
                },
            ),
        )
        .expect("static plan");
    plan.sink(tally, "tallies").expect("static plan");
    plan
}

#[test]
fn golden_custom_aggregate_disables_combining() {
    let diags = analyze_plan(&custom_aggregate_plan(), &AnalyzeOptions::default());
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/custom_aggregate.json").trim_end(),
    );
    // info, not error: the plan still runs, just without combining
    assert!(diags.iter().all(|d| d.severity == Severity::Info));
}

#[test]
fn golden_custom_aggregate_in_live_mode_adds_ws012() {
    let diags =
        analyze_plan(&custom_aggregate_plan(), &AnalyzeOptions::default().with_live_mode());
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/custom_aggregate_live.json").trim_end(),
    );
    // live mode escalates, but only to warning: a live session can still
    // opt into the per-round recompute
    assert_eq!(
        diags.iter().map(|d| d.severity).collect::<Vec<_>>(),
        vec![Severity::Info, Severity::Warning],
    );
}

// ---------------------------------------------------------------------
// Field-flow goldens: WS013 / WS014 / WS015 + one clean plan
// ---------------------------------------------------------------------

use websift_analyze::lattice::FieldType;

/// WS013: the sentence annotator declares its spans as an array, a
/// downstream joiner insists on reading them as a string.
fn type_conflict_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan
        .add(
            src,
            Operator::map("ie.annotate_sentences", Package::Ie, |r| r)
                .with_reads(&["text"])
                .with_writes(&["sentences"])
                .with_write_types(&[("sentences", FieldType::Array)]),
        )
        .expect("static plan");
    let joiner = plan
        .add(
            sents,
            Operator::map("wa.join_sentences", Package::Wa, |r| r)
                .with_read_types(&[("sentences", FieldType::Str)])
                .with_writes(&["flat"]),
        )
        .expect("static plan");
    plan.sink(joiner, "flat").expect("static plan");
    plan
}

#[test]
fn golden_ws013_type_conflict() {
    let diags = analyze_plan(&type_conflict_plan(), &AnalyzeOptions::default());
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/ws013_type_conflict.json").trim_end(),
    );
    assert!(diags.iter().any(|d| d.severity == Severity::Error));
}

/// WS014: two 15 GB annotators that fuse into a single 30 GB stage — the
/// whole-plan bound (WS007) and the stage-level refinement (WS014) both
/// reject it, because fusing concentrates the footprints into one worker.
fn fused_over_memory_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let mut prev = src;
    for (i, field) in ["pos", "ner"].iter().enumerate() {
        prev = plan
            .add(
                prev,
                Operator::map(&format!("ie.big_model_{i}"), Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&[field])
                    .with_cost(CostModel {
                        memory_bytes: 15 << 30,
                        ..CostModel::default()
                    }),
            )
            .expect("static plan");
    }
    plan.sink(prev, "annotated").expect("static plan");
    plan
}

#[test]
fn golden_ws014_fused_stage_over_memory() {
    let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
    let diags = analyze_plan(&fused_over_memory_plan(), &opts);
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/ws014_fused_over_memory.json").trim_end(),
    );
    assert!(diags.iter().any(|d| d.code == "WS014"));
}

/// WS015: the same language filter applied twice with only a sentence
/// annotator (which touches none of the filter's fields) between.
fn redundant_filter_plan() -> LogicalPlan {
    let keep = || {
        Operator::filter("dc.keep_english", Package::Dc, |_| true).with_reads(&["text"])
    };
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let first = plan.add(src, keep()).expect("static plan");
    let sents = plan.add(first, ie::annotate_sentences()).expect("static plan");
    let second = plan.add(sents, keep()).expect("static plan");
    plan.sink(second, "english").expect("static plan");
    plan
}

#[test]
fn golden_ws015_redundant_filter() {
    let diags = analyze_plan(&redundant_filter_plan(), &AnalyzeOptions::default());
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/ws015_redundant_filter.json").trim_end(),
    );
    // advisory: the duplicate is wasteful, not wrong
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
}

/// A fully-annotated, admission-checked, typed pipeline with nothing to
/// report: the analyzer must stay silent (the golden pins the empty
/// array, byte for byte).
fn clean_typed_plan() -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("crawl");
    let sents = plan
        .add(
            src,
            Operator::map("ie.annotate_sentences", Package::Ie, |r| r)
                .with_reads(&["text"])
                .with_writes(&["sentences"])
                .with_write_types(&[("sentences", FieldType::Array)])
                .with_read_types(&[("text", FieldType::Str)]),
        )
        .expect("static plan");
    let keep = plan
        .add(
            sents,
            Operator::filter("has-sentences", Package::Base, |_| true)
                .with_read_types(&[("sentences", FieldType::Array)]),
        )
        .expect("static plan");
    plan.sink(keep, "sentences").expect("static plan");
    plan
}

#[test]
fn golden_clean_plan_is_silent() {
    let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
    let diags = analyze_plan(&clean_typed_plan(), &opts);
    assert_eq!(
        diagnostics_to_json(&diags),
        include_str!("golden/clean_typed.json").trim_end(),
    );
    assert!(diags.is_empty(), "{diags:?}");
}

// ---------------------------------------------------------------------
// Verdict invariance under optimization
// ---------------------------------------------------------------------

/// A pool of operators exercising every optimizer rule: cheap/expensive
/// filters (reorder), disjoint and dependent filter/map pairs (pull
/// forward), identities (elimination), conflicting libraries, overwrites.
fn pool_op(idx: usize) -> Operator {
    let filter = |name: &str, reads: &[&str], us: f64| {
        Operator::filter(name, Package::Base, |_| true)
            .with_reads(reads)
            .with_cost(CostModel { us_per_char: us, ..CostModel::default() })
    };
    match idx {
        0 => filter("cheap-len", &["text"], 0.001),
        1 => filter("costly-regex", &["text"], 5.0),
        2 => ie::annotate_sentences(),
        3 => Operator::map("negation", Package::Ie, |r| r)
            .with_reads(&["text", "sentences"])
            .with_writes(&["negation"]),
        4 => filter("has-sentences", &["sentences"], 0.01),
        5 => Operator::map("identity", Package::Base, |r| r),
        6 => Operator::map("disease-ml", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["entities"])
            .with_library("opennlp", 14),
        7 => Operator::map("stage-a", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["x"]),
        8 => Operator::map("stage-b", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["x"]),
        // typed writer/reader pair: any chain placing the reader below the
        // writer trips WS013, and that error must survive optimization
        9 => Operator::map("typed-writer", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["typed"])
            .with_write_types(&[("typed", FieldType::Int)]),
        _ => Operator::filter("typed-reader", Package::Base, |_| true)
            .with_read_types(&[("typed", FieldType::Str)])
            .with_cost(CostModel { us_per_char: 0.02, ..CostModel::default() }),
    }
}

fn chain_plan(indices: &[usize]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("docs");
    for &i in indices {
        prev = plan.add(prev, pool_op(i)).expect("chain plan");
    }
    plan.sink(prev, "out").expect("chain plan");
    plan
}

/// The analyzer's error verdict: sorted (code, message) pairs. Warnings
/// are advisory and may legitimately shift with plan shape; errors decide
/// whether a flow runs and must not depend on operator placement noise.
fn error_verdict(plan: &LogicalPlan, opts: &AnalyzeOptions) -> Vec<(String, String)> {
    let mut verdict: Vec<(String, String)> = analyze_plan(plan, opts)
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| (d.code, d.message))
        .collect();
    verdict.sort();
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn optimizer_never_changes_error_verdict(
        indices in prop::collection::vec(0usize..11, 1..8),
    ) {
        let opts = AnalyzeOptions::default()
            .with_admission(ClusterSpec::paper_cluster(), 28);
        let mut plan = chain_plan(&indices);
        let before = error_verdict(&plan, &opts);
        let rewrites = optimize(&mut plan);
        let after = error_verdict(&plan, &opts);
        prop_assert_eq!(
            before,
            after,
            "verdict changed for chain {:?} after rewrites {:?}",
            indices,
            rewrites
        );
    }
}
