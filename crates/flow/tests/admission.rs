//! Admission-control hardening properties (the serve-layer reuse
//! contract): `cluster::admit` must be total — a typed error, never a
//! panic — across the whole argument space the query admission
//! controller can reach it with, and its verdicts must agree with the
//! documented placement arithmetic.

use proptest::prelude::*;
use websift_flow::cluster::{admit, ClusterSpec, SchedulingError};
use websift_flow::{CostModel, LogicalPlan, Operator, Package};

/// A linear plan with one operator per entry of `mem_mb`, each declaring
/// that many megabytes.
fn plan_with_mb(mem_mb: &[u64]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for (i, &mb) in mem_mb.iter().enumerate() {
        let op = Operator::map(&format!("op{i}"), Package::Ie, |r| r).with_cost(CostModel {
            memory_bytes: mb << 20,
            ..CostModel::default()
        });
        prev = plan.add(prev, op).unwrap();
    }
    plan.sink(prev, "out").unwrap();
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Total over the fuzzed space: every outcome is Ok or a typed
    /// error, and each error variant fires exactly when its documented
    /// arithmetic says it should.
    #[test]
    fn admit_is_total_and_matches_the_arithmetic(
        mem_mb in prop::collection::vec(0u64..4096, 1..6),
        dop in 0usize..512,
        nodes in 1usize..32,
        ram_gb in 1u64..64,
        cores in 1usize..16,
    ) {
        let cluster = ClusterSpec::local(nodes, ram_gb, cores);
        let plan = plan_with_mb(&mem_mb);
        let memory_per_worker: u64 = mem_mb.iter().map(|mb| mb << 20).sum();
        let result = admit(&plan, dop, &cluster);
        if dop == 0 {
            prop_assert_eq!(result, Err(SchedulingError::ZeroDop));
        } else if dop > nodes * cores {
            prop_assert_eq!(
                result,
                Err(SchedulingError::DopExceedsCores { dop, cores: nodes * cores })
            );
        } else if memory_per_worker == 0 {
            prop_assert_eq!(
                result,
                Err(SchedulingError::ZeroMemoryPlan { operators: mem_mb.len() })
            );
        } else {
            let workers_per_node = dop.div_ceil(nodes).max(1);
            let fits =
                memory_per_worker.saturating_mul(workers_per_node as u64) <= (ram_gb << 30);
            match result {
                Ok(p) => {
                    prop_assert!(fits);
                    prop_assert_eq!(p.dop, dop);
                    prop_assert_eq!(p.workers_per_node, workers_per_node);
                    prop_assert_eq!(p.memory_per_worker, memory_per_worker);
                }
                Err(SchedulingError::InsufficientMemory {
                    memory_per_worker: m,
                    node_ram,
                    workers_per_node: w,
                }) => {
                    prop_assert!(!fits);
                    prop_assert_eq!(m, memory_per_worker);
                    prop_assert_eq!(node_ram, ram_gb << 30);
                    prop_assert_eq!(w, workers_per_node);
                }
                other => prop_assert!(false, "unexpected admission outcome: {:?}", other),
            }
        }
    }

    /// Admission is monotone in DoP: a flow admitted at some concurrency
    /// is admitted at every lower nonzero concurrency — the invariant
    /// the serving layer's permit counter leans on when queries drain.
    #[test]
    fn admission_is_monotone_in_dop(
        mem_mb in prop::collection::vec(1u64..2048, 1..5),
        dop in 2usize..256,
        nodes in 1usize..32,
        ram_gb in 1u64..64,
        cores in 1usize..16,
    ) {
        let cluster = ClusterSpec::local(nodes, ram_gb, cores);
        let plan = plan_with_mb(&mem_mb);
        if admit(&plan, dop, &cluster).is_ok() {
            for lower in [1, dop / 2, dop - 1] {
                prop_assert!(
                    admit(&plan, lower, &cluster).is_ok(),
                    "admitted at DoP {} but rejected at {}", dop, lower
                );
            }
        }
    }

    /// The error message never panics to render and always names the
    /// offending quantity (the serving layer surfaces these verbatim).
    #[test]
    fn error_display_is_informative(
        dop in 0usize..4,
        zero_memory in 0u8..2,
    ) {
        let plan = if zero_memory == 1 { plan_with_mb(&[0]) } else { plan_with_mb(&[10_000]) };
        let cluster = ClusterSpec::local(1, 1, 2);
        if let Err(e) = admit(&plan, dop, &cluster) {
            let msg = e.to_string();
            prop_assert!(!msg.is_empty());
            match e {
                SchedulingError::ZeroDop => prop_assert!(msg.contains("DoP 0")),
                SchedulingError::ZeroMemoryPlan { .. } => {
                    prop_assert!(msg.contains("zero memory"))
                }
                SchedulingError::InsufficientMemory { .. } => prop_assert!(msg.contains("GB")),
                SchedulingError::DopExceedsCores { .. } => prop_assert!(msg.contains("cores")),
                SchedulingError::LibraryConflict { .. } | SchedulingError::NodeFailed { .. } => {}
            }
        }
    }
}
