//! Partial-aggregation equivalence properties (the byte-identity
//! contract behind `ExecutionConfig::combining`):
//!
//! 1. across randomly generated Reduce-bearing chain plans, fault seeds,
//!    DoPs, checkpoint cadences, and every `Aggregate` variant (plus the
//!    `Custom` escape hatch), a combining run is indistinguishable from
//!    an uncombined run on every deterministic surface — sink `Snapshot`
//!    bytes, `FlowMetrics` codec bytes, bit-exact `simulated_secs`,
//!    tracer JSONL, registry snapshot, checkpoint frame bytes, and the
//!    WS00x analyzer verdict;
//! 2. a fixed fault-seed sweep holds the same equality at DoP {1, 4, 8}
//!    with injected faults;
//! 3. killing a run at a boundary strictly inside a fused Reduce stage
//!    and resuming from the synthesized checkpoint reproduces the
//!    uninterrupted flow bit for bit — combining on, combining off, and
//!    fusion off all agree.
//!
//! The mirror image of `tests/fusion.rs`, one config axis over.

use proptest::prelude::*;
use std::collections::HashMap;
use websift_analyze::diagnostics_to_json;
use websift_flow::{
    Aggregate, ExecutionConfig, ExecutionError, Executor, FlowOutput, FlowResilience, LogicalPlan,
    Operator, Package, Record, Value,
};
use websift_observe::Observer;
use websift_resilience::{Snapshot, Writer};

/// Pipelineable (Map/FlatMap/Filter) vocabulary — total operators that
/// never panic, mirroring `tests/fusion.rs`, plus a Float-scoring map so
/// Min/Max/TopK see NaN and negative-zero payloads.
fn pipe_op(idx: usize) -> Operator {
    match idx {
        0 => Operator::map("stamp", Package::Base, |mut r| {
            let id = r.get("id").and_then(Value::as_int).unwrap_or(0);
            r.set("stamp", id * 3 + 1);
            r
        })
        .with_reads(&["id"])
        .with_writes(&["stamp"]),
        1 => Operator::flat_map("dup", Package::Base, |r| {
            let mut copy = r.clone();
            copy.set("half", 1i64);
            vec![r, copy]
        }),
        2 => Operator::filter("parity", Package::Base, |r| {
            r.get("id").and_then(Value::as_int).unwrap_or(0) % 2 == 0
        })
        .with_reads(&["id"]),
        3 => Operator::map("grow", Package::Base, |mut r| {
            let t = format!("{}{}", r.text().unwrap_or(""), " lorem ipsum dolor");
            r.set("text", t);
            r
        })
        .with_reads(&["text"])
        .with_writes(&["text"]),
        4 => Operator::map("score", Package::Base, |mut r| {
            let id = r.get("id").and_then(Value::as_int).unwrap_or(0);
            let score = match id % 7 {
                0 => f64::NAN,
                1 => -0.0,
                _ => id as f64 * 0.5 - 1.0,
            };
            r.set("score", Value::Float(score));
            r
        })
        .with_reads(&["id"])
        .with_writes(&["score"]),
        _ => Operator::map("needs-stamp", Package::Base, |r| r)
            .with_reads(&["stamp"])
            .with_writes(&["x"]),
    }
}

/// The key every reduce under test groups by.
fn group_key(r: &Record) -> String {
    format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3)
}

/// Every typed aggregate plus the `Custom` escape hatch (which the
/// optimizer must refuse to combine) and the `CustomCombinable`
/// opt-in (an explicit seed/fold/merge contract the optimizer *does*
/// combine — its byte identity across combining on/off pins the merge
/// law itself).
fn agg_op(idx: usize) -> Operator {
    match idx {
        0 => Operator::reduce_agg(
            "count",
            Package::Base,
            group_key,
            Aggregate::Count { into: "n".into() },
        ),
        1 => Operator::reduce_agg(
            "sum",
            Package::Base,
            group_key,
            Aggregate::Sum { field: "id".into(), into: "sum".into() },
        ),
        2 => Operator::reduce_agg(
            "min",
            Package::Base,
            group_key,
            Aggregate::Min { field: "score".into(), into: "min".into() },
        ),
        3 => Operator::reduce_agg(
            "max",
            Package::Base,
            group_key,
            Aggregate::Max { field: "text".into(), into: "max".into() },
        ),
        4 => Operator::reduce_agg(
            "cat",
            Package::Base,
            group_key,
            Aggregate::Concat { field: "text".into(), sep: "|".into(), into: "cat".into() },
        ),
        5 => Operator::reduce_agg(
            "top",
            Package::Base,
            group_key,
            Aggregate::TopK { field: "score".into(), k: 2, into: "top".into() },
        ),
        6 => Operator::reduce("group", Package::Base, group_key, |key, group| {
            let mut out = Record::new();
            out.set("id", group.len() as i64);
            out.set("text", format!("{key}:{}", group.len()));
            vec![out]
        }),
        // Count+sum pair under an explicit merge contract: state is
        // `Value::Array([count, sum])`, merged pairwise.
        _ => Operator::reduce_custom_combinable(
            "pair",
            Package::Base,
            group_key,
            || Value::Array(vec![Value::Int(0), Value::Int(0)]),
            |acc, r| {
                let (n, sum) = unpack_pair(acc);
                let x = r.get("id").and_then(Value::as_int).unwrap_or(0);
                Value::Array(vec![Value::Int(n + 1), Value::Int(sum + x)])
            },
            |l, r| {
                let (ln, lsum) = unpack_pair(l);
                let (rn, rsum) = unpack_pair(r);
                Value::Array(vec![Value::Int(ln + rn), Value::Int(lsum + rsum)])
            },
            |key, v| {
                let (n, sum) = unpack_pair(v);
                let mut out = Record::new();
                out.set("id", sum).set("text", format!("{key}:{n}"));
                vec![out]
            },
        ),
    }
}

/// Unpacks the `Value::Array([count, sum])` state of the
/// custom-combinable pair aggregate above.
fn unpack_pair(v: Value) -> (i64, i64) {
    match v {
        Value::Array(parts) => {
            let mut it = parts.into_iter();
            let n = it.next().and_then(|v| v.as_int()).unwrap_or(0);
            let sum = it.next().and_then(|v| v.as_int()).unwrap_or(0);
            (n, sum)
        }
        _ => (0, 0),
    }
}

/// source -> pipe ops -> reduce -> tail pipe ops -> sink.
fn reduce_plan(pipe: &[usize], agg_idx: usize, tail: &[usize]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for &i in pipe {
        prev = plan.add(prev, pipe_op(i)).expect("reduce plan");
    }
    prev = plan.add(prev, agg_op(agg_idx)).expect("reduce plan");
    for &i in tail {
        prev = plan.add(prev, pipe_op(i)).expect("reduce plan");
    }
    plan.sink(prev, "out").expect("reduce plan");
    plan
}

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("text", format!("document {i} with a little body text"));
            r
        })
        .collect()
}

/// Everything deterministic a run exposes, flattened to comparable
/// bytes/strings — `tests/fusion.rs`'s surface plus the checkpoint frame
/// bytes (partial aggregation must not perturb what gets persisted).
struct RunSurface {
    sink_bytes: Option<Vec<u8>>,
    metrics_bytes: Option<Vec<u8>>,
    simulated_bits: Option<u64>,
    digest: Option<u64>,
    jsonl: String,
    registry: websift_observe::RegistrySnapshot,
    checkpoints: Vec<(usize, Vec<u8>)>,
    error: Option<String>,
}

fn run_surface(
    plan: &LogicalPlan,
    input: Vec<Record>,
    config: ExecutionConfig,
    res: &FlowResilience,
) -> RunSurface {
    let obs = Observer::new();
    let mut inputs = HashMap::new();
    inputs.insert("in".to_string(), input);
    let result = Executor::new(config).run_observed(plan, inputs, res, &obs);
    let (output, checkpoints, error): (Option<FlowOutput>, _, Option<String>) = match result {
        Ok(run) => (
            run.output,
            run.checkpoints
                .iter()
                .map(|c| (c.next_node, c.as_bytes().to_vec()))
                .collect(),
            None,
        ),
        Err(ExecutionError::PlanRejected { diagnostics }) => {
            (None, Vec::new(), Some(format!("WS00x: {}", diagnostics_to_json(&diagnostics))))
        }
        Err(e) => (None, Vec::new(), Some(format!("{e}"))),
    };
    let mut surface = RunSurface {
        sink_bytes: None,
        metrics_bytes: None,
        simulated_bits: None,
        digest: None,
        jsonl: obs.tracer().to_jsonl(),
        registry: obs.registry().snapshot(),
        checkpoints,
        error,
    };
    if let Some(out) = output {
        let mut w = Writer::new();
        out.sinks.encode(&mut w);
        surface.sink_bytes = Some(w.into_bytes());
        let mut w = Writer::new();
        out.metrics.encode(&mut w);
        surface.metrics_bytes = Some(w.into_bytes());
        surface.simulated_bits = Some(out.metrics.simulated_secs.to_bits());
        surface.digest = Some(out.deterministic_digest());
    }
    surface
}

/// Asserts two surfaces are byte-identical; `ctx` labels failures.
macro_rules! assert_surfaces_equal {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b, ctx) = ($a, $b, $ctx);
        prop_assert_eq!(a.error, b.error, "failure surface diverged: {}", ctx);
        prop_assert_eq!(a.sink_bytes, b.sink_bytes, "sink bytes diverged: {}", ctx);
        prop_assert_eq!(a.metrics_bytes, b.metrics_bytes, "metrics bytes diverged: {}", ctx);
        prop_assert_eq!(a.simulated_bits, b.simulated_bits, "simulated clock diverged: {}", ctx);
        prop_assert_eq!(a.digest, b.digest, "digest diverged: {}", ctx);
        prop_assert_eq!(a.jsonl, b.jsonl, "tracer JSONL diverged: {}", ctx);
        prop_assert_eq!(a.registry, b.registry, "registry diverged: {}", ctx);
        prop_assert_eq!(a.checkpoints, b.checkpoints, "checkpoint frames diverged: {}", ctx);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole property: combining on vs off is unobservable on
    /// every deterministic surface, fused and unfused, across plans
    /// containing every `Aggregate` variant.
    #[test]
    fn combining_is_byte_identical_to_uncombined(
        pipe in prop::collection::vec(0usize..6, 0..4),
        agg_idx in 0usize..8,
        tail in prop::collection::vec(0usize..6, 0..3),
        seed in 0u64..1_000_000,
        rate_sel in 0usize..3,
        dop_sel in 0usize..3,
        n_docs in 0usize..32,
        cadence in 1usize..4,
    ) {
        let dop = [1usize, 4, 8][dop_sel];
        let plan = reduce_plan(&pipe, agg_idx, &tail);
        let rate = [0.0, 0.15, 0.35][rate_sel];
        let res = FlowResilience::injected(seed, rate, cadence);
        let ctx = format!("pipe={pipe:?} agg={agg_idx} tail={tail:?} seed={seed} dop={dop}");

        let combined = ExecutionConfig::local(dop);
        let uncombined = ExecutionConfig { combining: false, ..ExecutionConfig::local(dop) };
        let c = run_surface(&plan, docs(n_docs), combined, &res);
        let u = run_surface(&plan, docs(n_docs), uncombined, &res);
        assert_surfaces_equal!(c, u, format!("fused, {ctx}"));

        // With fusion off a lone combinable Reduce still takes the
        // combined path; that too must be unobservable.
        let combined_nofuse =
            ExecutionConfig { fusion: false, ..ExecutionConfig::local(dop) };
        let uncombined_nofuse = ExecutionConfig {
            fusion: false,
            combining: false,
            ..ExecutionConfig::local(dop)
        };
        let cn = run_surface(&plan, docs(n_docs), combined_nofuse, &res);
        let un = run_surface(&plan, docs(n_docs), uncombined_nofuse, &res);
        assert_surfaces_equal!(cn, un, format!("unfused, {ctx}"));
    }
}

/// The fixed-seed acceptance sweep: byte identity with injected faults
/// at DoP {1, 4, 8} for four fault seeds over a plan whose fused stage
/// extends through a combinable Reduce.
#[test]
fn fault_seed_sweep_holds_identity_at_every_dop() {
    // stamp -> parity -> Count reduce -> grow: the chain fuses through
    // the reduce when combining is on.
    let plan = reduce_plan(&[0, 2], 0, &[3]);
    for seed in [11u64, 222, 3333, 44444] {
        for dop in [1usize, 4, 8] {
            let res = FlowResilience::injected(seed, 0.25, 2);
            let combined = ExecutionConfig::local(dop);
            let uncombined =
                ExecutionConfig { combining: false, ..ExecutionConfig::local(dop) };
            let c = run_surface(&plan, docs(24), combined, &res);
            let u = run_surface(&plan, docs(24), uncombined, &res);
            assert_eq!(c.error, u.error, "seed {seed} dop {dop}");
            assert_eq!(c.sink_bytes, u.sink_bytes, "seed {seed} dop {dop}");
            assert_eq!(c.metrics_bytes, u.metrics_bytes, "seed {seed} dop {dop}");
            assert_eq!(c.simulated_bits, u.simulated_bits, "seed {seed} dop {dop}");
            assert_eq!(c.jsonl, u.jsonl, "seed {seed} dop {dop}");
            assert_eq!(c.checkpoints, u.checkpoints, "seed {seed} dop {dop}");
        }
    }
}

/// Kill-and-resume with the kill boundary strictly inside what the
/// combining executor runs as one fused Reduce stage: the synthesized
/// checkpoint behind the kill must resume to the exact uninterrupted
/// flow, and combining on/off/unfused must all agree on the result.
#[test]
fn kill_inside_fused_reduce_stage_resumes_bit_exactly() {
    // Nodes: source(0) stamp(1) parity(2) count-reduce(3) grow(4) sink(5).
    // Combining on fuses [stamp, parity, reduce] into one stage.
    let plan = reduce_plan(&[0, 2], 0, &[3]);
    let full_res = FlowResilience {
        checkpoint_every_nodes: Some(1),
        ..FlowResilience::default()
    };

    for dop in [1usize, 4, 8] {
        let exec = Executor::new(ExecutionConfig::local(dop));
        for stop in [2usize, 3] {
            // Both kill points land strictly inside the fused stage's
            // node range (before the reduce completes).
            let killed_res =
                FlowResilience { stop_after_nodes: Some(stop), ..full_res.clone() };
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(18));
            let killed = exec.run_resilient(&plan, inputs, &killed_res).unwrap();
            assert!(killed.output.is_none(), "stop_after_nodes must interrupt");
            let ckpt = killed.checkpoints.last().expect("checkpoint before the kill");

            let resumed_obs = Observer::new();
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(18));
            let resumed = exec
                .resume_observed(&plan, ckpt, inputs, &full_res, &resumed_obs)
                .unwrap()
                .output
                .unwrap();

            let full_obs = Observer::new();
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(18));
            let full = exec
                .run_observed(&plan, inputs, &full_res, &full_obs)
                .unwrap()
                .output
                .unwrap();

            assert_eq!(resumed.sinks, full.sinks, "dop {dop} stop {stop}");
            assert_eq!(
                resumed.deterministic_digest(),
                full.deterministic_digest(),
                "dop {dop} stop {stop}"
            );
            assert_eq!(
                resumed.metrics.simulated_secs.to_bits(),
                full.metrics.simulated_secs.to_bits(),
                "dop {dop} stop {stop}"
            );
            assert_eq!(
                resumed_obs.registry().snapshot(),
                full_obs.registry().snapshot(),
                "dop {dop} stop {stop}"
            );

            // Combining off and fusion off agree with the resumed run.
            for config in [
                ExecutionConfig { combining: false, ..ExecutionConfig::local(dop) },
                ExecutionConfig { fusion: false, combining: false, ..ExecutionConfig::local(dop) },
            ] {
                let mut inputs = HashMap::new();
                inputs.insert("in".to_string(), docs(18));
                let plain = Executor::new(config)
                    .run_resilient(&plan, inputs, &full_res)
                    .unwrap()
                    .output
                    .unwrap();
                assert_eq!(
                    resumed.deterministic_digest(),
                    plain.deterministic_digest(),
                    "dop {dop} stop {stop}"
                );
            }
        }
    }
}

/// The shuffle emulation is the physical side of combining: fewer bytes
/// must cross the reduce boundary with combining on, while the
/// deterministic surfaces above stay untouched.
#[test]
fn combining_shrinks_shuffle_bytes_without_touching_surfaces() {
    let plan = reduce_plan(&[0, 1], 0, &[]);
    let res = FlowResilience::default();
    let run = |combining: bool| {
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(30));
        Executor::new(ExecutionConfig { combining, ..ExecutionConfig::local(4) })
            .run_resilient(&plan, inputs, &res)
            .unwrap()
            .output
            .unwrap()
    };
    let c = run(true);
    let u = run(false);
    assert_eq!(c.sinks, u.sinks);
    assert_eq!(c.deterministic_digest(), u.deterministic_digest());
    assert!(
        c.physical.shuffle_bytes < u.physical.shuffle_bytes,
        "combined {} !< uncombined {}",
        c.physical.shuffle_bytes,
        u.physical.shuffle_bytes
    );
}

/// The custom-combinable opt-in rides the same physical machinery as the
/// typed aggregates: byte identity across combining on/off and fault
/// seeds, fewer shuffle bytes with combining on, and a kill strictly
/// inside the fused stage resumes bit-exactly through the
/// `AggState::Custom` checkpoint codec path.
#[test]
fn custom_combinable_reduce_combines_and_resumes_bit_exactly() {
    // Nodes: source(0) stamp(1) dup(2) pair-reduce(3) grow(4) sink(5).
    let plan = reduce_plan(&[0, 1], 7, &[3]);

    for seed in [7u64, 7070] {
        for dop in [1usize, 4, 8] {
            let res = FlowResilience::injected(seed, 0.2, 2);
            let c = run_surface(&plan, docs(24), ExecutionConfig::local(dop), &res);
            let u = run_surface(
                &plan,
                docs(24),
                ExecutionConfig { combining: false, ..ExecutionConfig::local(dop) },
                &res,
            );
            assert_eq!(c.error, u.error, "seed {seed} dop {dop}");
            assert_eq!(c.sink_bytes, u.sink_bytes, "seed {seed} dop {dop}");
            assert_eq!(c.metrics_bytes, u.metrics_bytes, "seed {seed} dop {dop}");
            assert_eq!(c.simulated_bits, u.simulated_bits, "seed {seed} dop {dop}");
            assert_eq!(c.jsonl, u.jsonl, "seed {seed} dop {dop}");
            assert_eq!(c.checkpoints, u.checkpoints, "seed {seed} dop {dop}");
        }
    }

    // Fewer bytes cross the shuffle with partial aggregation on.
    let res = FlowResilience::default();
    let run = |combining: bool| {
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(30));
        Executor::new(ExecutionConfig { combining, ..ExecutionConfig::local(4) })
            .run_resilient(&plan, inputs, &res)
            .unwrap()
            .output
            .unwrap()
    };
    let (c, u) = (run(true), run(false));
    assert_eq!(c.sinks, u.sinks);
    assert!(
        c.physical.shuffle_bytes < u.physical.shuffle_bytes,
        "custom-combinable combined {} !< uncombined {}",
        c.physical.shuffle_bytes,
        u.physical.shuffle_bytes
    );

    // Kill inside the fused [stamp, dup, reduce] stage and resume.
    let full_res =
        FlowResilience { checkpoint_every_nodes: Some(1), ..FlowResilience::default() };
    let exec = Executor::new(ExecutionConfig::local(4));
    for stop in [2usize, 3] {
        let killed_res = FlowResilience { stop_after_nodes: Some(stop), ..full_res.clone() };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(18));
        let killed = exec.run_resilient(&plan, inputs, &killed_res).unwrap();
        assert!(killed.output.is_none(), "stop_after_nodes must interrupt");
        let ckpt = killed.checkpoints.last().expect("checkpoint before the kill");

        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(18));
        let resumed =
            exec.resume_from(&plan, ckpt, inputs, &full_res).unwrap().output.unwrap();

        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(18));
        let full =
            exec.run_resilient(&plan, inputs, &full_res).unwrap().output.unwrap();

        assert_eq!(resumed.sinks, full.sinks, "stop {stop}");
        assert_eq!(
            resumed.deterministic_digest(),
            full.deterministic_digest(),
            "stop {stop}"
        );
        assert_eq!(
            resumed.metrics.simulated_secs.to_bits(),
            full.metrics.simulated_secs.to_bits(),
            "stop {stop}"
        );
    }
}
