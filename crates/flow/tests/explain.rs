//! The fusion/combining "explain" differential suite (tentpole
//! acceptance):
//!
//! 1. the static stage prediction (`optimizer::plan_stages`, the table
//!    the explain report prints) is **identical** to the decisions the
//!    executor actually makes (`FlowOutput::stages`) — across random
//!    plans (chains, fan-out branches, identity nodes, typed and custom
//!    reduces), DoP ∈ {1, 4, 8}, all four fusion×combining settings, and
//!    both before and after logical optimization;
//! 2. WS013/WS014/WS015 verdicts — the field-flow diagnostics — are
//!    invariant under optimizer rewrites, warnings included (the
//!    WS001–WS009 suite in `tests/analyze.rs` pins errors only);
//! 3. the explain report itself is byte-stable and agrees with the
//!    executed stage list.

use proptest::prelude::*;
use std::collections::HashMap;
use websift_analyze::lattice::FieldType;
use websift_flow::{
    analyze_plan, explain_plan, optimize, plan_stages, AnalyzeOptions, ClusterSpec, CostModel,
    ExecutionConfig, Executor, LogicalPlan, Operator, Package, Record, StageDecision, Value,
};

/// Runnable operators covering every stage-decision shape: pipelineable
/// maps/filters/flat-maps (fuse), an identity (optimizer removes it,
/// leaving an orphan the executor must skip), a combinable Count reduce
/// (combining extends stages through it), and a custom reduce (never
/// combines, always a stage of its own).
fn pool_op(idx: usize) -> Operator {
    match idx {
        0 => Operator::map("stamp", Package::Base, |mut r| {
            let id = r.get("id").and_then(Value::as_int).unwrap_or(0);
            r.set("stamp", id * 3 + 1);
            r
        })
        .with_reads(&["id"])
        .with_writes(&["stamp"]),
        1 => Operator::flat_map("dup", Package::Base, |r| {
            let mut copy = r.clone();
            copy.set("half", 1i64);
            vec![r, copy]
        }),
        2 => Operator::filter("parity", Package::Base, |r| {
            r.get("id").and_then(Value::as_int).unwrap_or(0) % 2 == 0
        })
        .with_reads(&["id"]),
        3 => Operator::map("identity", Package::Base, |r| r),
        4 => Operator::map("grow", Package::Base, |mut r| {
            let t = format!("{} lorem", r.text().unwrap_or(""));
            r.set("text", t);
            r
        })
        .with_reads(&["text"])
        .with_writes(&["text"]),
        5 => Operator::reduce_agg(
            "tally",
            Package::Base,
            |r: &Record| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            websift_flow::Aggregate::Count { into: "n".into() },
        ),
        _ => Operator::reduce(
            "pick",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 2),
            |_, mut rs| {
                rs.truncate(1);
                rs
            },
        ),
    }
}

/// A main chain plus an optional side branch hanging off one of its
/// nodes — fan-out blocks fusion at the branch point, which is exactly
/// the disagreement surface worth fuzzing.
fn build_plan(main: &[usize], branch: &[usize], branch_at: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let src = plan.source("docs");
    let mut prev = src;
    let mut main_nodes = vec![src];
    for &i in main {
        prev = plan.add(prev, pool_op(i)).expect("chain");
        main_nodes.push(prev);
    }
    plan.sink(prev, "out").expect("sink");
    if !branch.is_empty() {
        let mut prev = main_nodes[branch_at % main_nodes.len()];
        for &i in branch {
            prev = plan.add(prev, pool_op(i)).expect("branch");
        }
        plan.sink(prev, "side").expect("sink");
    }
    plan
}

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("text", format!("document {i} body"));
            r
        })
        .collect()
}

fn executed_stages(plan: &LogicalPlan, dop: usize, fusion: bool, combining: bool) -> Vec<StageDecision> {
    let config = ExecutionConfig {
        analyze: false, // error-bearing random plans must still execute
        fusion,
        combining,
        ..ExecutionConfig::local(dop)
    };
    let mut inputs = HashMap::new();
    inputs.insert("docs".to_string(), docs(7));
    Executor::new(config)
        .run(plan, inputs)
        .expect("pool operators are total")
        .stages
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn predicted_stages_match_executed(
        main in prop::collection::vec(0usize..7, 1..6),
        branch in prop::collection::vec(0usize..7, 0..4),
        branch_at in 0usize..8,
        dop_idx in 0usize..3,
        mode in 0usize..4,
    ) {
        let dop = [1usize, 4, 8][dop_idx];
        let (fusion, combining) = (mode & 1 != 0, mode & 2 != 0);
        let mut plan = build_plan(&main, &branch, branch_at);
        for optimized in [false, true] {
            if optimized {
                optimize(&mut plan);
            }
            let predicted = plan_stages(&plan, fusion, combining);
            let executed = executed_stages(&plan, dop, fusion, combining);
            prop_assert_eq!(
                &predicted,
                &executed,
                "stage decisions diverged (main {:?}, branch {:?}@{}, dop {}, fusion {}, \
                 combining {}, optimized {})",
                main, branch, branch_at, dop, fusion, combining, optimized
            );
        }
    }
}

/// Analysis-only pool for the WS013–WS015 invariance property: typed
/// writer/reader pairs (WS013), heavyweight annotators (WS014), movable
/// filters and duplicated operators (WS015), plus the identity the
/// optimizer eliminates.
fn verdict_op(idx: usize) -> Operator {
    let filter = |name: &str, reads: &[&str], us: f64| {
        Operator::filter(name, Package::Base, |_| true)
            .with_reads(reads)
            .with_cost(CostModel { us_per_char: us, ..CostModel::default() })
    };
    match idx {
        0 => filter("cheap-len", &["text"], 0.001),
        1 => filter("costly-regex", &["text"], 5.0),
        2 => Operator::map("sentences", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["sentences"])
            .with_write_types(&[("sentences", FieldType::Array)]),
        3 => Operator::map("typed-writer", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["typed"])
            .with_write_types(&[("typed", FieldType::Int)]),
        4 => filter("typed-reader", &[], 0.02)
            .with_read_types(&[("typed", FieldType::Str)]),
        5 => Operator::map("identity", Package::Base, |r| r),
        6 => Operator::map("fat-annotator", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["heavy"])
            .with_cost(CostModel { memory_bytes: 13 << 30, ..CostModel::default() }),
        7 => Operator::map("maybe-tagger", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_maybe_writes(&["negation"]),
        _ => filter("keep-english", &["text"], 0.01),
    }
}

fn field_flow_verdict(plan: &LogicalPlan, opts: &AnalyzeOptions) -> Vec<(String, String)> {
    let mut verdict: Vec<(String, String)> = analyze_plan(plan, opts)
        .into_iter()
        .filter(|d| matches!(d.code.as_str(), "WS013" | "WS014" | "WS015"))
        .map(|d| (d.code, d.message))
        .collect();
    verdict.sort();
    verdict
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn field_flow_verdicts_invariant_under_optimize(
        indices in prop::collection::vec(0usize..9, 1..8),
    ) {
        let opts = AnalyzeOptions::default()
            .with_admission(ClusterSpec::paper_cluster(), 28);
        let mut plan = LogicalPlan::new();
        let mut prev = plan.source("docs");
        for &i in &indices {
            prev = plan.add(prev, verdict_op(i)).expect("chain");
        }
        plan.sink(prev, "out").expect("sink");
        let before = field_flow_verdict(&plan, &opts);
        let rewrites = optimize(&mut plan);
        let after = field_flow_verdict(&plan, &opts);
        prop_assert_eq!(
            before,
            after,
            "WS013–WS015 verdict changed for chain {:?} after rewrites {:?}",
            indices,
            rewrites
        );
    }
}

#[test]
fn explain_report_is_byte_stable_and_matches_execution() {
    let mut plan = build_plan(&[0, 2, 5], &[4], 1);
    let opts = AnalyzeOptions::default().with_source_estimate(1000, 2048);
    let one = explain_plan(&plan, &opts, true, true);
    let two = explain_plan(&plan, &opts, true, true);
    assert_eq!(one, two, "explain must render byte-identically");

    // the stages the report lists are the stages the executor runs,
    // before and after optimization
    for optimized in [false, true] {
        if optimized {
            optimize(&mut plan);
        }
        let predicted = plan_stages(&plan, true, true);
        let executed = executed_stages(&plan, 4, true, true);
        assert_eq!(predicted, executed);
        let rendered = explain_plan(&plan, &opts, true, true);
        for stage in &predicted {
            assert!(
                rendered.contains(&format!("\"first\":{}", stage.first)),
                "stage {} missing from {rendered}",
                stage.first
            );
        }
    }
}
