//! Fusion equivalence properties (the byte-identity contract behind
//! `ExecutionConfig::fusion`):
//!
//! 1. across randomly generated chain plans, fault seeds, DoPs, and
//!    checkpoint cadences, a fused run is indistinguishable from an
//!    unfused run on every deterministic surface — sink `Snapshot`
//!    bytes, `FlowMetrics` codec bytes, bit-exact `simulated_secs`,
//!    tracer JSONL, registry snapshot, and the WS00x analyzer verdict
//!    (including plans the analyzer rejects);
//! 2. killing a fused run at a random node boundary and resuming from
//!    its last checkpoint reproduces the uninterrupted run bit for bit —
//!    fused or not.

use proptest::prelude::*;
use std::collections::HashMap;
use websift_analyze::diagnostics_to_json;
use websift_flow::{
    ExecutionConfig, ExecutionError, Executor, FlowOutput, FlowResilience, LogicalPlan, Operator,
    Package, Record, Value,
};
use websift_observe::Observer;
use websift_resilience::{Snapshot, Writer};

/// A small vocabulary of total (never-panicking) operators: stamping
/// maps, a duplicating flat-map, a parity filter, a grouping reduce
/// (fusion barrier), a byte-growing map, an operator reading the
/// `stamp` field — which trips a WS001 rejection whenever it lands
/// upstream of the map that produces it, so rejected plans are part of
/// the property too — and a combinable Count reduce (index 6) that the
/// combining executor extends fused stages through.
fn pool_op(idx: usize) -> Operator {
    match idx {
        0 => Operator::map("stamp", Package::Base, |mut r| {
            let id = r.get("id").and_then(Value::as_int).unwrap_or(0);
            r.set("stamp", id * 3 + 1);
            r
        })
        .with_reads(&["id"])
        .with_writes(&["stamp"]),
        1 => Operator::flat_map("dup", Package::Base, |r| {
            let mut copy = r.clone();
            copy.set("half", 1i64);
            vec![r, copy]
        }),
        2 => Operator::filter("parity", Package::Base, |r| {
            r.get("id").and_then(Value::as_int).unwrap_or(0) % 2 == 0
        })
        .with_reads(&["id"]),
        3 => Operator::reduce(
            "group",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            |key, group| {
                let mut out = Record::new();
                out.set("id", group.len() as i64);
                out.set("text", format!("{key}:{}", group.len()));
                vec![out]
            },
        ),
        4 => Operator::map("grow", Package::Base, |mut r| {
            let t = format!("{}{}", r.text().unwrap_or(""), " lorem ipsum dolor");
            r.set("text", t);
            r
        })
        .with_reads(&["text"])
        .with_writes(&["text"]),
        5 => Operator::map("needs-stamp", Package::Base, |r| r)
            .with_reads(&["stamp"])
            .with_writes(&["x"]),
        _ => Operator::reduce_agg(
            "tally",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            websift_flow::Aggregate::Count { into: "id".into() },
        ),
    }
}

fn chain_plan(indices: &[usize]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for &i in indices {
        prev = plan.add(prev, pool_op(i)).expect("chain plan");
    }
    plan.sink(prev, "out").expect("chain plan");
    plan
}

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("text", format!("document {i} with a little body text"));
            r
        })
        .collect()
}

/// Everything deterministic a run exposes, flattened to comparable
/// bytes/strings. `Err` runs collapse to the error display plus the
/// WS00x verdict JSON when the analyzer rejected the plan.
struct RunSurface {
    sink_bytes: Option<Vec<u8>>,
    metrics_bytes: Option<Vec<u8>>,
    simulated_bits: Option<u64>,
    digest: Option<u64>,
    jsonl: String,
    registry: websift_observe::RegistrySnapshot,
    error: Option<String>,
}

fn run_surface(plan: &LogicalPlan, input: Vec<Record>, config: ExecutionConfig, res: &FlowResilience) -> RunSurface {
    let obs = Observer::new();
    let mut inputs = HashMap::new();
    inputs.insert("in".to_string(), input);
    let result = Executor::new(config).run_observed(plan, inputs, res, &obs);
    let (output, error): (Option<FlowOutput>, Option<String>) = match result {
        Ok(run) => (run.output, None),
        Err(ExecutionError::PlanRejected { diagnostics }) => {
            (None, Some(format!("WS00x: {}", diagnostics_to_json(&diagnostics))))
        }
        Err(e) => (None, Some(format!("{e}"))),
    };
    let mut surface = RunSurface {
        sink_bytes: None,
        metrics_bytes: None,
        simulated_bits: None,
        digest: None,
        jsonl: obs.tracer().to_jsonl(),
        registry: obs.registry().snapshot(),
        error,
    };
    if let Some(out) = output {
        let mut w = Writer::new();
        out.sinks.encode(&mut w);
        surface.sink_bytes = Some(w.into_bytes());
        let mut w = Writer::new();
        out.metrics.encode(&mut w);
        surface.metrics_bytes = Some(w.into_bytes());
        surface.simulated_bits = Some(out.metrics.simulated_secs.to_bits());
        surface.digest = Some(out.deterministic_digest());
    }
    surface
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fused_run_is_byte_identical_to_unfused(
        indices in prop::collection::vec(0usize..7, 1..8),
        seed in 0u64..1_000_000,
        rate_sel in 0usize..3,
        dop in 1usize..6,
        n_docs in 0usize..40,
        cadence in 1usize..4,
    ) {
        let plan = chain_plan(&indices);
        let rate = [0.0, 0.15, 0.35][rate_sel];
        let res = FlowResilience::injected(seed, rate, cadence);
        let fused = ExecutionConfig::local(dop);
        let unfused = ExecutionConfig { fusion: false, ..ExecutionConfig::local(dop) };

        let f = run_surface(&plan, docs(n_docs), fused, &res);
        let u = run_surface(&plan, docs(n_docs), unfused, &res);

        prop_assert_eq!(f.error, u.error, "failure surface diverged for {:?}", indices);
        prop_assert_eq!(f.sink_bytes, u.sink_bytes, "sink bytes diverged for {:?}", indices);
        prop_assert_eq!(f.metrics_bytes, u.metrics_bytes, "metrics bytes diverged for {:?}", indices);
        prop_assert_eq!(f.simulated_bits, u.simulated_bits, "simulated clock diverged for {:?}", indices);
        prop_assert_eq!(f.digest, u.digest, "digest diverged for {:?}", indices);
        prop_assert_eq!(f.jsonl, u.jsonl, "tracer JSONL diverged for {:?}", indices);
        prop_assert_eq!(f.registry, u.registry, "registry diverged for {:?}", indices);
    }

    #[test]
    fn kill_and_resume_across_fused_stage_is_bit_exact(
        indices in prop::collection::vec(0usize..6, 2..7),
        stop_frac in 0usize..100,
        dop in 1usize..5,
        n_docs in 1usize..30,
    ) {
        // Fault-free so the kill point is the only perturbation; ops from
        // the panic-free part of the vocabulary (no analyzer rejection):
        // draw 5 is remapped to the combinable Count reduce (index 6) so
        // kill points land inside fused Reduce stages too, and the
        // WS001-tripping needs-stamp op stays out.
        let indices: Vec<usize> =
            indices.into_iter().map(|i| if i == 5 { 6 } else { i }).collect();
        let plan = chain_plan(&indices);
        let full_res = FlowResilience {
            checkpoint_every_nodes: Some(1),
            ..FlowResilience::default()
        };
        // Stop somewhere strictly inside the plan, after at least one
        // checkpointable node.
        let stop = 1 + stop_frac % (plan.len() - 1);
        let killed_res = FlowResilience { stop_after_nodes: Some(stop), ..full_res.clone() };

        let exec = Executor::new(ExecutionConfig::local(dop));
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(n_docs));
        let killed = exec.run_resilient(&plan, inputs, &killed_res).unwrap();
        prop_assert!(killed.output.is_none(), "stop_after_nodes must interrupt");
        // With checkpoint_every_nodes = 1 a kill strictly inside the plan
        // always has at least one checkpoint behind it.
        let ckpt = killed.checkpoints.last().expect("checkpoint before the kill point");

        let resumed_obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(n_docs));
        let resumed = exec
            .resume_observed(&plan, ckpt, inputs, &full_res, &resumed_obs)
            .unwrap()
            .output
            .unwrap();

        let full_obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(n_docs));
        let full = exec
            .run_observed(&plan, inputs, &full_res, &full_obs)
            .unwrap()
            .output
            .unwrap();

        prop_assert_eq!(resumed.sinks, full.sinks, "sinks diverged for {:?} stop={}", indices, stop);
        prop_assert_eq!(
            resumed.deterministic_digest(),
            full.deterministic_digest(),
            "digest diverged for {:?} stop={}",
            indices,
            stop
        );
        prop_assert_eq!(
            resumed.metrics.simulated_secs.to_bits(),
            full.metrics.simulated_secs.to_bits(),
            "simulated clock diverged for {:?} stop={}",
            indices,
            stop
        );
        prop_assert_eq!(
            resumed_obs.registry().snapshot(),
            full_obs.registry().snapshot(),
            "registry diverged for {:?} stop={}",
            indices,
            stop
        );

        // And the unfused and uncombined engines agree with the fused
        // resume.
        for config in [
            ExecutionConfig { fusion: false, ..ExecutionConfig::local(dop) },
            ExecutionConfig { combining: false, ..ExecutionConfig::local(dop) },
        ] {
            let other = Executor::new(config);
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(n_docs));
            let plain = other.run_resilient(&plan, inputs, &full_res).unwrap().output.unwrap();
            prop_assert_eq!(
                resumed.deterministic_digest(),
                plain.deterministic_digest(),
                "fused resume diverged from unfused/uncombined run for {:?} stop={}",
                indices,
                stop
            );
        }
    }
}
