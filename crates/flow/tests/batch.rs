//! Batched-execution equivalence properties (the byte-identity contract
//! behind `ExecutionConfig::batch_size`):
//!
//! 1. batching is *physical only*: across randomly generated chain
//!    plans, fault seeds, DoPs, checkpoint cadences, fusion and
//!    combining toggles, a run at any batch size is indistinguishable
//!    from a record-at-a-time run (`batch_size = 1`) on every
//!    deterministic surface — sink `Snapshot` bytes, `FlowMetrics` codec
//!    bytes, bit-exact `simulated_secs`, tracer JSONL, registry
//!    snapshot, checkpoint frame bytes, and the WS00x analyzer verdict;
//! 2. the same identity holds on fan-out plans, where the fused chain
//!    now tees an interior node's stream to a side consumer;
//! 3. a kill at a frame cut strictly inside a batched fused stage
//!    resumes bit-exactly — even when the resuming executor uses a
//!    *different* batch size than the killed run, because checkpoint
//!    frames are batch-agnostic.
//!
//! The third axis of the `tests/fusion.rs` / `tests/partial_agg.rs`
//! equivalence family.

use proptest::prelude::*;
use std::collections::HashMap;
use websift_analyze::diagnostics_to_json;
use websift_flow::{
    Aggregate, ExecutionConfig, ExecutionError, Executor, FlowOutput, FlowResilience, LogicalPlan,
    Operator, Package, Record, Value,
};
use websift_observe::Observer;
use websift_resilience::{Snapshot, Writer};

/// The batch sizes every differential below sweeps: record-at-a-time,
/// mid-size, larger than any test input (one batch per chunk), and the
/// default (`None`).
const BATCH_SIZES: [Option<usize>; 4] = [Some(1), Some(64), Some(1024), None];

/// Same total-operator vocabulary as `tests/fusion.rs`: stamping maps,
/// a duplicating flat-map, a parity filter, a custom (non-combinable)
/// reduce, a byte-growing map, the WS001-tripping `needs-stamp` op (so
/// rejected plans stay part of the property), and a combinable Count
/// reduce the fused stage extends through.
fn pool_op(idx: usize) -> Operator {
    match idx {
        0 => Operator::map("stamp", Package::Base, |mut r| {
            let id = r.get("id").and_then(Value::as_int).unwrap_or(0);
            r.set("stamp", id * 3 + 1);
            r
        })
        .with_reads(&["id"])
        .with_writes(&["stamp"]),
        1 => Operator::flat_map("dup", Package::Base, |r| {
            let mut copy = r.clone();
            copy.set("half", 1i64);
            vec![r, copy]
        }),
        2 => Operator::filter("parity", Package::Base, |r| {
            r.get("id").and_then(Value::as_int).unwrap_or(0) % 2 == 0
        })
        .with_reads(&["id"]),
        3 => Operator::reduce(
            "group",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            |key, group| {
                let mut out = Record::new();
                out.set("id", group.len() as i64);
                out.set("text", format!("{key}:{}", group.len()));
                vec![out]
            },
        ),
        4 => Operator::map("grow", Package::Base, |mut r| {
            let t = format!("{}{}", r.text().unwrap_or(""), " lorem ipsum dolor");
            r.set("text", t);
            r
        })
        .with_reads(&["text"])
        .with_writes(&["text"]),
        5 => Operator::map("needs-stamp", Package::Base, |r| r)
            .with_reads(&["stamp"])
            .with_writes(&["x"]),
        _ => Operator::reduce_agg(
            "tally",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            Aggregate::Count { into: "id".into() },
        ),
    }
}

fn chain_plan(indices: &[usize]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for &i in indices {
        prev = plan.add(prev, pool_op(i)).expect("chain plan");
    }
    plan.sink(prev, "out").expect("chain plan");
    plan
}

/// stamp -> dup -> parity -> grow -> sink "out", with a side branch
/// hanging off the node at `branch_at` (1-based into the chain) feeding
/// a second sink — the fan-out shape the fused executor tees.
fn fan_out_plan(branch_at: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut chain = vec![plan.source("in")];
    for idx in [0usize, 1, 2, 4] {
        let prev = *chain.last().expect("non-empty");
        chain.push(plan.add(prev, pool_op(idx)).expect("fan-out plan"));
    }
    plan.sink(*chain.last().expect("non-empty"), "out").expect("fan-out plan");
    let side = plan.add(chain[branch_at], pool_op(4)).expect("fan-out plan");
    plan.sink(side, "side").expect("fan-out plan");
    plan
}

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("text", format!("document {i} with a little body text"));
            r
        })
        .collect()
}

/// Everything deterministic a run exposes, flattened to comparable
/// bytes/strings — the `tests/partial_agg.rs` surface, checkpoint frames
/// included (batching must not perturb what gets persisted).
struct RunSurface {
    sink_bytes: Option<Vec<u8>>,
    metrics_bytes: Option<Vec<u8>>,
    simulated_bits: Option<u64>,
    digest: Option<u64>,
    jsonl: String,
    registry: websift_observe::RegistrySnapshot,
    checkpoints: Vec<(usize, Vec<u8>)>,
    error: Option<String>,
}

fn run_surface(
    plan: &LogicalPlan,
    input: Vec<Record>,
    config: ExecutionConfig,
    res: &FlowResilience,
) -> RunSurface {
    let obs = Observer::new();
    let mut inputs = HashMap::new();
    inputs.insert("in".to_string(), input);
    let result = Executor::new(config).run_observed(plan, inputs, res, &obs);
    let (output, checkpoints, error): (Option<FlowOutput>, _, Option<String>) = match result {
        Ok(run) => (
            run.output,
            run.checkpoints
                .iter()
                .map(|c| (c.next_node, c.as_bytes().to_vec()))
                .collect(),
            None,
        ),
        Err(ExecutionError::PlanRejected { diagnostics }) => {
            (None, Vec::new(), Some(format!("WS00x: {}", diagnostics_to_json(&diagnostics))))
        }
        Err(e) => (None, Vec::new(), Some(format!("{e}"))),
    };
    let mut surface = RunSurface {
        sink_bytes: None,
        metrics_bytes: None,
        simulated_bits: None,
        digest: None,
        jsonl: obs.tracer().to_jsonl(),
        registry: obs.registry().snapshot(),
        checkpoints,
        error,
    };
    if let Some(out) = output {
        let mut w = Writer::new();
        out.sinks.encode(&mut w);
        surface.sink_bytes = Some(w.into_bytes());
        let mut w = Writer::new();
        out.metrics.encode(&mut w);
        surface.metrics_bytes = Some(w.into_bytes());
        surface.simulated_bits = Some(out.metrics.simulated_secs.to_bits());
        surface.digest = Some(out.deterministic_digest());
    }
    surface
}

/// Asserts two surfaces are byte-identical; `ctx` labels failures.
macro_rules! assert_surfaces_equal {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b, ctx) = ($a, $b, $ctx);
        prop_assert_eq!(a.error, b.error, "failure surface diverged: {}", ctx);
        prop_assert_eq!(a.sink_bytes, b.sink_bytes, "sink bytes diverged: {}", ctx);
        prop_assert_eq!(a.metrics_bytes, b.metrics_bytes, "metrics bytes diverged: {}", ctx);
        prop_assert_eq!(a.simulated_bits, b.simulated_bits, "simulated clock diverged: {}", ctx);
        prop_assert_eq!(a.digest, b.digest, "digest diverged: {}", ctx);
        prop_assert_eq!(a.jsonl, b.jsonl, "tracer JSONL diverged: {}", ctx);
        prop_assert_eq!(a.registry, b.registry, "registry diverged: {}", ctx);
        prop_assert_eq!(a.checkpoints, b.checkpoints, "checkpoint frames diverged: {}", ctx);
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: batch size is unobservable on every
    /// deterministic surface, whatever the fusion/combining toggles,
    /// DoP, fault seed, or checkpoint cadence.
    #[test]
    fn batch_size_is_byte_identical_to_record_at_a_time(
        indices in prop::collection::vec(0usize..7, 1..8),
        seed in 0u64..1_000_000,
        rate_sel in 0usize..3,
        dop_sel in 0usize..3,
        n_docs in 0usize..40,
        cadence in 1usize..4,
        fusion_sel in 0usize..2,
        combining_sel in 0usize..2,
    ) {
        let (fusion, combining) = (fusion_sel == 1, combining_sel == 1);
        let dop = [1usize, 4, 8][dop_sel];
        let plan = chain_plan(&indices);
        let rate = [0.0, 0.15, 0.35][rate_sel];
        let res = FlowResilience::injected(seed, rate, cadence);
        let config = |batch_size: Option<usize>| ExecutionConfig {
            fusion,
            combining,
            batch_size,
            ..ExecutionConfig::local(dop)
        };

        let baseline = run_surface(&plan, docs(n_docs), config(Some(1)), &res);
        for bs in [Some(64), Some(1024), None] {
            let batched = run_surface(&plan, docs(n_docs), config(bs), &res);
            let ctx = format!(
                "indices={indices:?} seed={seed} dop={dop} fusion={fusion} \
                 combining={combining} batch={bs:?}"
            );
            assert_surfaces_equal!(&batched, &baseline, ctx);
        }
    }
}

/// The fixed acceptance sweep: byte identity with injected faults at
/// DoP {1, 4, 8} for four fault seeds, fusion x combining, across the
/// full batch grid — the plan fuses through a combinable Reduce.
#[test]
fn fault_seed_sweep_holds_identity_at_every_batch_size() {
    // stamp -> parity -> Count reduce -> grow
    let plan = chain_plan(&[0, 2, 6, 4]);
    for seed in [11u64, 222, 3333, 44444] {
        for dop in [1usize, 4, 8] {
            for (fusion, combining) in [(true, true), (true, false), (false, false)] {
                let res = FlowResilience::injected(seed, 0.25, 2);
                let config = |batch_size: Option<usize>| ExecutionConfig {
                    fusion,
                    combining,
                    batch_size,
                    ..ExecutionConfig::local(dop)
                };
                let baseline = run_surface(&plan, docs(24), config(Some(1)), &res);
                for bs in [Some(64), Some(1024), None] {
                    let b = run_surface(&plan, docs(24), config(bs), &res);
                    let ctx =
                        format!("seed {seed} dop {dop} fusion {fusion} combining {combining} batch {bs:?}");
                    assert_eq!(b.error, baseline.error, "{ctx}");
                    assert_eq!(b.sink_bytes, baseline.sink_bytes, "{ctx}");
                    assert_eq!(b.metrics_bytes, baseline.metrics_bytes, "{ctx}");
                    assert_eq!(b.simulated_bits, baseline.simulated_bits, "{ctx}");
                    assert_eq!(b.jsonl, baseline.jsonl, "{ctx}");
                    assert_eq!(b.checkpoints, baseline.checkpoints, "{ctx}");
                }
            }
        }
    }
}

/// Fan-out plans: the fused chain tees an interior node to a side sink.
/// Every branch point must be batch-size-invariant and agree with the
/// unfused engine on both sinks.
#[test]
fn fan_out_tee_is_batch_invariant_and_matches_unfused() {
    for branch_at in 1..=4usize {
        let plan = fan_out_plan(branch_at);
        for dop in [1usize, 4, 8] {
            for seed in [0u64, 909] {
                let res = FlowResilience::injected(seed, 0.2, 2);
                let unfused = run_surface(
                    &plan,
                    docs(24),
                    ExecutionConfig {
                        fusion: false,
                        batch_size: Some(1),
                        ..ExecutionConfig::local(dop)
                    },
                    &res,
                );
                assert!(
                    unfused.error.is_none(),
                    "fan-out plan must run: {:?}",
                    unfused.error
                );
                for bs in BATCH_SIZES {
                    let fused = run_surface(
                        &plan,
                        docs(24),
                        ExecutionConfig { batch_size: bs, ..ExecutionConfig::local(dop) },
                        &res,
                    );
                    let ctx = format!("branch_at {branch_at} dop {dop} seed {seed} batch {bs:?}");
                    assert_eq!(fused.error, unfused.error, "{ctx}");
                    assert_eq!(fused.sink_bytes, unfused.sink_bytes, "{ctx}");
                    assert_eq!(fused.metrics_bytes, unfused.metrics_bytes, "{ctx}");
                    assert_eq!(fused.simulated_bits, unfused.simulated_bits, "{ctx}");
                    assert_eq!(fused.jsonl, unfused.jsonl, "{ctx}");
                    assert_eq!(fused.checkpoints, unfused.checkpoints, "{ctx}");
                }
            }
        }
    }
}

/// Kill at a frame cut strictly inside a batched fused stage, then
/// resume — with a *different* batch size than the killed run. The
/// checkpoint frame is batch-agnostic, so every (kill batch, resume
/// batch) pairing must reproduce the uninterrupted flow bit for bit.
#[test]
fn kill_inside_batched_stage_resumes_bit_exactly_across_batch_sizes() {
    // Nodes: source(0) stamp(1) dup(2) parity(3) count-reduce(4) sink(5);
    // the fused stage spans [stamp, dup, parity, reduce].
    let plan = chain_plan(&[0, 1, 2, 6]);
    let full_res =
        FlowResilience { checkpoint_every_nodes: Some(1), ..FlowResilience::default() };
    let config = |batch_size: Option<usize>| ExecutionConfig {
        batch_size,
        ..ExecutionConfig::local(4)
    };

    // The uninterrupted reference, record-at-a-time.
    let mut inputs = HashMap::new();
    inputs.insert("in".to_string(), docs(18));
    let full = Executor::new(config(Some(1)))
        .run_resilient(&plan, inputs, &full_res)
        .unwrap()
        .output
        .unwrap();

    for stop in [2usize, 3, 4] {
        for kill_bs in [Some(1), Some(64), None] {
            let killed_res =
                FlowResilience { stop_after_nodes: Some(stop), ..full_res.clone() };
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(18));
            let killed = Executor::new(config(kill_bs))
                .run_resilient(&plan, inputs, &killed_res)
                .unwrap();
            assert!(killed.output.is_none(), "stop_after_nodes must interrupt");
            let ckpt = killed.checkpoints.last().expect("checkpoint before the kill");

            for resume_bs in [Some(1), Some(1024), None] {
                let mut inputs = HashMap::new();
                inputs.insert("in".to_string(), docs(18));
                let resumed = Executor::new(config(resume_bs))
                    .resume_from(&plan, ckpt, inputs, &full_res)
                    .unwrap()
                    .output
                    .unwrap();
                let ctx = format!("stop {stop} kill {kill_bs:?} resume {resume_bs:?}");
                assert_eq!(resumed.sinks, full.sinks, "{ctx}");
                assert_eq!(
                    resumed.deterministic_digest(),
                    full.deterministic_digest(),
                    "{ctx}"
                );
                assert_eq!(
                    resumed.metrics.simulated_secs.to_bits(),
                    full.metrics.simulated_secs.to_bits(),
                    "{ctx}"
                );
            }
        }
    }
}
