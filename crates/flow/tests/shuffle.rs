//! Sharded-execution equivalence properties (the byte-identity contract
//! behind `ExecutionConfig::sharding`):
//!
//! 1. sharding is *physical only*: across randomly generated chain
//!    plans, fault seeds, DoPs, fusion and combining toggles, and shard
//!    counts, a run on N worker shards is indistinguishable from the
//!    in-process run on every deterministic surface — sink `Snapshot`
//!    bytes, `FlowMetrics` codec bytes, bit-exact `simulated_secs`,
//!    the deterministic digest, tracer JSONL, registry snapshot,
//!    checkpoint frame bytes, and the WS00x analyzer verdict;
//! 2. the identity holds when the shards are real OS processes (the
//!    `shard_worker` binary) exchanging length-prefixed frames over
//!    pipes, not just in-process socketpair threads;
//! 3. a worker killed mid-run surfaces as `ShardLost` carrying the
//!    checkpoints taken so far, and resuming from them — even at a
//!    *different* shard count than the killed run, or unsharded —
//!    reproduces the uninterrupted flow bit for bit;
//! 4. an over-memory Reduce spills its group table to sorted disk runs
//!    and still matches the in-memory grouping byte for byte;
//! 5. records routed to a store sink (`Executor::run_into`) land
//!    identically, so serve-side snapshots cannot observe sharding.
//!
//! The fourth axis of the `tests/fusion.rs` / `tests/partial_agg.rs` /
//! `tests/batch.rs` equivalence family.

use proptest::prelude::*;
use std::collections::HashMap;
use websift_analyze::diagnostics_to_json;
use websift_flow::{
    AggSpec, ExecutionConfig, ExecutionError, Executor, FlowOutput, FlowResilience, KeySpec,
    KillSpec, LogicalPlan, OpSpec, Operator, Package, Record, ShardConfig, SpecOp, StoreSink,
    Value,
};
use websift_observe::Observer;
use websift_resilience::{Snapshot, Writer};

/// The path of the real worker-process binary, resolved by Cargo for
/// this crate's own `shard_worker` bin target.
fn worker_bin() -> &'static str {
    env!("CARGO_BIN_EXE_shard_worker")
}

/// The `tests/batch.rs` operator vocabulary rebuilt from [`OpSpec`]s, so
/// every operator (closure and annotations alike) can be shipped to a
/// worker shard byte-identically: stamping maps, a duplicating
/// flat-map, a parity filter, a byte-growing map, the WS001-tripping
/// `needs-stamp` op (so rejected plans stay part of the property), and a
/// combinable Count reduce. Index 3 is the one deliberate exception — a
/// `Custom`-closure reduce with no spec, which pins its stage to the
/// in-process path and so proves the silent fallback is also identical.
fn pool_op(idx: usize) -> Operator {
    match idx {
        0 => OpSpec::new(
            "stamp",
            Package::Base,
            SpecOp::MapStamp { field: "stamp".into(), from: "id".into(), mul: 3, add: 1 },
        )
        .build(),
        1 => OpSpec::new(
            "dup",
            Package::Base,
            SpecOp::FlatMapDup { copies: 2, tag: "half".into() },
        )
        .build(),
        2 => OpSpec::new(
            "parity",
            Package::Base,
            SpecOp::FilterIntMod { field: "id".into(), modulus: 2, keep: 0 },
        )
        .build(),
        3 => Operator::reduce(
            "group",
            Package::Base,
            |r| format!("g{}", r.get("id").and_then(Value::as_int).unwrap_or(0) % 3),
            |key, group| {
                let mut out = Record::new();
                out.set("id", group.len() as i64);
                out.set("text", format!("{key}:{}", group.len()));
                vec![out]
            },
        ),
        4 => OpSpec::new(
            "grow",
            Package::Base,
            SpecOp::MapGrow { suffix: " lorem ipsum dolor".into() },
        )
        .build(),
        5 => OpSpec::new(
            "needs-stamp",
            Package::Base,
            SpecOp::MapStamp { field: "x".into(), from: "stamp".into(), mul: 1, add: 0 },
        )
        .build(),
        _ => OpSpec::new(
            "tally",
            Package::Base,
            SpecOp::Reduce {
                key: KeySpec::IntMod { field: "id".into(), modulus: 3, prefix: "g".into() },
                agg: AggSpec::Count { into: "id".into() },
            },
        )
        .build(),
    }
}

fn chain_plan(indices: &[usize]) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for &i in indices {
        prev = plan.add(prev, pool_op(i)).expect("chain plan");
    }
    plan.sink(prev, "out").expect("chain plan");
    plan
}

/// stamp -> dup -> parity -> grow -> sink "out", with a side branch
/// hanging off the node at `branch_at` (1-based into the chain) feeding
/// a second sink — the fan-out shape whose interior taps the worker
/// shards must ship back alongside the main stream.
fn fan_out_plan(branch_at: usize) -> LogicalPlan {
    let mut plan = LogicalPlan::new();
    let mut chain = vec![plan.source("in")];
    for idx in [0usize, 1, 2, 4] {
        let prev = *chain.last().expect("non-empty");
        chain.push(plan.add(prev, pool_op(idx)).expect("fan-out plan"));
    }
    plan.sink(*chain.last().expect("non-empty"), "out").expect("fan-out plan");
    let side = plan.add(chain[branch_at], pool_op(4)).expect("fan-out plan");
    plan.sink(side, "side").expect("fan-out plan");
    plan
}

fn docs(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            let mut r = Record::new();
            r.set("id", i as i64);
            r.set("text", format!("document {i} with a little body text"));
            r
        })
        .collect()
}

fn inputs_for(input: Vec<Record>) -> HashMap<String, Vec<Record>> {
    HashMap::from([("in".to_string(), input)])
}

/// Everything deterministic a run exposes, flattened to comparable
/// bytes/strings — the `tests/batch.rs` surface. Physical facts
/// (`PhysicalStats`, wire counters) are deliberately absent: they are
/// *allowed* to differ across shard counts.
struct RunSurface {
    sink_bytes: Option<Vec<u8>>,
    metrics_bytes: Option<Vec<u8>>,
    simulated_bits: Option<u64>,
    digest: Option<u64>,
    jsonl: String,
    registry: websift_observe::RegistrySnapshot,
    checkpoints: Vec<(usize, Vec<u8>)>,
    error: Option<String>,
}

fn run_surface(
    plan: &LogicalPlan,
    input: Vec<Record>,
    config: ExecutionConfig,
    res: &FlowResilience,
) -> RunSurface {
    let obs = Observer::new();
    let result = Executor::new(config).run_observed(plan, inputs_for(input), res, &obs);
    let (output, checkpoints, error): (Option<FlowOutput>, _, Option<String>) = match result {
        Ok(run) => (
            run.output,
            run.checkpoints
                .iter()
                .map(|c| (c.next_node, c.as_bytes().to_vec()))
                .collect(),
            None,
        ),
        Err(ExecutionError::PlanRejected { diagnostics }) => {
            (None, Vec::new(), Some(format!("WS00x: {}", diagnostics_to_json(&diagnostics))))
        }
        Err(e) => (None, Vec::new(), Some(format!("{e}"))),
    };
    let mut surface = RunSurface {
        sink_bytes: None,
        metrics_bytes: None,
        simulated_bits: None,
        digest: None,
        jsonl: obs.tracer().to_jsonl(),
        registry: obs.registry().snapshot(),
        checkpoints,
        error,
    };
    if let Some(out) = output {
        let mut w = Writer::new();
        out.sinks.encode(&mut w);
        surface.sink_bytes = Some(w.into_bytes());
        let mut w = Writer::new();
        out.metrics.encode(&mut w);
        surface.metrics_bytes = Some(w.into_bytes());
        surface.simulated_bits = Some(out.metrics.simulated_secs.to_bits());
        surface.digest = Some(out.deterministic_digest());
    }
    surface
}

/// Asserts two surfaces are byte-identical inside a proptest; `ctx`
/// labels failures.
macro_rules! prop_assert_surfaces_equal {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b, ctx) = ($a, $b, $ctx);
        prop_assert_eq!(a.error, b.error, "failure surface diverged: {}", ctx);
        prop_assert_eq!(a.sink_bytes, b.sink_bytes, "sink bytes diverged: {}", ctx);
        prop_assert_eq!(a.metrics_bytes, b.metrics_bytes, "metrics bytes diverged: {}", ctx);
        prop_assert_eq!(a.simulated_bits, b.simulated_bits, "simulated clock diverged: {}", ctx);
        prop_assert_eq!(a.digest, b.digest, "digest diverged: {}", ctx);
        prop_assert_eq!(a.jsonl, b.jsonl, "tracer JSONL diverged: {}", ctx);
        prop_assert_eq!(a.registry, b.registry, "registry diverged: {}", ctx);
        prop_assert_eq!(a.checkpoints, b.checkpoints, "checkpoint frames diverged: {}", ctx);
    }};
}

/// The pinned-test sibling of [`prop_assert_surfaces_equal`].
macro_rules! assert_surfaces_equal {
    ($a:expr, $b:expr, $ctx:expr) => {{
        let (a, b, ctx) = ($a, $b, $ctx);
        assert_eq!(a.error, b.error, "failure surface diverged: {ctx}");
        assert_eq!(a.sink_bytes, b.sink_bytes, "sink bytes diverged: {ctx}");
        assert_eq!(a.metrics_bytes, b.metrics_bytes, "metrics bytes diverged: {ctx}");
        assert_eq!(a.simulated_bits, b.simulated_bits, "simulated clock diverged: {ctx}");
        assert_eq!(a.digest, b.digest, "digest diverged: {ctx}");
        assert_eq!(a.jsonl, b.jsonl, "tracer JSONL diverged: {ctx}");
        assert_eq!(a.registry, b.registry, "registry diverged: {ctx}");
        assert_eq!(a.checkpoints, b.checkpoints, "checkpoint frames diverged: {ctx}");
    }};
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole property: the worker-shard count is unobservable on
    /// every deterministic surface, whatever the fusion/combining
    /// toggles, DoP, fault seed, or checkpoint cadence.
    #[test]
    fn shard_count_is_byte_identical_to_in_process_execution(
        indices in prop::collection::vec(0usize..7, 1..8),
        seed in 0u64..1_000_000,
        rate_sel in 0usize..3,
        dop_sel in 0usize..3,
        n_docs in 0usize..40,
        cadence in 1usize..4,
        fusion_sel in 0usize..2,
        combining_sel in 0usize..2,
    ) {
        let (fusion, combining) = (fusion_sel == 1, combining_sel == 1);
        let dop = [1usize, 4, 8][dop_sel];
        let plan = chain_plan(&indices);
        let rate = [0.0, 0.15, 0.35][rate_sel];
        let res = FlowResilience::injected(seed, rate, cadence);
        let config = |sharding: Option<ShardConfig>| ExecutionConfig {
            fusion,
            combining,
            sharding,
            ..ExecutionConfig::local(dop)
        };

        let baseline = run_surface(&plan, docs(n_docs), config(None), &res);
        for shards in [1usize, 2, 4] {
            let sharded =
                run_surface(&plan, docs(n_docs), config(Some(ShardConfig::in_process(shards))), &res);
            let ctx = format!(
                "indices={indices:?} seed={seed} dop={dop} fusion={fusion} \
                 combining={combining} shards={shards}"
            );
            prop_assert_surfaces_equal!(&sharded, &baseline, ctx);
        }
    }
}

/// The fixed acceptance sweep with *real OS worker processes*: the
/// `shard_worker` binary, spawned N >= 2 times, speaking the frame
/// protocol over stdin/stdout pipes, must match the in-process engine
/// byte for byte — with injected faults, across fusion x combining and
/// the shard grid.
#[test]
fn real_worker_processes_match_in_process_execution() {
    // stamp -> dup -> parity -> tally -> grow: a fused pipeline into a
    // combinable reduce, so combining=false also exercises the sharded
    // uncombined shuffle.
    let plan = chain_plan(&[0, 1, 2, 6, 4]);
    for seed in [7u64, 4242] {
        for (fusion, combining) in [(true, true), (true, false), (false, false)] {
            for dop in [1usize, 4] {
                let res = FlowResilience::injected(seed, 0.2, 2);
                let config = |sharding: Option<ShardConfig>| ExecutionConfig {
                    fusion,
                    combining,
                    sharding,
                    ..ExecutionConfig::local(dop)
                };
                let baseline = run_surface(&plan, docs(24), config(None), &res);
                for shards in [2usize, 3] {
                    let cfg = ShardConfig::process(shards, worker_bin());
                    let sharded = run_surface(&plan, docs(24), config(Some(cfg)), &res);
                    let ctx = format!(
                        "seed {seed} dop {dop} fusion {fusion} combining {combining} \
                         shards {shards} (process)"
                    );
                    assert_surfaces_equal!(&sharded, &baseline, ctx);
                }
            }
        }
    }

    // The run really went through worker processes: physical stats count
    // the shards and the frames/bytes that crossed the pipes.
    let cfg = ExecutionConfig {
        sharding: Some(ShardConfig::process(2, worker_bin())),
        ..ExecutionConfig::local(4)
    };
    let out = Executor::new(cfg)
        .run(&chain_plan(&[0, 2, 4]), inputs_for(docs(24)))
        .expect("sharded run succeeds");
    assert_eq!(out.physical.shards_used, 2, "two real worker processes");
    assert!(out.physical.shard_frames > 0, "frames crossed the pipes");
    assert!(out.physical.shard_wire_bytes > 0, "payload bytes crossed the pipes");
}

/// Kill a worker shard mid-run: the run fails as `ShardLost` carrying
/// every checkpoint taken so far, and resuming from the last one — at a
/// *different* shard count than the killed run, at the same count, or
/// entirely unsharded — reproduces the uninterrupted flow bit for bit.
#[test]
fn killed_shard_resumes_bit_exactly_at_mismatched_shard_counts() {
    // stamp -> parity -> tally -> grow, unfused so every node is its own
    // constituent and checkpoints land between them; combining off so the
    // tally runs the sharded uncombined shuffle.
    let plan = chain_plan(&[0, 2, 6, 4]);
    let full_res = FlowResilience { checkpoint_every_nodes: Some(1), ..FlowResilience::default() };
    let config = |sharding: Option<ShardConfig>| ExecutionConfig {
        fusion: false,
        combining: false,
        sharding,
        ..ExecutionConfig::local(4)
    };

    let full = Executor::new(config(Some(ShardConfig::in_process(2))))
        .run_resilient(&plan, inputs_for(docs(24)), &full_res)
        .expect("uninterrupted run succeeds")
        .output
        .expect("uninterrupted run completes");

    let mut resumes = 0usize;
    for after_frames in [6u64, 12, 18] {
        let kill = KillSpec { shard: 0, after_frames };
        let cfg = ShardConfig::in_process(2).with_kill(kill);
        let result =
            Executor::new(config(Some(cfg))).run_resilient(&plan, inputs_for(docs(24)), &full_res);
        match result {
            Err(ExecutionError::ShardLost { shard, checkpoints, .. }) => {
                assert_eq!(shard, 0, "the killed shard is the lost one");
                let Some(ckpt) = checkpoints.last() else {
                    // killed inside the first constituent, before any
                    // checkpoint existed — nothing to resume from
                    continue;
                };
                // resume at a mismatched shard count, the same count,
                // and unsharded: checkpoint frames are shard-agnostic
                for resume_sharding in
                    [Some(ShardConfig::in_process(3)), Some(ShardConfig::in_process(2)), None]
                {
                    let label = match &resume_sharding {
                        Some(s) => format!("{} shards", s.shards),
                        None => "unsharded".to_string(),
                    };
                    let resumed = Executor::new(config(resume_sharding))
                        .resume_from(&plan, ckpt, inputs_for(docs(24)), &full_res)
                        .expect("resume succeeds")
                        .output
                        .expect("resume completes");
                    let ctx = format!("after_frames {after_frames}, resume {label}");
                    assert_eq!(resumed.sinks, full.sinks, "{ctx}");
                    assert_eq!(
                        resumed.deterministic_digest(),
                        full.deterministic_digest(),
                        "{ctx}"
                    );
                    assert_eq!(
                        resumed.metrics.simulated_secs.to_bits(),
                        full.metrics.simulated_secs.to_bits(),
                        "{ctx}"
                    );
                }
                resumes += 1;
            }
            Ok(run) => {
                // the kill threshold was past the run's total traffic
                let out = run.output.expect("uninterrupted run completes");
                assert_eq!(out.deterministic_digest(), full.deterministic_digest());
            }
            Err(e) => panic!("unexpected failure: {e}"),
        }
    }
    assert!(resumes >= 1, "at least one kill fired mid-run and resumed");
}

/// With `respawn_lost`, the pool replaces the killed worker and re-runs
/// its unfinished chunks: the run completes, every surface matches the
/// unsharded baseline, and the respawn is visible in physical stats.
#[test]
fn respawned_worker_completes_the_run_identically() {
    let plan = chain_plan(&[0, 1, 2, 4]);
    let res = FlowResilience::default();
    let config = |sharding: Option<ShardConfig>| ExecutionConfig {
        sharding,
        ..ExecutionConfig::local(4)
    };
    let baseline = run_surface(&plan, docs(24), config(None), &res);

    let cfg = ShardConfig::in_process(2)
        .with_kill(KillSpec { shard: 1, after_frames: 3 })
        .with_respawn(true);
    let sharded = run_surface(&plan, docs(24), config(Some(cfg)), &res);
    assert_surfaces_equal!(&sharded, &baseline, "respawned run");

    let cfg = ShardConfig::in_process(2)
        .with_kill(KillSpec { shard: 1, after_frames: 3 })
        .with_respawn(true);
    let out = Executor::new(config(Some(cfg)))
        .run(&plan, inputs_for(docs(24)))
        .expect("respawned run succeeds");
    assert!(out.physical.shard_respawns >= 1, "the lost worker was respawned");
}

/// An uncombined Reduce whose group table exceeds the (tiny) memory
/// threshold spills to sorted disk runs mid-shuffle; the merged groups
/// still reproduce the in-memory grouping byte for byte, and the spill
/// is visible in physical stats.
#[test]
fn over_memory_reduce_spills_to_disk_and_stays_byte_identical() {
    let plan = chain_plan(&[0, 6]);
    let res = FlowResilience::default();
    let config = |sharding: Option<ShardConfig>| ExecutionConfig {
        combining: false,
        sharding,
        ..ExecutionConfig::local(4)
    };
    let baseline = run_surface(&plan, docs(80), config(None), &res);
    let sharded = run_surface(
        &plan,
        docs(80),
        config(Some(ShardConfig::in_process(2).with_spill_threshold(64))),
        &res,
    );
    assert_surfaces_equal!(&sharded, &baseline, "spilling reduce");

    let out = Executor::new(config(Some(ShardConfig::in_process(2).with_spill_threshold(64))))
        .run(&plan, inputs_for(docs(80)))
        .expect("spilling run succeeds");
    assert!(out.physical.spill_runs > 0, "the group table spilled at least once");
    assert!(out.physical.spill_bytes > 0, "spilled bytes are accounted");
}

/// Fan-out plans: the fused chain tees an interior node to a side sink,
/// so worker shards must ship tap streams back alongside the main
/// stream. Every branch point must be shard-invariant on both sinks.
#[test]
fn fan_out_tee_is_shard_invariant() {
    for branch_at in 1..=4usize {
        let plan = fan_out_plan(branch_at);
        for seed in [0u64, 909] {
            let res = FlowResilience::injected(seed, 0.2, 2);
            let baseline =
                run_surface(&plan, docs(24), ExecutionConfig::local(4), &res);
            assert!(baseline.error.is_none(), "fan-out plan must run: {:?}", baseline.error);
            for shards in [2usize, 4] {
                let sharded = run_surface(
                    &plan,
                    docs(24),
                    ExecutionConfig {
                        sharding: Some(ShardConfig::in_process(shards)),
                        ..ExecutionConfig::local(4)
                    },
                    &res,
                );
                let ctx = format!("branch_at {branch_at} seed {seed} shards {shards}");
                assert_surfaces_equal!(&sharded, &baseline, ctx);
            }
        }
    }
}

/// A store sink capturing exactly what the executor delivers, encoded
/// through the same `Snapshot` codec the serve-side stores persist.
struct RecordingStore {
    rows: Vec<(String, Vec<u8>)>,
}

impl StoreSink for RecordingStore {
    fn store_name(&self) -> &str {
        "kb"
    }
    fn append(&mut self, dataset: &str, records: Vec<Record>) {
        for r in records {
            let mut w = Writer::new();
            r.encode(&mut w);
            self.rows.push((dataset.to_string(), w.into_bytes()));
        }
    }
}

/// The eighth surface: records routed into a store via
/// [`Executor::run_into`] arrive in the same order with the same bytes
/// whatever the shard count, so serve-side snapshots built from a
/// sharded run are byte-identical to in-process ones.
#[test]
fn store_snapshots_cannot_observe_sharding() {
    let mut plan = LogicalPlan::new();
    let mut prev = plan.source("in");
    for idx in [0usize, 1, 2, 4] {
        prev = plan.add(prev, pool_op(idx)).expect("store plan");
    }
    plan.sink(prev, "store:kb/docs").expect("store plan");

    let run = |sharding: Option<ShardConfig>| {
        let mut store = RecordingStore { rows: Vec::new() };
        let out = Executor::new(ExecutionConfig {
            sharding,
            ..ExecutionConfig::local(4)
        })
        .run_into(&plan, inputs_for(docs(30)), &mut store)
        .expect("store run succeeds");
        (store.rows, out.deterministic_digest())
    };

    let (base_rows, base_digest) = run(None);
    assert!(!base_rows.is_empty(), "records reached the store");
    for shards in [1usize, 2, 4] {
        let (rows, digest) = run(Some(ShardConfig::in_process(shards)));
        assert_eq!(rows, base_rows, "store rows diverged at {shards} shards");
        assert_eq!(digest, base_digest, "digest diverged at {shards} shards");
    }
}
