//! Field-flow analysis: forward abstract interpretation over the logical
//! plan.
//!
//! WS001–WS012 reason one node at a time; this pass walks the whole DAG
//! once (parents always carry smaller ids, so a single forward sweep is a
//! fixpoint) and infers, for every node's *output edge*:
//!
//! - the **record schema** — which fields are definitely present, possibly
//!   present (a `maybe_writes` annotation, or surviving a custom reduce),
//!   or absent, each with the value type its last producer declared
//!   ([`websift_analyze::lattice`] holds the domains);
//! - a **cost envelope** — closed `[lo, hi]` intervals over record count
//!   and byte volume, propagated through per-operator selectivity models:
//!   per-kind defaults, an explicit [`crate::operator::Operator::with_selectivity`]
//!   override, or ratios calibrated from a previous run's per-operator
//!   metrics (the profiler's startup/per-record split already isolates the
//!   data-dependent part these ratios model).
//!
//! On top of the same sweep sit two stage views:
//!
//! - [`canonical_stages`] — identity-transparent, fusion- and
//!   combining-aware segmentation used by the WS014 peak-memory
//!   pre-flight. It deliberately ignores the optimizer's orphaned
//!   `removed-identity` markers so verdicts stay invariant under
//!   optimization (the invariance the WS001–WS009 suite pins).
//! - [`crate::optimizer::plan_stages`] — the exact stage decisions a
//!   fresh executor run makes, mirrored decision-for-decision; the
//!   [`explain_plan`] report prints these, and the differential proptest
//!   in `tests/explain.rs` pins them against the executor's actual
//!   decisions.

use crate::analyze::AnalyzeOptions;
use crate::logical::{LogicalPlan, NodeId, NodeOp};
use crate::operator::{Kind, OpFunc, Operator};
use crate::optimizer::{plan_stages, REMOVED_IDENTITY};
use std::collections::BTreeMap;
use websift_analyze::lattice::{
    CostEnvelope, FieldFact, FieldSchema, FieldType, Interval, Presence,
};
use websift_observe::json::{array, str_array, ObjectWriter};

/// Assumed bytes per source record when no source estimate is given; the
/// envelope is then *relative* — "per source record" with a nominal 4 KB
/// page.
const DEFAULT_SOURCE_BYTES: f64 = 4096.0;
/// Bytes a written annotation field adds to a record.
const WRITE_FIELD_BYTES: f64 = 256.0;
/// Bytes per output record of a typed reduce (key + one aggregate value).
const REDUCE_OUTPUT_BYTES: f64 = 128.0;
/// Default fan-out ceiling for a `FlatMap` with no declared selectivity.
const FLATMAP_MAX_FANOUT: f64 = 8.0;

/// Value type of a well-known source schema field; anything else the
/// corpus reader might attach is `Unknown`.
pub fn source_field_type(field: &str) -> FieldType {
    match field {
        "id" => FieldType::Int,
        "corpus" | "text" | "url" => FieldType::Str,
        _ => FieldType::Unknown,
    }
}

/// Everything inferred for one plan edge: the record schema and the cost
/// envelope of the records flowing over it.
#[derive(Debug, Clone)]
pub struct EdgeState {
    pub schema: FieldSchema,
    pub envelope: CostEnvelope,
}

/// The result of the forward sweep: one [`EdgeState`] per node, describing
/// that node's *output*.
#[derive(Debug, Clone)]
pub struct FieldFlow {
    after: Vec<EdgeState>,
}

impl FieldFlow {
    /// State on `id`'s output edge.
    pub fn after(&self, id: NodeId) -> &EdgeState {
        &self.after[id]
    }

    /// State on `id`'s input edge (its parent's output), if it has one.
    pub fn input(&self, plan: &LogicalPlan, id: NodeId) -> Option<&EdgeState> {
        plan.nodes()[id].input.map(|p| &self.after[p])
    }
}

/// Is this node the optimizer's notion of a no-op: a `Map` writing
/// nothing, named `identity` (pre-removal) or `removed-identity` (the
/// orphaned marker left after removal)? The canonical stage segmentation
/// looks *through* these so WS014 verdicts cannot change when the
/// optimizer splices one out.
fn is_transparent(op: &Operator) -> bool {
    op.kind == Kind::Map
        && op.writes.is_empty()
        && (op.name == "identity" || op.name == REMOVED_IDENTITY)
}

/// First non-transparent ancestor of `id` (skipping identity chains).
fn effective_parent(plan: &LogicalPlan, id: NodeId) -> Option<NodeId> {
    let mut cur = plan.nodes()[id].input?;
    loop {
        match &plan.nodes()[cur].op {
            NodeOp::Op(op) if is_transparent(op) => match plan.nodes()[cur].input {
                Some(p) => cur = p,
                None => return None,
            },
            _ => return Some(cur),
        }
    }
}

/// The per-kind default selectivity (output records per input record).
fn default_selectivity(kind: Kind) -> Interval {
    match kind {
        Kind::Map => Interval::point(1.0),
        Kind::Filter => Interval::new(0.0, 1.0),
        Kind::FlatMap => Interval::new(0.0, FLATMAP_MAX_FANOUT),
        Kind::Reduce => Interval::new(0.0, 1.0),
    }
}

/// One operator's record-count selectivity: calibration beats the
/// explicit annotation beats the per-kind default.
fn op_selectivity(op: &Operator, opts: &AnalyzeOptions) -> Interval {
    if let Some(&(records_ratio, _)) = opts.calibration.get(&op.name) {
        return Interval::point(records_ratio);
    }
    match op.selectivity {
        Some((lo, hi)) => Interval::new(lo, hi),
        None => default_selectivity(op.kind),
    }
}

fn declared_write_type(op: &Operator, field: &str) -> FieldType {
    op.write_types
        .iter()
        .find(|(f, _)| f == field)
        .map(|&(_, t)| t)
        .unwrap_or(FieldType::Unknown)
}

/// Schema transfer function for one operator.
fn apply_op_schema(op: &Operator, input: &FieldSchema) -> FieldSchema {
    if let OpFunc::Reduce { aggregate, .. } = op.func() {
        return match aggregate.output_field() {
            // A typed aggregate builds fresh records: `key` plus the
            // aggregate value. Everything inherited is gone.
            Some((field, ty)) => {
                let mut out = BTreeMap::new();
                out.insert(
                    "key".to_string(),
                    FieldFact::definite(FieldType::Str, Some(&op.name)),
                );
                out.insert(field.to_string(), FieldFact::definite(ty, Some(&op.name)));
                out
            }
            // A custom closure may pass fields through, drop them, or
            // invent new ones: demote everything to possibly-present and
            // trust only the declared writes.
            None => {
                let mut out: FieldSchema = input
                    .iter()
                    .map(|(f, fact)| {
                        let mut fact = fact.clone();
                        fact.presence = fact.presence.join(Presence::Absent);
                        (f.clone(), fact)
                    })
                    .collect();
                for f in &op.writes {
                    out.insert(
                        f.clone(),
                        FieldFact::definite(declared_write_type(op, f), Some(&op.name)),
                    );
                }
                out
            }
        };
    }
    let mut out = input.clone();
    for f in &op.writes {
        out.insert(f.clone(), FieldFact::definite(declared_write_type(op, f), Some(&op.name)));
    }
    for f in &op.maybe_writes {
        let written = FieldFact::definite(declared_write_type(op, f), Some(&op.name));
        let fact = match out.get(f) {
            Some(old) => old.join(&written),
            None => FieldFact { presence: Presence::Absent, ..written.clone() }.join(&written),
        };
        out.insert(f.clone(), fact);
    }
    out
}

/// Envelope transfer function for one operator.
fn apply_op_envelope(op: &Operator, input: CostEnvelope, opts: &AnalyzeOptions) -> CostEnvelope {
    let sel = op_selectivity(op, opts);
    let records = input.records.scale(sel);
    if op.kind == Kind::Reduce {
        // Reduce output records are key + aggregate value, not the input
        // payload (even a custom closure re-emits per group).
        return CostEnvelope::new(records, records.scale(Interval::point(REDUCE_OUTPUT_BYTES)));
    }
    let mut bytes = match opts.calibration.get(&op.name) {
        Some(&(_, bytes_ratio)) => input.bytes.scale(Interval::point(bytes_ratio)),
        None => input.bytes.scale(sel),
    };
    // Definite writes grow both bounds; maybe-writes only the upper one.
    bytes = bytes + records.scale(Interval::point(WRITE_FIELD_BYTES * op.writes.len() as f64));
    bytes.hi += records.hi * WRITE_FIELD_BYTES * op.maybe_writes.len() as f64;
    CostEnvelope::new(records, bytes)
}

/// Runs the forward sweep over the whole plan.
pub fn field_flow(plan: &LogicalPlan, opts: &AnalyzeOptions) -> FieldFlow {
    let (source_records, source_bytes) = match opts.source_estimate {
        Some((records, avg_bytes)) => {
            (records as f64, records as f64 * avg_bytes as f64)
        }
        None => (1.0, DEFAULT_SOURCE_BYTES),
    };
    let mut after: Vec<EdgeState> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let state = match &node.op {
            NodeOp::Source(_) => {
                let schema: FieldSchema = opts
                    .source_fields
                    .iter()
                    .map(|f| {
                        (f.clone(), FieldFact::definite(source_field_type(f), None))
                    })
                    .collect();
                EdgeState {
                    schema,
                    envelope: CostEnvelope::new(
                        Interval::point(source_records),
                        Interval::point(source_bytes),
                    ),
                }
            }
            NodeOp::Sink(_) => {
                let parent = node.input.expect("sinks have inputs");
                after[parent].clone()
            }
            NodeOp::Op(op) => {
                let parent = node.input.expect("ops have inputs");
                let input = &after[parent];
                EdgeState {
                    schema: apply_op_schema(op, &input.schema),
                    envelope: apply_op_envelope(op, input.envelope, opts),
                }
            }
        };
        after.push(state);
    }
    FieldFlow { after }
}

/// One canonical stage: member operator node ids in execution order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanonicalStage {
    pub members: Vec<NodeId>,
    /// True when the stage's terminal member is a combinable Reduce.
    pub combined_reduce: bool,
}

/// The identity-transparent, fusion- and combining-aware stage
/// segmentation WS014 estimates peak memory over.
///
/// This is *not* byte-for-byte the executor's staging ([`plan_stages`] is
/// that): the executor refuses to fuse across the orphaned
/// `removed-identity` markers identity elimination leaves behind, while
/// this view looks straight through identity chains — before *and* after
/// removal — so the memory verdict cannot flip when the optimizer runs.
/// Both views agree on every plan with no identity operators.
pub fn canonical_stages(plan: &LogicalPlan) -> Vec<CanonicalStage> {
    // How many non-transparent consumers (operators or sinks) each node
    // effectively has, looking through identity chains.
    let mut eff_consumers = vec![0usize; plan.len()];
    for node in plan.nodes() {
        let counts = match &node.op {
            NodeOp::Op(op) => !is_transparent(op),
            NodeOp::Sink(_) => true,
            NodeOp::Source(_) => false,
        };
        if counts {
            if let Some(p) = effective_parent(plan, node.id) {
                eff_consumers[p] += 1;
            }
        }
    }

    let mut stages: Vec<CanonicalStage> = Vec::new();
    let mut closed: Vec<bool> = Vec::new();
    let mut stage_of: BTreeMap<NodeId, usize> = BTreeMap::new();
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if is_transparent(op) {
            continue;
        }
        let joins = effective_parent(plan, node.id).and_then(|p| {
            let parent_op = match &plan.nodes()[p].op {
                NodeOp::Op(parent_op) => parent_op,
                _ => return None,
            };
            if parent_op.is_pipelineable()
                && eff_consumers[p] == 1
                && (op.is_pipelineable() || op.combinable_reduce())
            {
                stage_of.get(&p).copied().filter(|&s| !closed[s])
            } else {
                None
            }
        });
        let idx = match joins {
            Some(idx) => {
                stages[idx].members.push(node.id);
                idx
            }
            None => {
                stages.push(CanonicalStage { members: vec![node.id], combined_reduce: false });
                closed.push(false);
                stages.len() - 1
            }
        };
        if !op.is_pipelineable() {
            // a Reduce terminates its stage either way
            closed[idx] = true;
            stages[idx].combined_reduce = op.combinable_reduce();
        }
        stage_of.insert(node.id, idx);
    }
    stages
}

fn interval_json(i: Interval) -> String {
    let mut one = String::new();
    websift_observe::json::write_f64(&mut one, i.lo);
    one.push(',');
    websift_observe::json::write_f64(&mut one, i.hi);
    format!("[{one}]")
}

/// Renders the deterministic "explain" report: the exact stage decisions
/// a fresh run at this `fusion`/`combining` configuration makes, each with
/// its inferred cost envelope and cost-model split, plus the inferred
/// schema at every sink. Byte-stable for equal inputs.
pub fn explain_plan(
    plan: &LogicalPlan,
    opts: &AnalyzeOptions,
    fusion: bool,
    combining: bool,
) -> String {
    let flow = field_flow(plan, opts);
    let stages = plan_stages(plan, fusion, combining);

    let stage_objs = stages.iter().map(|s| {
        let members: Vec<NodeId> = (s.first..s.first + s.len).collect();
        let names: Vec<&str> = members
            .iter()
            .filter_map(|&id| match &plan.nodes()[id].op {
                NodeOp::Op(op) => Some(op.name.as_str()),
                _ => None,
            })
            .collect();
        let last = *members.last().expect("stages are non-empty");
        let input = flow.input(plan, s.first).expect("op nodes have inputs");
        let output = flow.after(last);
        let (startup_secs, us_per_char, memory_bytes) = members.iter().fold(
            (0.0f64, 0.0f64, 0u64),
            |(s0, u, m), &id| match &plan.nodes()[id].op {
                NodeOp::Op(op) => (
                    s0 + op.cost.startup_secs,
                    u + op.cost.us_per_char,
                    m + op.cost.memory_bytes,
                ),
                _ => (s0, u, m),
            },
        );
        let mut w = ObjectWriter::new();
        w.u64("first", s.first as u64)
            .raw("ops", &str_array(names))
            .str("kind", if s.len > 1 { "fused" } else { "single" });
        if s.combined_reduce {
            w.str("reduce", "combined");
        }
        w.raw("records", &interval_json(output.envelope.records))
            .raw("bytes", &interval_json(output.envelope.bytes))
            .raw("input_bytes", &interval_json(input.envelope.bytes))
            .f64("startup_secs", startup_secs)
            .f64("us_per_char", us_per_char)
            .u64("memory_bytes", memory_bytes);
        w.finish()
    });
    let stages_json = array(stage_objs);

    let sink_objs = plan.nodes().iter().filter_map(|node| {
        let NodeOp::Sink(name) = &node.op else { return None };
        let state = flow.after(node.id);
        let fields = array(state.schema.iter().map(|(field, fact)| {
            let mut w = ObjectWriter::new();
            w.str("field", field)
                .str("presence", fact.presence.as_str())
                .str("type", fact.ty.as_str());
            if let Some(p) = &fact.producer {
                w.str("producer", p);
            }
            w.finish()
        }));
        let mut w = ObjectWriter::new();
        w.str("sink", name)
            .raw("records", &interval_json(state.envelope.records))
            .raw("fields", &fields);
        Some(w.finish())
    });
    let sinks_json = array(sink_objs);

    ObjectWriter::new()
        .str("fusion", if fusion { "on" } else { "off" })
        .str("combining", if combining { "on" } else { "off" })
        .raw("stages", &stages_json)
        .raw("sinks", &sinks_json)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Aggregate, Operator, Package};
    use crate::optimizer::optimize;
    use crate::record::Record;

    fn map(name: &str, reads: &[&str], writes: &[&str]) -> Operator {
        Operator::map(name, Package::Ie, |r| r).with_reads(reads).with_writes(writes)
    }

    #[test]
    fn schema_tracks_presence_and_types() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let s = plan
            .add(
                src,
                map("sentences", &["text"], &["sentences"])
                    .with_write_types(&[("sentences", FieldType::Array)]),
            )
            .unwrap();
        let n = plan
            .add(
                s,
                map("negation", &["sentences"], &[]).with_maybe_writes(&["negation"]),
            )
            .unwrap();
        let sink = plan.sink(n, "out").unwrap();
        let flow = field_flow(&plan, &AnalyzeOptions::default());

        let at_sink = &flow.after(sink).schema;
        assert_eq!(at_sink["text"].presence, Presence::Definite);
        assert_eq!(at_sink["text"].ty, FieldType::Str);
        assert_eq!(at_sink["sentences"].presence, Presence::Definite);
        assert_eq!(at_sink["sentences"].ty, FieldType::Array);
        assert_eq!(at_sink["sentences"].producer.as_deref(), Some("sentences"));
        // maybe_writes on a previously-absent field => possibly present
        assert_eq!(at_sink["negation"].presence, Presence::Possible);
    }

    #[test]
    fn typed_reduce_replaces_the_schema() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        let sink = plan.sink(r, "out").unwrap();
        let flow = field_flow(&plan, &AnalyzeOptions::default());
        let schema = &flow.after(sink).schema;
        assert_eq!(schema.len(), 2, "{schema:?}");
        assert_eq!(schema["key"].ty, FieldType::Str);
        assert_eq!(schema["count"].ty, FieldType::Int);
        assert!(!schema.contains_key("text"), "inherited fields are dropped");
    }

    #[test]
    fn custom_reduce_demotes_inherited_fields() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce("pick", Package::Base, |_| String::new(), |_, rs| rs),
            )
            .unwrap();
        let sink = plan.sink(r, "out").unwrap();
        let flow = field_flow(&plan, &AnalyzeOptions::default());
        let schema = &flow.after(sink).schema;
        assert_eq!(schema["text"].presence, Presence::Possible);
        assert_eq!(schema["text"].ty, FieldType::Str, "type survives the demotion");
    }

    #[test]
    fn envelopes_compose_selectivities() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let split = plan
            .add(
                src,
                Operator::flat_map("split", Package::Ie, |r| vec![r]).with_selectivity(4.0, 6.0),
            )
            .unwrap();
        let keep = plan
            .add(split, Operator::filter("keep", Package::Base, |_| true).with_reads(&["text"]))
            .unwrap();
        let sink = plan.sink(keep, "out").unwrap();

        let opts = AnalyzeOptions::default().with_source_estimate(1000, 2048);
        let flow = field_flow(&plan, &opts);
        assert_eq!(flow.after(src).envelope.records, Interval::point(1000.0));
        assert_eq!(flow.after(split).envelope.records, Interval::new(4000.0, 6000.0));
        let out = flow.after(sink).envelope;
        assert_eq!(out.records, Interval::new(0.0, 6000.0), "filter keeps [0,1]");
        assert!(out.bytes.hi >= 2048.0 * 1000.0 * 6.0, "bytes scale with fan-out");
    }

    #[test]
    fn calibration_overrides_defaults() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let keep = plan
            .add(src, Operator::filter("keep", Package::Base, |_| true).with_reads(&["text"]))
            .unwrap();
        let sink = plan.sink(keep, "out").unwrap();
        let opts = AnalyzeOptions::default()
            .with_source_estimate(1000, 1000)
            .with_calibration("keep", 0.25, 0.25);
        let flow = field_flow(&plan, &opts);
        let out = flow.after(sink).envelope;
        assert_eq!(out.records, Interval::point(250.0));
        assert_eq!(out.bytes, Interval::point(250_000.0));
    }

    #[test]
    fn canonical_stages_look_through_identity_removal() {
        let build = || {
            let mut plan = LogicalPlan::new();
            let src = plan.source("docs");
            let a = plan.add(src, map("a", &["text"], &["x"])).unwrap();
            let i = plan.add(a, Operator::map("identity", Package::Base, |r| r)).unwrap();
            let b = plan.add(i, map("b", &["x"], &["y"])).unwrap();
            plan.sink(b, "out").unwrap();
            plan
        };
        let before = canonical_stages(&build());
        let mut plan = build();
        optimize(&mut plan);
        let after = canonical_stages(&plan);
        // one stage, members {a, b}, both before and after identity removal
        assert_eq!(before.len(), 1);
        assert_eq!(before, after, "segmentation invariant under identity elimination");
        assert_eq!(before[0].members.len(), 2);
    }

    #[test]
    fn canonical_stages_split_at_fan_out_and_close_at_reduce() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, map("a", &["text"], &["x"])).unwrap();
        let l = plan.add(a, map("left", &["x"], &[])).unwrap();
        let r = plan.add(a, map("right", &["x"], &[])).unwrap();
        let red = plan
            .add(
                l,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |_: &Record| String::new(),
                    Aggregate::Count { into: "n".into() },
                ),
            )
            .unwrap();
        plan.sink(red, "counts").unwrap();
        plan.sink(r, "raw").unwrap();
        let stages = canonical_stages(&plan);
        // a alone (fan-out), then left+reduce (combining-aware), then right
        assert_eq!(stages.len(), 3, "{stages:?}");
        assert_eq!(stages[0].members, vec![a]);
        assert_eq!(stages[1].members, vec![l, red]);
        assert!(stages[1].combined_reduce);
        assert_eq!(stages[2].members, vec![r]);
    }

    #[test]
    fn explain_is_byte_stable_and_names_stages() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, map("sentences", &["text"], &["sentences"])).unwrap();
        let b = plan
            .add(a, Operator::filter("keep", Package::Base, |_| true).with_reads(&["sentences"]))
            .unwrap();
        plan.sink(b, "out").unwrap();
        let opts = AnalyzeOptions::default();
        let one = explain_plan(&plan, &opts, true, true);
        let two = explain_plan(&plan, &opts, true, true);
        assert_eq!(one, two, "explain output must be byte-stable");
        assert!(one.contains(r#""ops":["sentences","keep"]"#), "{one}");
        assert!(one.contains(r#""kind":"fused""#), "{one}");
        let unfused = explain_plan(&plan, &opts, false, true);
        assert!(unfused.contains(r#""kind":"single""#), "{unfused}");
    }
}
