//! An in-memory distributed-file-system model (HDFS stand-in).
//!
//! "Input and output of all tasks was stored in HDFS with one data node
//! per compute node and a data replication factor of 3." This module
//! models exactly that: fixed-size blocks placed round-robin across data
//! nodes with `replication` copies, plus read/write network-byte
//! accounting — the substrate behind the paper's observation that storing
//! 1.6 TB of intermediate annotations "over-stressed the cluster network".

use parking_lot::RwLock;
use serde::Serialize;
use std::collections::HashMap;

/// Configuration of the DFS.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    pub data_nodes: usize,
    pub block_size: usize,
    pub replication: usize,
}

impl Default for DfsConfig {
    fn default() -> DfsConfig {
        DfsConfig {
            data_nodes: 28,
            block_size: 64 << 20,
            replication: 3,
        }
    }
}

/// Traffic counters.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct DfsStats {
    pub files: u64,
    pub blocks: u64,
    pub bytes_stored: u64,
    /// Bytes that crossed the network (writes × replication + remote reads).
    pub network_bytes: u64,
}

#[derive(Debug)]
struct FileEntry {
    /// (block bytes, nodes holding a replica)
    blocks: Vec<(Vec<u8>, Vec<usize>)>,
}

/// The DFS. Thread-safe.
#[derive(Debug)]
pub struct Dfs {
    config: DfsConfig,
    files: RwLock<HashMap<String, FileEntry>>,
    stats: RwLock<DfsStats>,
    next_node: RwLock<usize>,
}

/// Errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DfsError {
    NotFound(String),
    AlreadyExists(String),
}

impl std::fmt::Display for DfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DfsError::NotFound(p) => write!(f, "no such file: {p}"),
            DfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
        }
    }
}

impl std::error::Error for DfsError {}

impl Dfs {
    pub fn new(config: DfsConfig) -> Dfs {
        assert!(config.data_nodes > 0 && config.block_size > 0 && config.replication > 0);
        Dfs {
            config,
            files: RwLock::new(HashMap::new()),
            stats: RwLock::new(DfsStats::default()),
            next_node: RwLock::new(0),
        }
    }

    /// Writes a file, splitting into blocks placed on
    /// `min(replication, data_nodes)` nodes each.
    pub fn write(&self, path: &str, data: &[u8]) -> Result<(), DfsError> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(DfsError::AlreadyExists(path.to_string()));
        }
        let replicas = self.config.replication.min(self.config.data_nodes);
        let mut blocks = Vec::new();
        let mut next = self.next_node.write();
        for chunk in data.chunks(self.config.block_size.max(1)) {
            let nodes: Vec<usize> = (0..replicas)
                .map(|k| (*next + k) % self.config.data_nodes)
                .collect();
            *next = (*next + 1) % self.config.data_nodes;
            blocks.push((chunk.to_vec(), nodes));
        }
        // Empty files still occupy an entry with zero blocks.
        let nblocks = blocks.len() as u64;
        files.insert(path.to_string(), FileEntry { blocks });
        let mut stats = self.stats.write();
        stats.files += 1;
        stats.blocks += nblocks;
        stats.bytes_stored += data.len() as u64 * replicas as u64;
        stats.network_bytes += data.len() as u64 * replicas as u64;
        Ok(())
    }

    /// Reads a file from `reader_node`; replicas local to that node are
    /// free, remote blocks count as network traffic.
    pub fn read(&self, path: &str, reader_node: usize) -> Result<Vec<u8>, DfsError> {
        let files = self.files.read();
        let entry = files
            .get(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let mut out = Vec::new();
        let mut remote = 0u64;
        for (bytes, nodes) in &entry.blocks {
            if !nodes.contains(&(reader_node % self.config.data_nodes)) {
                remote += bytes.len() as u64;
            }
            out.extend_from_slice(bytes);
        }
        self.stats.write().network_bytes += remote;
        Ok(out)
    }

    pub fn exists(&self, path: &str) -> bool {
        self.files.read().contains_key(path)
    }

    pub fn delete(&self, path: &str) -> Result<(), DfsError> {
        let mut files = self.files.write();
        let entry = files
            .remove(path)
            .ok_or_else(|| DfsError::NotFound(path.to_string()))?;
        let mut stats = self.stats.write();
        stats.files -= 1;
        stats.blocks -= entry.blocks.len() as u64;
        let bytes: u64 = entry.blocks.iter().map(|(b, n)| (b.len() * n.len()) as u64).sum();
        stats.bytes_stored = stats.bytes_stored.saturating_sub(bytes);
        Ok(())
    }

    pub fn stats(&self) -> DfsStats {
        *self.stats.read()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_dfs() -> Dfs {
        Dfs::new(DfsConfig {
            data_nodes: 4,
            block_size: 10,
            replication: 3,
        })
    }

    #[test]
    fn write_read_roundtrip() {
        let dfs = small_dfs();
        let data = b"hello distributed world".to_vec();
        dfs.write("/a", &data).unwrap();
        assert_eq!(dfs.read("/a", 0).unwrap(), data);
        assert!(dfs.exists("/a"));
    }

    #[test]
    fn duplicate_write_rejected() {
        let dfs = small_dfs();
        dfs.write("/a", b"x").unwrap();
        assert_eq!(dfs.write("/a", b"y"), Err(DfsError::AlreadyExists("/a".into())));
    }

    #[test]
    fn missing_file_errors() {
        let dfs = small_dfs();
        assert_eq!(dfs.read("/nope", 0), Err(DfsError::NotFound("/nope".into())));
        assert_eq!(dfs.delete("/nope"), Err(DfsError::NotFound("/nope".into())));
    }

    #[test]
    fn replication_multiplies_stored_bytes() {
        let dfs = small_dfs();
        dfs.write("/a", &[7u8; 25]).unwrap();
        let stats = dfs.stats();
        assert_eq!(stats.blocks, 3); // 25 bytes / 10-byte blocks
        assert_eq!(stats.bytes_stored, 75); // ×3 replication
        assert_eq!(stats.network_bytes, 75);
    }

    #[test]
    fn local_reads_are_cheaper_than_remote() {
        let dfs = Dfs::new(DfsConfig {
            data_nodes: 10,
            block_size: 1 << 20,
            replication: 1,
        });
        dfs.write("/a", &[1u8; 1000]).unwrap();
        let before = dfs.stats().network_bytes;
        // replica lives on node 0 (first placement)
        dfs.read("/a", 0).unwrap();
        let local = dfs.stats().network_bytes - before;
        dfs.read("/a", 5).unwrap();
        let remote = dfs.stats().network_bytes - before - local;
        assert_eq!(local, 0);
        assert_eq!(remote, 1000);
    }

    #[test]
    fn delete_releases_space() {
        let dfs = small_dfs();
        dfs.write("/a", &[0u8; 30]).unwrap();
        dfs.delete("/a").unwrap();
        assert!(!dfs.exists("/a"));
        assert_eq!(dfs.stats().bytes_stored, 0);
        assert_eq!(dfs.stats().files, 0);
    }

    #[test]
    fn empty_file() {
        let dfs = small_dfs();
        dfs.write("/empty", b"").unwrap();
        assert_eq!(dfs.read("/empty", 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn concurrent_writers() {
        use std::sync::Arc;
        let dfs = Arc::new(small_dfs());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let dfs = dfs.clone();
                std::thread::spawn(move || {
                    dfs.write(&format!("/f{i}"), &[i as u8; 50]).unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dfs.stats().files, 8);
    }
}
