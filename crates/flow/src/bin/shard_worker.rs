//! Worker-shard entry point: speaks the shuffle frame protocol over
//! stdio until the parent says BYE (or closes the pipe). Spawned per
//! shard by the executor when `WorkerKind::Process` is configured, and
//! by the differential tests to prove byte-identity across real
//! process boundaries.

use std::io::{stdin, stdout};

fn main() {
    let input = stdin().lock();
    let output = stdout().lock();
    if let Err(e) = websift_flow::shuffle::worker_serve(input, output) {
        eprintln!("shard worker failed: {e}");
        std::process::exit(1);
    }
}
