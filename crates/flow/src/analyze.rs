//! Static plan verification.
//!
//! The paper's costliest failures — OpenNLP 1.4-vs-1.5 class-loader
//! conflicts, annotators applied before the annotations they read existed,
//! flows admitted that could never fit worker memory — were discovered at
//! runtime after hours of cluster time, yet every one is decidable from
//! the operators' semantic annotations alone. This pass runs between
//! `compile` and `optimize`/`execute` and turns them into pre-flight
//! diagnostics:
//!
//! | code  | severity | check |
//! |-------|----------|-------|
//! | WS001 | error    | use-before-def: a read field no upstream op writes, but some op in the plan produces |
//! | WS002 | error*   | library major-version conflict across the plan |
//! | WS003 | warning  | dead write: a written field no downstream op reads before overwrite/sink-less end |
//! | WS004 | error    | duplicate sink name |
//! | WS005 | warning  | unused `$var` in the source script |
//! | WS006 | warning  | unreachable node: contributes to no sink |
//! | WS007 | error    | memory admission: per-worker footprint × co-located workers exceeds node RAM |
//! | WS008 | error    | requested DoP exceeds cluster cores |
//! | WS009 | warning  | unknown field: read field nothing in the plan produces |
//! | WS010 | info     | custom aggregate: a `Custom` Reduce silently disables partial aggregation |
//! | WS011 | error    | store sink: malformed `store:` name, or a store the run cannot reach |
//! | WS012 | warning† | live mode: a `Custom` Reduce cannot fold incrementally — each round recomputes it from the cumulative stream |
//! | WS013 | error    | field-type conflict: an operator reads a field under a declared type its producer wrote differently |
//! | WS014 | error    | fused-stage admission: even the *peak fused stage's* footprint × co-located workers exceeds node RAM |
//! | WS015 | warning  | redundant operator: an identically-annotated idempotent operator repeats on one path with nothing between touching its fields |
//!
//! (*WS002 is a warning without an admission context: a plan may run
//! locally where the simulated class loader never materializes.
//! †WS012 escalates to an error for a reduce that does not feed a sink
//! directly: the live session's incremental compiler rejects such plans
//! outright.)
//!
//! WS013–WS015 ride on the field-flow interpretation in
//! [`crate::fieldflow`]. WS014 refines WS007: WS007 mirrors
//! [`crate::cluster::admit`]'s conservative whole-plan sum, while WS014
//! segments the plan into canonical fused stages and checks the heaviest
//! stage alone — a plan it flags cannot be scheduled even one stage at a
//! time, so fusion/combining cannot save it. It deliberately sums only
//! static operator footprints (`cost.memory_bytes`): stage membership is
//! invariant under the optimizer's within-stage reorderings, so the
//! verdict is too, whereas byte-envelope terms would not commute.
//!
//! A node the unreachable check (WS006) flags is reported *only* as
//! WS006: downstream codes on the same node (a use-before-def inside a
//! dead branch, say) are suppressed — the actionable fix is reconnecting
//! or deleting the branch, not repairing code that never runs.
//!
//! Messages deliberately never mention node ids — the optimizer's
//! reorderings move operators between nodes, and the verdict-invariance
//! proptest in `tests/analyze.rs` holds analyzer *error* verdicts constant
//! across optimization.

use crate::cluster::ClusterSpec;
use crate::logical::{parse_store_sink, LogicalPlan, NodeId, NodeOp, STORE_SINK_PREFIX};
use crate::meteor::{self, MeteorError, ScriptInfo};
use crate::optimizer::REMOVED_IDENTITY;
use crate::packages::OperatorRegistry;
use std::collections::{BTreeMap, BTreeSet};
use websift_analyze::{sort_diagnostics, Diagnostic};

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Fields assumed present on every source record (the corpus reader's
    /// schema); reads of these are never use-before-def.
    pub source_fields: BTreeSet<String>,
    /// When set, run the admission pre-flight (WS002 escalates to error,
    /// WS007/WS008 fire) against this cluster at this DoP.
    pub admission: Option<(ClusterSpec, usize)>,
    /// When set, the admission pre-flight models sharded execution: each
    /// node hosts `ceil(shards / nodes)` worker *processes*, each with a
    /// full per-worker memory footprint, instead of DoP threads sharing
    /// one footprint (see [`crate::cluster::admit_sharded`]).
    pub shards: Option<usize>,
    /// When set, WS011 fires for `store:` sinks naming a store outside
    /// this set. `None` (the default) only checks that store-sink names
    /// parse, since most callers execute plans without any store bound.
    pub known_stores: Option<BTreeSet<String>>,
    /// When set, the plan is destined for incremental (live) execution:
    /// WS012 fires for reduces that cannot fold round-by-round.
    pub live: bool,
    /// `(records, avg_bytes_per_record)` expected from each source. Seeds
    /// the field-flow cost envelopes with absolute numbers; without it
    /// envelopes are relative to one nominal source record.
    pub source_estimate: Option<(u64, u64)>,
    /// Per-operator `(records_ratio, bytes_ratio)` measured on a previous
    /// run (output/input from the profiler's per-operator metrics). A
    /// calibrated operator's envelope uses the measured point ratios
    /// instead of its declared/per-kind selectivity interval.
    pub calibration: BTreeMap<String, (f64, f64)>,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            source_fields: ["id", "corpus", "text", "url"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            admission: None,
            shards: None,
            known_stores: None,
            live: false,
            source_estimate: None,
            calibration: BTreeMap::new(),
        }
    }
}

impl AnalyzeOptions {
    /// Enables the admission pre-flight against `cluster` at `dop`.
    pub fn with_admission(mut self, cluster: ClusterSpec, dop: usize) -> AnalyzeOptions {
        self.admission = Some((cluster, dop));
        self
    }

    /// Makes the admission pre-flight model `shards` worker processes
    /// per plan instead of one multi-threaded process.
    pub fn with_shards(mut self, shards: usize) -> AnalyzeOptions {
        self.shards = Some(shards);
        self
    }

    /// Enables the WS011 unknown-store check against this set of
    /// reachable store names.
    pub fn with_known_stores<S: Into<String>>(
        mut self,
        stores: impl IntoIterator<Item = S>,
    ) -> AnalyzeOptions {
        self.known_stores = Some(stores.into_iter().map(Into::into).collect());
        self
    }

    /// Marks the plan as destined for incremental (live) execution,
    /// enabling the WS012 per-round-recompute check.
    pub fn with_live_mode(mut self) -> AnalyzeOptions {
        self.live = true;
        self
    }

    /// Seeds the cost envelopes with `records` source records averaging
    /// `avg_bytes` each.
    pub fn with_source_estimate(mut self, records: u64, avg_bytes: u64) -> AnalyzeOptions {
        self.source_estimate = Some((records, avg_bytes));
        self
    }

    /// Records a measured `(records_ratio, bytes_ratio)` for the named
    /// operator, overriding its declared/per-kind selectivity.
    pub fn with_calibration(
        mut self,
        op_name: &str,
        records_ratio: f64,
        bytes_ratio: f64,
    ) -> AnalyzeOptions {
        self.calibration.insert(op_name.to_string(), (records_ratio, bytes_ratio));
        self
    }
}

/// Runs all plan-level checks, returning diagnostics in canonical order.
pub fn analyze_plan(plan: &LogicalPlan, opts: &AnalyzeOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let contributing = contributing_nodes(plan);

    check_field_availability(plan, opts, &mut diags);
    check_library_conflicts(plan, opts, &mut diags);
    check_dead_writes(plan, &mut diags);
    check_duplicate_sinks(plan, &mut diags);
    check_unreachable(plan, &contributing, &mut diags);
    check_admission(plan, opts, &mut diags);
    check_combinability(plan, &mut diags);
    check_store_sinks(plan, opts, &mut diags);
    check_live_recompute(plan, opts, &contributing, &mut diags);
    check_type_conflicts(plan, opts, &contributing, &mut diags);
    check_fused_admission(plan, opts, &mut diags);
    check_redundant_ops(plan, &contributing, &mut diags);

    // A node already reported unreachable gets no further codes: every
    // other finding on it describes code that will never run.
    let dead: BTreeSet<usize> = diags
        .iter()
        .filter(|d| d.code == "WS006")
        .filter_map(|d| d.node)
        .collect();
    diags.retain(|d| d.code == "WS006" || d.node.is_none_or(|n| !dead.contains(&n)));

    sort_diagnostics(&mut diags);
    diags
}

/// Compiles `script` and analyzes the resulting plan, mapping node
/// diagnostics back to 1-based script lines and appending WS005 for
/// variables the script assigns but never uses.
pub fn analyze_script(
    script: &str,
    registry: &OperatorRegistry,
    opts: &AnalyzeOptions,
) -> Result<Vec<Diagnostic>, MeteorError> {
    let ScriptInfo { plan, node_lines, unused_vars } = meteor::compile_traced(script, registry)?;
    let mut diags = analyze_plan(&plan, opts);
    for d in &mut diags {
        if let Some(node) = d.node {
            if let Some(&line) = node_lines.get(node) {
                if line > 0 {
                    d.line = Some(line);
                }
            }
        }
    }
    for (name, line) in unused_vars {
        diags.push(
            Diagnostic::warning("WS005", format!("variable ${name} is assigned but never used"))
                .with_line(line),
        );
    }
    sort_diagnostics(&mut diags);
    Ok(diags)
}

/// Nodes on a path from a source to a sink (everything that affects some
/// output).
fn contributing_nodes(plan: &LogicalPlan) -> BTreeSet<NodeId> {
    let mut live = BTreeSet::new();
    // Parents have smaller ids, so one reverse sweep from the sinks
    // closes the ancestor set.
    for node in plan.nodes().iter().rev() {
        if matches!(node.op, NodeOp::Sink(_)) || live.contains(&node.id) {
            live.insert(node.id);
            if let Some(parent) = node.input {
                live.insert(parent);
            }
        }
    }
    live
}

/// WS001 / WS009: every operator's `reads` set must be available at its
/// node — produced upstream or present on source records.
fn check_field_availability(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    // Field availability at each node = parent availability ∪ parent
    // writes; sources start from the source schema.
    let mut avail: Vec<BTreeSet<String>> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let set = match node.input {
            None => opts.source_fields.clone(),
            Some(parent) => {
                let mut set = avail[parent].clone();
                if let NodeOp::Op(op) = &plan.nodes()[parent].op {
                    set.extend(op.writes.iter().cloned());
                    // conditionally-written fields still count as defined:
                    // use-before-def is about ordering, not coverage
                    set.extend(op.maybe_writes.iter().cloned());
                }
                set
            }
        };
        avail.push(set);
    }

    // All producers in the plan, for the nearest-producer suggestion:
    // field -> first (smallest-id) operator writing it.
    let mut producers: BTreeMap<&str, &str> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Op(op) = &node.op {
            for field in op.writes.iter().chain(&op.maybe_writes) {
                producers.entry(field.as_str()).or_insert(op.name.as_str());
            }
        }
    }

    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        for field in &op.reads {
            if avail[node.id].contains(field) {
                continue;
            }
            match producers.get(field.as_str()) {
                Some(producer) => out.push(
                    Diagnostic::error(
                        "WS001",
                        format!(
                            "operator '{}' reads field '{field}' before it is defined; \
                             '{producer}' produces it — move that operator upstream",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                ),
                None => out.push(
                    Diagnostic::warning(
                        "WS009",
                        format!(
                            "operator '{}' reads field '{field}' which nothing in the plan \
                             produces and the source schema does not declare",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                ),
            }
        }
    }
}

/// WS002: two operators demanding different major versions of the same
/// library (the OpenNLP war story). Error when an admission context is
/// present (the simulated class loader will refuse the flow); warning
/// otherwise.
fn check_library_conflicts(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let mut libs: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
    let mut users: BTreeMap<(&str, u32), &str> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Op(op) = &node.op {
            if let Some((name, version)) = &op.library {
                libs.entry(name.as_str()).or_default().insert(*version);
                users.entry((name.as_str(), *version)).or_insert(op.name.as_str());
            }
        }
    }
    for (lib, versions) in libs {
        if versions.len() < 2 {
            continue;
        }
        let listed: Vec<String> = versions
            .iter()
            .map(|v| format!("{v} ('{}')", users[&(lib, *v)]))
            .collect();
        let message = format!(
            "conflicting major versions of library '{lib}' in one flow: {}; \
             a single class loader cannot host both — split the flow or align versions",
            listed.join(" vs ")
        );
        out.push(if opts.admission.is_some() {
            Diagnostic::error("WS002", message)
        } else {
            Diagnostic::warning("WS002", message)
        });
    }
}

/// WS003: a written field that no path reads before it is overwritten or
/// the branch ends without reaching any consumer. Sinks count as readers
/// of everything (they serialize whole records).
fn check_dead_writes(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.name == REMOVED_IDENTITY {
            continue;
        }
        for field in &op.writes {
            if !write_is_live(plan, node.id, field) {
                out.push(
                    Diagnostic::warning(
                        "WS003",
                        format!(
                            "operator '{}' writes field '{field}' but no downstream operator \
                             or sink observes that value",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                );
            }
        }
    }
}

/// Is the value `writer` leaves in `field` observed on any downstream
/// path before being overwritten?
fn write_is_live(plan: &LogicalPlan, writer: NodeId, field: &str) -> bool {
    let mut stack = plan.children(writer);
    while let Some(id) = stack.pop() {
        match &plan.nodes()[id].op {
            NodeOp::Sink(_) => return true,
            NodeOp::Op(op) => {
                if op.reads.iter().any(|f| f == field) {
                    return true;
                }
                if op.writes.iter().any(|f| f == field) {
                    continue; // overwritten on this path before any read
                }
                stack.extend(plan.children(id));
            }
            NodeOp::Source(_) => {}
        }
    }
    false
}

/// WS004: duplicate sink names — `LogicalPlan::sink` rejects these at
/// build time, but hand-mutated plans can still carry them.
fn check_duplicate_sinks(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Sink(name) = &node.op {
            if seen.insert(name.as_str(), node.id).is_some() {
                out.push(
                    Diagnostic::error(
                        "WS004",
                        format!("duplicate sink name '{name}': outputs would clobber each other"),
                    )
                    .with_node(node.id),
                );
            }
        }
    }
}

/// WS006: nodes that contribute to no sink. Identity nodes orphaned by
/// the optimizer are expected and skipped.
fn check_unreachable(
    plan: &LogicalPlan,
    contributing: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    for node in plan.nodes() {
        if contributing.contains(&node.id) {
            continue;
        }
        let label = match &node.op {
            NodeOp::Op(op) if op.name == REMOVED_IDENTITY => continue,
            NodeOp::Op(op) => format!("operator '{}'", op.name),
            NodeOp::Source(name) => format!("source '{name}'"),
            NodeOp::Sink(name) => format!("sink '{name}'"),
        };
        out.push(
            Diagnostic::warning("WS006", format!("{label} does not contribute to any sink"))
                .with_node(node.id),
        );
    }
}

/// WS007 / WS008: the admission pre-flight, mirroring
/// [`crate::cluster::admit`]'s arithmetic exactly so a plan flagged here
/// is precisely a plan the scheduler would reject.
fn check_admission(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let Some((cluster, dop)) = &opts.admission else { return };
    let dop = *dop;

    let cores = cluster.total_cores();
    if dop > cores {
        out.push(Diagnostic::error(
            "WS008",
            format!("requested DoP {dop} exceeds the cluster's {cores} total cores"),
        ));
    }

    let memory_per_worker: u64 = plan.operators().map(|op| op.cost.memory_bytes).sum();
    let workers_per_node = workers_per_node(dop, opts.shards, cluster);
    let node_ram = cluster.nodes.iter().map(|n| n.ram_bytes).min().unwrap_or(0);
    if memory_per_worker.saturating_mul(workers_per_node as u64) > node_ram {
        let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
        let unit = if opts.shards.is_some() { "shards" } else { "workers" };
        out.push(Diagnostic::error(
            "WS007",
            format!(
                "flow needs {:.1} GB per worker x {workers_per_node} {unit}/node but nodes \
                 have {:.1} GB; reduce operator footprints, lower DoP, or split the flow",
                gb(memory_per_worker),
                gb(node_ram)
            ),
        ));
    }
}

/// Mirrors [`crate::cluster::admit_sharded`]'s placement arithmetic: with
/// shards, each node hosts `ceil(shards / nodes)` full worker processes;
/// without, DoP threads spread across nodes.
fn workers_per_node(dop: usize, shards: Option<usize>, cluster: &ClusterSpec) -> usize {
    match shards {
        Some(s) => s.max(1).div_ceil(cluster.nodes.len()).max(1),
        None => dop.div_ceil(cluster.nodes.len()).max(1),
    }
}

/// WS010: a `Reduce` whose aggregate is a `Custom` closure. The executor
/// cannot pre-aggregate inside fused stages for these — opaque closures
/// have no combine step — so the full group ships to the final reduce.
/// Silent, correct, and often unintended when a typed
/// [`crate::operator::Aggregate`] would express the same computation, or
/// when the closure is associative and could declare an explicit merge
/// contract via [`crate::operator::Operator::reduce_custom_combinable`].
fn check_combinability(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.kind == crate::operator::Kind::Reduce && !op.combinable_reduce() {
            out.push(
                Diagnostic::info(
                    "WS010",
                    format!(
                        "reduce '{}' uses a custom aggregate closure, which disables partial \
                         aggregation (every group ships uncombined); use a typed Aggregate \
                         (Count/Sum/Min/Max/Concat/TopK), or opt in with an explicit \
                         seed/fold/merge contract via reduce_custom_combinable, to enable \
                         combining",
                        op.name
                    ),
                )
                .with_node(node.id),
            );
        }
    }
}

/// WS011: every `store:` sink must parse as `store:<store>/<dataset>`,
/// and — when the caller declares which stores the run can reach — must
/// name one of them. Records routed to a store the executor cannot
/// deliver to fail the whole run, so this is an error, caught pre-flight.
fn check_store_sinks(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Sink(name) = &node.op else { continue };
        if !name.starts_with(STORE_SINK_PREFIX) {
            continue;
        }
        match parse_store_sink(name) {
            None => out.push(
                Diagnostic::error(
                    "WS011",
                    format!(
                        "sink '{name}' does not parse as 'store:<store>/<dataset>'; records \
                         routed to a store need both a store and a dataset name"
                    ),
                )
                .with_node(node.id),
            ),
            Some((store, _)) => {
                if let Some(known) = &opts.known_stores {
                    if !known.contains(store) {
                        let known_list =
                            known.iter().cloned().collect::<Vec<_>>().join(", ");
                        out.push(
                            Diagnostic::error(
                                "WS011",
                                format!(
                                    "sink '{name}' targets unknown store '{store}' (reachable \
                                     stores: {known_list})"
                                ),
                            )
                            .with_node(node.id),
                        );
                    }
                }
            }
        }
    }
}

/// WS012: in live (incremental) mode a `Custom` reduce has no retainable
/// per-key state — an opaque closure cannot be folded round-by-round —
/// so the session must either reject the plan or recompute the reduce
/// over the *cumulative* stream every round, forfeiting the entire
/// incremental saving for that branch. Warning, not error: the live
/// session accepts it behind an explicit opt-in.
///
/// Tightened: a reduce (typed or custom) that does not feed exactly one
/// sink directly gets an *error*-severity WS012 instead — the incremental
/// compiler rejects such plans unconditionally (`ReduceNotTerminal`), so
/// a warning would understate it. The terminality test mirrors that
/// compiler's rule verbatim: one child, and it is a sink. Only reduces
/// that contribute to some sink are considered; a reduce on a dead branch
/// is WS006's finding, not this check's.
fn check_live_recompute(
    plan: &LogicalPlan,
    opts: &AnalyzeOptions,
    contributing: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    if !opts.live {
        return;
    }
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.kind != crate::operator::Kind::Reduce || !contributing.contains(&node.id) {
            continue;
        }
        let children = plan.children(node.id);
        let terminal =
            children.len() == 1 && matches!(plan.nodes()[children[0]].op, NodeOp::Sink(_));
        if !terminal {
            out.push(
                Diagnostic::error(
                    "WS012",
                    format!(
                        "reduce '{}' feeds further operators instead of a sink; the live \
                         session folds reduces as terminal per-round state and will reject \
                         this plan — move post-aggregation work out of the live flow",
                        op.name
                    ),
                )
                .with_node(node.id),
            );
        } else if !op.combinable_reduce() {
            out.push(
                Diagnostic::warning(
                    "WS012",
                    format!(
                        "reduce '{}' uses a custom aggregate closure, which cannot fold \
                         incrementally: each live round must recompute it over the cumulative \
                         record stream instead of the round's delta; use a typed Aggregate \
                         (Count/Sum/Min/Max/Concat/TopK), or an explicit merge contract via \
                         reduce_custom_combinable, to retain per-key state across rounds",
                        op.name
                    ),
                )
                .with_node(node.id),
            );
        }
    }
}

/// WS013: an operator declares it reads a field under one type while the
/// field's producer (per the field-flow schema) declared another. The
/// runtime record model would surface this as a confusing per-record
/// failure deep into execution; statically it is a one-line contract
/// violation.
///
/// `Unknown` on either side never conflicts (undeclared types are opaque,
/// not wrong), and a field the schema does not carry at all is WS001 /
/// WS009 territory, not a *type* conflict.
fn check_type_conflicts(
    plan: &LogicalPlan,
    opts: &AnalyzeOptions,
    contributing: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    use websift_analyze::lattice::FieldType;
    let flow = crate::fieldflow::field_flow(plan, opts);
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.read_types.is_empty() || !contributing.contains(&node.id) {
            continue;
        }
        let Some(input) = flow.input(plan, node.id) else { continue };
        for (field, want) in &op.read_types {
            let Some(fact) = input.schema.get(field) else { continue };
            if *want == FieldType::Unknown || fact.ty == FieldType::Unknown || fact.ty == *want {
                continue;
            }
            let found = fact.ty.as_str();
            let source = match &fact.producer {
                Some(producer) => format!("'{producer}' writes it as {found}"),
                None => format!("the source schema declares it as {found}"),
            };
            out.push(
                Diagnostic::error(
                    "WS013",
                    format!(
                        "operator '{}' reads field '{field}' as {} but {source}; align the \
                         declared types or drop the stricter annotation",
                        op.name,
                        want.as_str()
                    ),
                )
                .with_node(node.id),
            );
        }
    }
}

/// WS014: the fusion-aware admission refinement. Segments the plan into
/// canonical fused stages ([`crate::fieldflow::canonical_stages`]) and
/// checks the *heaviest single stage* against the same
/// per-node arithmetic as WS007 / [`crate::cluster::admit`]. A plan
/// flagged here cannot be scheduled even stage-at-a-time: fusion and
/// combining, the executor's two footprint-shrinking tools, have already
/// been assumed. (WS007 alone means the conservative whole-plan bound
/// failed; WS007 *without* WS014 means a stage-level schedule still
/// fits.)
fn check_fused_admission(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let Some((cluster, dop)) = &opts.admission else { return };
    let stage_mem = |members: &[NodeId]| -> u64 {
        members
            .iter()
            .filter_map(|&id| match &plan.nodes()[id].op {
                NodeOp::Op(op) => Some(op.cost.memory_bytes),
                _ => None,
            })
            .sum()
    };
    let peak = crate::fieldflow::canonical_stages(plan)
        .iter()
        .map(|s| stage_mem(&s.members))
        .max()
        .unwrap_or(0);
    let workers_per_node = workers_per_node(*dop, opts.shards, cluster);
    let node_ram = cluster.nodes.iter().map(|n| n.ram_bytes).min().unwrap_or(0);
    if peak.saturating_mul(workers_per_node as u64) > node_ram {
        let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
        let unit = if opts.shards.is_some() { "shards" } else { "workers" };
        out.push(Diagnostic::error(
            "WS014",
            format!(
                "even with operator fusion and combining, the heaviest fused stage needs \
                 {:.1} GB per worker x {workers_per_node} {unit}/node but nodes have {:.1} GB; \
                 no stage-level schedule fits — reduce operator footprints, lower DoP, or \
                 split the flow",
                gb(peak),
                gb(node_ram)
            ),
        ));
    }
}

/// WS015: the same operator applied twice in a row, effectively. Two
/// operator nodes on one source-to-sink path with identical annotations
/// (name, kind, package, library, reads/writes/maybe-writes) where no
/// node between them — and neither occurrence itself — changes any field
/// the operator touches are redundant: a `Filter` re-tests a predicate
/// already true, and a `Map` whose writes are pure functions of unchanged
/// reads recomputes the values it already wrote.
///
/// `FlatMap`s are excluded (applying one twice multiplies records),
/// `Reduce`s restructure records entirely, self-reading writers
/// (`writes ∩ reads ≠ ∅`) are not idempotent, and unannotated operators
/// are opaque. An intervening `Reduce` ends the search: its regrouping
/// changes what the second application sees.
fn check_redundant_ops(
    plan: &LogicalPlan,
    contributing: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    use crate::operator::{Kind, Operator};
    fn touched(op: &Operator) -> BTreeSet<&str> {
        op.reads
            .iter()
            .chain(&op.writes)
            .chain(&op.maybe_writes)
            .map(String::as_str)
            .collect()
    }
    let same_sig = |a: &Operator, b: &Operator| {
        a.name == b.name
            && a.kind == b.kind
            && a.package == b.package
            && a.library == b.library
            && a.reads == b.reads
            && a.writes == b.writes
            && a.maybe_writes == b.maybe_writes
    };
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if !contributing.contains(&node.id)
            || !matches!(op.kind, Kind::Map | Kind::Filter)
            || (op.reads.is_empty() && op.writes.is_empty() && op.maybe_writes.is_empty())
            || op.writes.iter().chain(&op.maybe_writes).any(|w| op.reads.contains(w))
        {
            continue;
        }
        let fields = touched(op);
        let mut cur = node.input;
        while let Some(id) = cur {
            let NodeOp::Op(anc) = &plan.nodes()[id].op else { break };
            if same_sig(anc, op) {
                out.push(
                    Diagnostic::warning(
                        "WS015",
                        format!(
                            "operator '{}' appears twice on the same path with identical \
                             annotations and nothing between them changes the fields it \
                             touches; the second application is redundant",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                );
                break;
            }
            if anc.kind == Kind::Reduce
                || anc.writes.iter().chain(&anc.maybe_writes).any(|w| fields.contains(w.as_str()))
            {
                break;
            }
            cur = plan.nodes()[id].input;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Aggregate, CostModel, Operator, Package};
    use crate::record::Record;
    use websift_analyze::{has_errors, Severity};

    fn op(name: &str, reads: &[&str], writes: &[&str]) -> Operator {
        Operator::map(name, Package::Ie, |r| r)
            .with_reads(reads)
            .with_writes(writes)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_plan_has_no_diagnostics() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let s = plan.add(src, op("sentences", &["text"], &["sentences"])).unwrap();
        let n = plan.add(s, op("negation", &["text", "sentences"], &["negation"])).unwrap();
        plan.sink(n, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn use_before_def_names_the_producer() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let n = plan.add(src, op("negation", &["text", "sentences"], &["negation"])).unwrap();
        let s = plan.add(n, op("sentences", &["text"], &["sentences"])).unwrap();
        plan.sink(s, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        // both writes reach the sink (which observes everything), so no WS003
        assert_eq!(codes(&diags), vec!["WS001"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].node, Some(1));
        assert!(diags[0].message.contains("'sentences' produces it"), "{}", diags[0].message);
    }

    #[test]
    fn unknown_field_is_a_warning_not_error() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let g = plan.add(src, op("ghost", &["no_such_field"], &[])).unwrap();
        plan.sink(g, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS009"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn library_conflict_severity_depends_on_admission_context() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan
            .add(src, op("tokens", &["text"], &["tokens"]).with_library("opennlp", 15))
            .unwrap();
        let b = plan
            .add(a, op("disease", &["text"], &["entities"]).with_library("opennlp", 14))
            .unwrap();
        plan.sink(b, "out").unwrap();

        let local = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&local), vec!["WS002"]);
        assert!(!has_errors(&local));

        let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
        let clustered = analyze_plan(&plan, &opts);
        assert_eq!(codes(&clustered), vec!["WS002"]);
        assert!(has_errors(&clustered));
        assert!(clustered[0].message.contains("14 ('disease') vs 15 ('tokens')"));
    }

    #[test]
    fn dead_write_detected_across_overwrite() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        // `a` writes x, `b` overwrites x without reading it, sink sees b's x
        let a = plan.add(src, op("a", &["text"], &["x"])).unwrap();
        let b = plan.add(a, op("b", &["text"], &["x"])).unwrap();
        plan.sink(b, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS003"]);
        assert_eq!(diags[0].node, Some(1));
    }

    #[test]
    fn branch_reads_keep_writes_live() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, op("a", &["text"], &["x"])).unwrap();
        // one branch overwrites x, the other reads it
        let over = plan.add(a, op("over", &["text"], &["x"])).unwrap();
        let read = plan.add(a, op("read", &["x"], &["y"])).unwrap();
        plan.sink(over, "o1").unwrap();
        plan.sink(read, "o2").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_and_duplicate_sinks_flagged() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, op("a", &["text"], &[])).unwrap();
        plan.add(src, op("orphan", &["text"], &[])).unwrap();
        plan.sink(a, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS006"]);
        assert!(diags[0].message.contains("'orphan'"));
    }

    #[test]
    fn admission_preflight_matches_admit() {
        use crate::cluster::admit;
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let mut prev = src;
        for (i, gb) in [20u64, 20, 20].iter().enumerate() {
            prev = plan
                .add(
                    prev,
                    op(&format!("fat{i}"), &["text"], &[]).with_cost(CostModel {
                        memory_bytes: gb << 30,
                        ..CostModel::default()
                    }),
                )
                .unwrap();
        }
        plan.sink(prev, "out").unwrap();

        let cluster = ClusterSpec::paper_cluster();
        let opts = AnalyzeOptions::default().with_admission(cluster.clone(), 28);
        let diags = analyze_plan(&plan, &opts);
        // the three maps fuse into one 60 GB stage, so the fused-stage
        // refinement (WS014) agrees with the whole-plan bound (WS007)
        assert_eq!(codes(&diags), vec!["WS007", "WS014"]);
        // the analyzer and the runtime admission agree on the arithmetic
        let err = admit(&plan, 28, &cluster).unwrap_err();
        assert!(err.to_string().contains("60.0 GB"), "{err}");
        assert!(diags[0].message.contains("60.0 GB per worker"));
        assert!(diags[0].message.contains("24.0 GB"));
        assert!(diags[1].message.contains("60.0 GB per worker"));

        let opts = AnalyzeOptions::default().with_admission(cluster, 500);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS007", "WS008", "WS014"]);
    }

    #[test]
    fn script_diagnostics_map_to_lines() {
        let mut reg = OperatorRegistry::new();
        reg.register("ie.sentences", || op("sentences", &["text"], &["sentences"]));
        reg.register("ie.negation", || op("negation", &["text", "sentences"], &["negation"]));
        let script = "\
$pages = read 'crawl';
$neg = apply ie.negation $pages;
$sents = apply ie.sentences $neg;
write $neg 'negation';
write $sents 'sentences';";
        let diags = analyze_script(script, &reg, &AnalyzeOptions::default()).unwrap();
        assert_eq!(codes(&diags), vec!["WS001"]);
        assert_eq!(diags[0].line, Some(2));
        assert_eq!(diags[0].node, Some(1));
    }

    #[test]
    fn script_unused_vars_become_ws005() {
        let mut reg = OperatorRegistry::new();
        reg.register("ie.sentences", || op("sentences", &["text"], &["sentences"]));
        let script = "\
$pages = read 'crawl';
$dead = apply ie.sentences $pages;
write $pages 'out';";
        let diags = analyze_script(script, &reg, &AnalyzeOptions::default()).unwrap();
        // $dead's node contributes to no sink, so only WS006 reports it
        // (the dead write on the same node is suppressed — fixing a write
        // inside an unreachable branch is not the actionable repair) plus
        // the script-level WS005 for the unused variable, both on line 2
        assert_eq!(codes(&diags), vec!["WS006", "WS005"]);
        assert!(diags.iter().all(|d| d.line == Some(2)), "{diags:?}");
        assert!(diags[1].message.contains("$dead"));
    }

    #[test]
    fn custom_aggregate_reduce_is_flagged_ws010() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce("tally", Package::Base, |r| format!("{:?}", r.get("corpus")), |k, rs| {
                    let mut out = Record::new();
                    out.set("key", k).set("count", rs.len());
                    vec![out]
                }),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS010"]);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].node, Some(1));
        assert!(!has_errors(&diags));
        assert!(diags[0].message.contains("custom aggregate"), "{}", diags[0].message);

        // the same reduction through a typed aggregate is clean
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn live_mode_escalates_custom_aggregates_to_ws012() {
        let custom_reduce = || {
            Operator::reduce("tally", Package::Base, |r| format!("{:?}", r.get("corpus")), |k, rs| {
                let mut out = Record::new();
                out.set("key", k).set("count", rs.len());
                vec![out]
            })
        };
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan.add(src, custom_reduce()).unwrap();
        plan.sink(r, "out").unwrap();

        // default mode: only the WS010 info
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS010"]);

        // live mode: WS012 joins as a warning on the same node
        let diags = analyze_plan(&plan, &AnalyzeOptions::default().with_live_mode());
        assert_eq!(codes(&diags), vec!["WS010", "WS012"]);
        assert_eq!(diags[1].severity, Severity::Warning);
        assert_eq!(diags[1].node, Some(1));
        assert!(!has_errors(&diags));
        assert!(diags[1].message.contains("cumulative"), "{}", diags[1].message);

        // a typed aggregate stays clean even in live mode
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default().with_live_mode()).is_empty());
    }

    #[test]
    fn live_mode_rejects_non_terminal_reduces() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        let post = plan.add(r, op("post", &[], &[])).unwrap();
        plan.sink(post, "out").unwrap();

        // batch mode: a typed reduce feeding a map is fine
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());

        // live mode: the incremental compiler will reject it, so the
        // pre-flight reports an error even though the aggregate is typed
        let diags = analyze_plan(&plan, &AnalyzeOptions::default().with_live_mode());
        assert_eq!(codes(&diags), vec!["WS012"]);
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("feeds further operators"), "{}", diags[0].message);
    }

    #[test]
    fn type_conflict_flagged_ws013() {
        use websift_analyze::lattice::FieldType;
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let w = plan
            .add(
                src,
                op("sentences", &["text"], &["sentences"])
                    .with_write_types(&[("sentences", FieldType::Array)]),
            )
            .unwrap();
        let r = plan
            .add(
                w,
                op("shout", &[], &["loud"]).with_read_types(&[("sentences", FieldType::Str)]),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS013"]);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].node, Some(2));
        assert!(
            diags[0].message.contains("'sentences' writes it as array"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn type_conflict_against_source_schema_and_unknown_tolerance() {
        use websift_analyze::lattice::FieldType;
        // reading a source field under the wrong type names the schema
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(src, op("idreader", &[], &[]).with_read_types(&[("id", FieldType::Str)]))
            .unwrap();
        plan.sink(r, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS013"]);
        assert!(
            diags[0].message.contains("the source schema declares it as int"),
            "{}",
            diags[0].message
        );

        // an untyped write never conflicts with a typed read
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let w = plan.add(src, op("writer", &["text"], &["x"])).unwrap();
        let r = plan
            .add(w, op("reader", &[], &[]).with_read_types(&[("x", FieldType::Int)]))
            .unwrap();
        plan.sink(r, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn fused_stage_refinement_passes_what_ws007_rejects() {
        // two 20 GB maps split across a custom reduce: the whole-plan sum
        // (40 GB) fails the conservative WS007 bound, but no single fused
        // stage exceeds 20 GB, so the stage-level WS014 refinement knows a
        // stage-at-a-time schedule still fits — no WS014
        let fat = |name: &str| {
            op(name, &["text"], &[]).with_cost(CostModel {
                memory_bytes: 20 << 30,
                ..CostModel::default()
            })
        };
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, fat("fat-a")).unwrap();
        let red = plan
            .add(a, Operator::reduce("split", Package::Base, |_| String::new(), |_, rs| rs))
            .unwrap();
        let b = plan.add(red, fat("fat-b")).unwrap();
        plan.sink(b, "out").unwrap();
        let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS010", "WS007"]);
        assert!(!codes(&diags).contains(&"WS014"));
    }

    #[test]
    fn redundant_duplicate_flagged_ws015() {
        let dup = || op("keep-english", &["text"], &[]);
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, dup()).unwrap();
        let mid = plan.add(a, op("sentences", &["text2"], &["sentences"])).unwrap();
        let b = plan.add(mid, dup()).unwrap();
        plan.sink(b, "out").unwrap();
        // 'sentences' reads text2 (absent everywhere) -> WS009 rides along
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert!(codes(&diags).contains(&"WS015"), "{diags:?}");
        let ws015 = diags.iter().find(|d| d.code == "WS015").unwrap();
        assert_eq!(ws015.severity, Severity::Warning);
        assert_eq!(ws015.node, Some(3));
        assert!(ws015.message.contains("'keep-english'"), "{}", ws015.message);
    }

    #[test]
    fn intervening_writer_clears_ws015() {
        let dup = || op("normalize", &["text"], &["clean"]);
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, dup()).unwrap();
        // rewrites 'text', which the duplicate reads: second run differs
        let t = plan.add(a, op("truncate", &["clean"], &["text"])).unwrap();
        let b = plan.add(t, dup()).unwrap();
        plan.sink(b, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert!(!codes(&diags).contains(&"WS015"), "{diags:?}");
    }

    #[test]
    fn self_reading_writers_are_not_redundant() {
        // writes ∩ reads ≠ ∅: applying it twice is not idempotent
        let dup = || op("accumulate", &["total"], &["total"]);
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, dup()).unwrap();
        let b = plan.add(a, dup()).unwrap();
        plan.sink(b, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert!(!codes(&diags).contains(&"WS015"), "{diags:?}");
    }

    #[test]
    fn unreachable_node_reports_only_ws006() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, op("a", &["text"], &[])).unwrap();
        // dead branch whose operator also reads an undefined field and
        // leaves a dead write: without suppression this node would carry
        // WS009 + WS003 + WS006 at once
        plan.add(src, op("ghost", &["missing"], &["junk"])).unwrap();
        plan.sink(a, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS006"]);
        assert_eq!(diags[0].node, Some(2));
    }

    #[test]
    fn maybe_writes_satisfy_availability() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let tagger = plan
            .add(src, op("tagger", &["text"], &[]).with_maybe_writes(&["negation"]))
            .unwrap();
        let reader = plan.add(tagger, op("reader", &["negation"], &["loud"])).unwrap();
        plan.sink(reader, "out").unwrap();
        // a conditionally-written field is defined (no WS001/WS009):
        // ordering is satisfied even though presence is only 'possible'
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn malformed_store_sink_is_flagged_ws011() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        // bypass store_sink() to build the malformed name directly
        plan.sink(src, "store:no-dataset").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS011"]);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].node, Some(1));
        assert!(diags[0].message.contains("store:<store>/<dataset>"), "{}", diags[0].message);
    }

    #[test]
    fn unknown_store_fires_only_with_declared_stores() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.store_sink(src, "serve", "entities").unwrap();

        // no declared stores: the name parses, so nothing fires
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());

        // the right store declared: clean
        let opts = AnalyzeOptions::default().with_known_stores(["serve"]);
        assert!(analyze_plan(&plan, &opts).is_empty());

        // a different store declared: WS011 error naming both sides
        let opts = AnalyzeOptions::default().with_known_stores(["archive"]);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS011"]);
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("unknown store 'serve'"), "{}", diags[0].message);
        assert!(diags[0].message.contains("archive"), "{}", diags[0].message);
    }
}
