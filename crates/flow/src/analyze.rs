//! Static plan verification.
//!
//! The paper's costliest failures — OpenNLP 1.4-vs-1.5 class-loader
//! conflicts, annotators applied before the annotations they read existed,
//! flows admitted that could never fit worker memory — were discovered at
//! runtime after hours of cluster time, yet every one is decidable from
//! the operators' semantic annotations alone. This pass runs between
//! `compile` and `optimize`/`execute` and turns them into pre-flight
//! diagnostics:
//!
//! | code  | severity | check |
//! |-------|----------|-------|
//! | WS001 | error    | use-before-def: a read field no upstream op writes, but some op in the plan produces |
//! | WS002 | error*   | library major-version conflict across the plan |
//! | WS003 | warning  | dead write: a written field no downstream op reads before overwrite/sink-less end |
//! | WS004 | error    | duplicate sink name |
//! | WS005 | warning  | unused `$var` in the source script |
//! | WS006 | warning  | unreachable node: contributes to no sink |
//! | WS007 | error    | memory admission: per-worker footprint × co-located workers exceeds node RAM |
//! | WS008 | error    | requested DoP exceeds cluster cores |
//! | WS009 | warning  | unknown field: read field nothing in the plan produces |
//! | WS010 | info     | custom aggregate: a `Custom` Reduce silently disables partial aggregation |
//! | WS011 | error    | store sink: malformed `store:` name, or a store the run cannot reach |
//! | WS012 | warning  | live mode: a `Custom` Reduce cannot fold incrementally — each round recomputes it from the cumulative stream |
//!
//! (*WS002 is a warning without an admission context: a plan may run
//! locally where the simulated class loader never materializes.)
//!
//! Messages deliberately never mention node ids — the optimizer's
//! reorderings move operators between nodes, and the verdict-invariance
//! proptest in `tests/analyze.rs` holds analyzer *error* verdicts constant
//! across optimization.

use crate::cluster::ClusterSpec;
use crate::logical::{parse_store_sink, LogicalPlan, NodeId, NodeOp, STORE_SINK_PREFIX};
use crate::meteor::{self, MeteorError, ScriptInfo};
use crate::optimizer::REMOVED_IDENTITY;
use crate::packages::OperatorRegistry;
use std::collections::{BTreeMap, BTreeSet};
use websift_analyze::{sort_diagnostics, Diagnostic};

/// Analyzer configuration.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Fields assumed present on every source record (the corpus reader's
    /// schema); reads of these are never use-before-def.
    pub source_fields: BTreeSet<String>,
    /// When set, run the admission pre-flight (WS002 escalates to error,
    /// WS007/WS008 fire) against this cluster at this DoP.
    pub admission: Option<(ClusterSpec, usize)>,
    /// When set, WS011 fires for `store:` sinks naming a store outside
    /// this set. `None` (the default) only checks that store-sink names
    /// parse, since most callers execute plans without any store bound.
    pub known_stores: Option<BTreeSet<String>>,
    /// When set, the plan is destined for incremental (live) execution:
    /// WS012 fires for reduces that cannot fold round-by-round.
    pub live: bool,
}

impl Default for AnalyzeOptions {
    fn default() -> AnalyzeOptions {
        AnalyzeOptions {
            source_fields: ["id", "corpus", "text", "url"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            admission: None,
            known_stores: None,
            live: false,
        }
    }
}

impl AnalyzeOptions {
    /// Enables the admission pre-flight against `cluster` at `dop`.
    pub fn with_admission(mut self, cluster: ClusterSpec, dop: usize) -> AnalyzeOptions {
        self.admission = Some((cluster, dop));
        self
    }

    /// Enables the WS011 unknown-store check against this set of
    /// reachable store names.
    pub fn with_known_stores<S: Into<String>>(
        mut self,
        stores: impl IntoIterator<Item = S>,
    ) -> AnalyzeOptions {
        self.known_stores = Some(stores.into_iter().map(Into::into).collect());
        self
    }

    /// Marks the plan as destined for incremental (live) execution,
    /// enabling the WS012 per-round-recompute check.
    pub fn with_live_mode(mut self) -> AnalyzeOptions {
        self.live = true;
        self
    }
}

/// Runs all plan-level checks, returning diagnostics in canonical order.
pub fn analyze_plan(plan: &LogicalPlan, opts: &AnalyzeOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let contributing = contributing_nodes(plan);

    check_field_availability(plan, opts, &mut diags);
    check_library_conflicts(plan, opts, &mut diags);
    check_dead_writes(plan, &mut diags);
    check_duplicate_sinks(plan, &mut diags);
    check_unreachable(plan, &contributing, &mut diags);
    check_admission(plan, opts, &mut diags);
    check_combinability(plan, &mut diags);
    check_store_sinks(plan, opts, &mut diags);
    check_live_recompute(plan, opts, &mut diags);

    sort_diagnostics(&mut diags);
    diags
}

/// Compiles `script` and analyzes the resulting plan, mapping node
/// diagnostics back to 1-based script lines and appending WS005 for
/// variables the script assigns but never uses.
pub fn analyze_script(
    script: &str,
    registry: &OperatorRegistry,
    opts: &AnalyzeOptions,
) -> Result<Vec<Diagnostic>, MeteorError> {
    let ScriptInfo { plan, node_lines, unused_vars } = meteor::compile_traced(script, registry)?;
    let mut diags = analyze_plan(&plan, opts);
    for d in &mut diags {
        if let Some(node) = d.node {
            if let Some(&line) = node_lines.get(node) {
                if line > 0 {
                    d.line = Some(line);
                }
            }
        }
    }
    for (name, line) in unused_vars {
        diags.push(
            Diagnostic::warning("WS005", format!("variable ${name} is assigned but never used"))
                .with_line(line),
        );
    }
    sort_diagnostics(&mut diags);
    Ok(diags)
}

/// Nodes on a path from a source to a sink (everything that affects some
/// output).
fn contributing_nodes(plan: &LogicalPlan) -> BTreeSet<NodeId> {
    let mut live = BTreeSet::new();
    // Parents have smaller ids, so one reverse sweep from the sinks
    // closes the ancestor set.
    for node in plan.nodes().iter().rev() {
        if matches!(node.op, NodeOp::Sink(_)) || live.contains(&node.id) {
            live.insert(node.id);
            if let Some(parent) = node.input {
                live.insert(parent);
            }
        }
    }
    live
}

/// WS001 / WS009: every operator's `reads` set must be available at its
/// node — produced upstream or present on source records.
fn check_field_availability(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    // Field availability at each node = parent availability ∪ parent
    // writes; sources start from the source schema.
    let mut avail: Vec<BTreeSet<String>> = Vec::with_capacity(plan.len());
    for node in plan.nodes() {
        let set = match node.input {
            None => opts.source_fields.clone(),
            Some(parent) => {
                let mut set = avail[parent].clone();
                if let NodeOp::Op(op) = &plan.nodes()[parent].op {
                    set.extend(op.writes.iter().cloned());
                }
                set
            }
        };
        avail.push(set);
    }

    // All producers in the plan, for the nearest-producer suggestion:
    // field -> first (smallest-id) operator writing it.
    let mut producers: BTreeMap<&str, &str> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Op(op) = &node.op {
            for field in &op.writes {
                producers.entry(field.as_str()).or_insert(op.name.as_str());
            }
        }
    }

    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        for field in &op.reads {
            if avail[node.id].contains(field) {
                continue;
            }
            match producers.get(field.as_str()) {
                Some(producer) => out.push(
                    Diagnostic::error(
                        "WS001",
                        format!(
                            "operator '{}' reads field '{field}' before it is defined; \
                             '{producer}' produces it — move that operator upstream",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                ),
                None => out.push(
                    Diagnostic::warning(
                        "WS009",
                        format!(
                            "operator '{}' reads field '{field}' which nothing in the plan \
                             produces and the source schema does not declare",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                ),
            }
        }
    }
}

/// WS002: two operators demanding different major versions of the same
/// library (the OpenNLP war story). Error when an admission context is
/// present (the simulated class loader will refuse the flow); warning
/// otherwise.
fn check_library_conflicts(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let mut libs: BTreeMap<&str, BTreeSet<u32>> = BTreeMap::new();
    let mut users: BTreeMap<(&str, u32), &str> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Op(op) = &node.op {
            if let Some((name, version)) = &op.library {
                libs.entry(name.as_str()).or_default().insert(*version);
                users.entry((name.as_str(), *version)).or_insert(op.name.as_str());
            }
        }
    }
    for (lib, versions) in libs {
        if versions.len() < 2 {
            continue;
        }
        let listed: Vec<String> = versions
            .iter()
            .map(|v| format!("{v} ('{}')", users[&(lib, *v)]))
            .collect();
        let message = format!(
            "conflicting major versions of library '{lib}' in one flow: {}; \
             a single class loader cannot host both — split the flow or align versions",
            listed.join(" vs ")
        );
        out.push(if opts.admission.is_some() {
            Diagnostic::error("WS002", message)
        } else {
            Diagnostic::warning("WS002", message)
        });
    }
}

/// WS003: a written field that no path reads before it is overwritten or
/// the branch ends without reaching any consumer. Sinks count as readers
/// of everything (they serialize whole records).
fn check_dead_writes(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.name == REMOVED_IDENTITY {
            continue;
        }
        for field in &op.writes {
            if !write_is_live(plan, node.id, field) {
                out.push(
                    Diagnostic::warning(
                        "WS003",
                        format!(
                            "operator '{}' writes field '{field}' but no downstream operator \
                             or sink observes that value",
                            op.name
                        ),
                    )
                    .with_node(node.id),
                );
            }
        }
    }
}

/// Is the value `writer` leaves in `field` observed on any downstream
/// path before being overwritten?
fn write_is_live(plan: &LogicalPlan, writer: NodeId, field: &str) -> bool {
    let mut stack = plan.children(writer);
    while let Some(id) = stack.pop() {
        match &plan.nodes()[id].op {
            NodeOp::Sink(_) => return true,
            NodeOp::Op(op) => {
                if op.reads.iter().any(|f| f == field) {
                    return true;
                }
                if op.writes.iter().any(|f| f == field) {
                    continue; // overwritten on this path before any read
                }
                stack.extend(plan.children(id));
            }
            NodeOp::Source(_) => {}
        }
    }
    false
}

/// WS004: duplicate sink names — `LogicalPlan::sink` rejects these at
/// build time, but hand-mutated plans can still carry them.
fn check_duplicate_sinks(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for node in plan.nodes() {
        if let NodeOp::Sink(name) = &node.op {
            if seen.insert(name.as_str(), node.id).is_some() {
                out.push(
                    Diagnostic::error(
                        "WS004",
                        format!("duplicate sink name '{name}': outputs would clobber each other"),
                    )
                    .with_node(node.id),
                );
            }
        }
    }
}

/// WS006: nodes that contribute to no sink. Identity nodes orphaned by
/// the optimizer are expected and skipped.
fn check_unreachable(
    plan: &LogicalPlan,
    contributing: &BTreeSet<NodeId>,
    out: &mut Vec<Diagnostic>,
) {
    for node in plan.nodes() {
        if contributing.contains(&node.id) {
            continue;
        }
        let label = match &node.op {
            NodeOp::Op(op) if op.name == REMOVED_IDENTITY => continue,
            NodeOp::Op(op) => format!("operator '{}'", op.name),
            NodeOp::Source(name) => format!("source '{name}'"),
            NodeOp::Sink(name) => format!("sink '{name}'"),
        };
        out.push(
            Diagnostic::warning("WS006", format!("{label} does not contribute to any sink"))
                .with_node(node.id),
        );
    }
}

/// WS007 / WS008: the admission pre-flight, mirroring
/// [`crate::cluster::admit`]'s arithmetic exactly so a plan flagged here
/// is precisely a plan the scheduler would reject.
fn check_admission(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    let Some((cluster, dop)) = &opts.admission else { return };
    let dop = *dop;

    let cores = cluster.total_cores();
    if dop > cores {
        out.push(Diagnostic::error(
            "WS008",
            format!("requested DoP {dop} exceeds the cluster's {cores} total cores"),
        ));
    }

    let memory_per_worker: u64 = plan.operators().map(|op| op.cost.memory_bytes).sum();
    let workers_per_node = dop.div_ceil(cluster.nodes.len()).max(1);
    let node_ram = cluster.nodes.iter().map(|n| n.ram_bytes).min().unwrap_or(0);
    if memory_per_worker.saturating_mul(workers_per_node as u64) > node_ram {
        let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
        out.push(Diagnostic::error(
            "WS007",
            format!(
                "flow needs {:.1} GB per worker x {workers_per_node} workers/node but nodes \
                 have {:.1} GB; reduce operator footprints, lower DoP, or split the flow",
                gb(memory_per_worker),
                gb(node_ram)
            ),
        ));
    }
}

/// WS010: a `Reduce` whose aggregate is a `Custom` closure. The executor
/// cannot pre-aggregate inside fused stages for these — opaque closures
/// have no combine step — so the full group ships to the final reduce.
/// Silent, correct, and often unintended when a typed
/// [`crate::operator::Aggregate`] would express the same computation.
fn check_combinability(plan: &LogicalPlan, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.kind == crate::operator::Kind::Reduce && !op.combinable_reduce() {
            out.push(
                Diagnostic::info(
                    "WS010",
                    format!(
                        "reduce '{}' uses a custom aggregate closure, which disables partial \
                         aggregation (every group ships uncombined); use a typed Aggregate \
                         (Count/Sum/Min/Max/Concat/TopK) to enable combining",
                        op.name
                    ),
                )
                .with_node(node.id),
            );
        }
    }
}

/// WS011: every `store:` sink must parse as `store:<store>/<dataset>`,
/// and — when the caller declares which stores the run can reach — must
/// name one of them. Records routed to a store the executor cannot
/// deliver to fail the whole run, so this is an error, caught pre-flight.
fn check_store_sinks(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    for node in plan.nodes() {
        let NodeOp::Sink(name) = &node.op else { continue };
        if !name.starts_with(STORE_SINK_PREFIX) {
            continue;
        }
        match parse_store_sink(name) {
            None => out.push(
                Diagnostic::error(
                    "WS011",
                    format!(
                        "sink '{name}' does not parse as 'store:<store>/<dataset>'; records \
                         routed to a store need both a store and a dataset name"
                    ),
                )
                .with_node(node.id),
            ),
            Some((store, _)) => {
                if let Some(known) = &opts.known_stores {
                    if !known.contains(store) {
                        let known_list =
                            known.iter().cloned().collect::<Vec<_>>().join(", ");
                        out.push(
                            Diagnostic::error(
                                "WS011",
                                format!(
                                    "sink '{name}' targets unknown store '{store}' (reachable \
                                     stores: {known_list})"
                                ),
                            )
                            .with_node(node.id),
                        );
                    }
                }
            }
        }
    }
}

/// WS012: in live (incremental) mode a `Custom` reduce has no retainable
/// per-key state — an opaque closure cannot be folded round-by-round —
/// so the session must either reject the plan or recompute the reduce
/// over the *cumulative* stream every round, forfeiting the entire
/// incremental saving for that branch. Warning, not error: the live
/// session accepts it behind an explicit opt-in.
fn check_live_recompute(plan: &LogicalPlan, opts: &AnalyzeOptions, out: &mut Vec<Diagnostic>) {
    if !opts.live {
        return;
    }
    for node in plan.nodes() {
        let NodeOp::Op(op) = &node.op else { continue };
        if op.kind == crate::operator::Kind::Reduce && !op.combinable_reduce() {
            out.push(
                Diagnostic::warning(
                    "WS012",
                    format!(
                        "reduce '{}' uses a custom aggregate closure, which cannot fold \
                         incrementally: each live round must recompute it over the cumulative \
                         record stream instead of the round's delta; use a typed Aggregate \
                         (Count/Sum/Min/Max/Concat/TopK) to retain per-key state across rounds",
                        op.name
                    ),
                )
                .with_node(node.id),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Aggregate, CostModel, Operator, Package};
    use crate::record::Record;
    use websift_analyze::{has_errors, Severity};

    fn op(name: &str, reads: &[&str], writes: &[&str]) -> Operator {
        Operator::map(name, Package::Ie, |r| r)
            .with_reads(reads)
            .with_writes(writes)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_plan_has_no_diagnostics() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let s = plan.add(src, op("sentences", &["text"], &["sentences"])).unwrap();
        let n = plan.add(s, op("negation", &["text", "sentences"], &["negation"])).unwrap();
        plan.sink(n, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn use_before_def_names_the_producer() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let n = plan.add(src, op("negation", &["text", "sentences"], &["negation"])).unwrap();
        let s = plan.add(n, op("sentences", &["text"], &["sentences"])).unwrap();
        plan.sink(s, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        // both writes reach the sink (which observes everything), so no WS003
        assert_eq!(codes(&diags), vec!["WS001"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].node, Some(1));
        assert!(diags[0].message.contains("'sentences' produces it"), "{}", diags[0].message);
    }

    #[test]
    fn unknown_field_is_a_warning_not_error() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let g = plan.add(src, op("ghost", &["no_such_field"], &[])).unwrap();
        plan.sink(g, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS009"]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn library_conflict_severity_depends_on_admission_context() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan
            .add(src, op("tokens", &["text"], &["tokens"]).with_library("opennlp", 15))
            .unwrap();
        let b = plan
            .add(a, op("disease", &["text"], &["entities"]).with_library("opennlp", 14))
            .unwrap();
        plan.sink(b, "out").unwrap();

        let local = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&local), vec!["WS002"]);
        assert!(!has_errors(&local));

        let opts = AnalyzeOptions::default().with_admission(ClusterSpec::paper_cluster(), 28);
        let clustered = analyze_plan(&plan, &opts);
        assert_eq!(codes(&clustered), vec!["WS002"]);
        assert!(has_errors(&clustered));
        assert!(clustered[0].message.contains("14 ('disease') vs 15 ('tokens')"));
    }

    #[test]
    fn dead_write_detected_across_overwrite() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        // `a` writes x, `b` overwrites x without reading it, sink sees b's x
        let a = plan.add(src, op("a", &["text"], &["x"])).unwrap();
        let b = plan.add(a, op("b", &["text"], &["x"])).unwrap();
        plan.sink(b, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS003"]);
        assert_eq!(diags[0].node, Some(1));
    }

    #[test]
    fn branch_reads_keep_writes_live() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, op("a", &["text"], &["x"])).unwrap();
        // one branch overwrites x, the other reads it
        let over = plan.add(a, op("over", &["text"], &["x"])).unwrap();
        let read = plan.add(a, op("read", &["x"], &["y"])).unwrap();
        plan.sink(over, "o1").unwrap();
        plan.sink(read, "o2").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unreachable_and_duplicate_sinks_flagged() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, op("a", &["text"], &[])).unwrap();
        plan.add(src, op("orphan", &["text"], &[])).unwrap();
        plan.sink(a, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS006"]);
        assert!(diags[0].message.contains("'orphan'"));
    }

    #[test]
    fn admission_preflight_matches_admit() {
        use crate::cluster::admit;
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let mut prev = src;
        for (i, gb) in [20u64, 20, 20].iter().enumerate() {
            prev = plan
                .add(
                    prev,
                    op(&format!("fat{i}"), &["text"], &[]).with_cost(CostModel {
                        memory_bytes: gb << 30,
                        ..CostModel::default()
                    }),
                )
                .unwrap();
        }
        plan.sink(prev, "out").unwrap();

        let cluster = ClusterSpec::paper_cluster();
        let opts = AnalyzeOptions::default().with_admission(cluster.clone(), 28);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS007"]);
        // the analyzer and the runtime admission agree on the arithmetic
        let err = admit(&plan, 28, &cluster).unwrap_err();
        assert!(err.to_string().contains("60.0 GB"), "{err}");
        assert!(diags[0].message.contains("60.0 GB per worker"));
        assert!(diags[0].message.contains("24.0 GB"));

        let opts = AnalyzeOptions::default().with_admission(cluster, 500);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS007", "WS008"]);
    }

    #[test]
    fn script_diagnostics_map_to_lines() {
        let mut reg = OperatorRegistry::new();
        reg.register("ie.sentences", || op("sentences", &["text"], &["sentences"]));
        reg.register("ie.negation", || op("negation", &["text", "sentences"], &["negation"]));
        let script = "\
$pages = read 'crawl';
$neg = apply ie.negation $pages;
$sents = apply ie.sentences $neg;
write $neg 'negation';
write $sents 'sentences';";
        let diags = analyze_script(script, &reg, &AnalyzeOptions::default()).unwrap();
        assert_eq!(codes(&diags), vec!["WS001"]);
        assert_eq!(diags[0].line, Some(2));
        assert_eq!(diags[0].node, Some(1));
    }

    #[test]
    fn script_unused_vars_become_ws005() {
        let mut reg = OperatorRegistry::new();
        reg.register("ie.sentences", || op("sentences", &["text"], &["sentences"]));
        let script = "\
$pages = read 'crawl';
$dead = apply ie.sentences $pages;
write $pages 'out';";
        let diags = analyze_script(script, &reg, &AnalyzeOptions::default()).unwrap();
        // $dead is unused, its node contributes to no sink, and its write
        // (never reaching a sink) is dead — all mapped to script line 2
        assert_eq!(codes(&diags), vec!["WS003", "WS006", "WS005"]);
        assert!(diags.iter().all(|d| d.line == Some(2)), "{diags:?}");
        assert!(diags[2].message.contains("$dead"));
    }

    #[test]
    fn custom_aggregate_reduce_is_flagged_ws010() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce("tally", Package::Base, |r| format!("{:?}", r.get("corpus")), |k, rs| {
                    let mut out = Record::new();
                    out.set("key", k).set("count", rs.len());
                    vec![out]
                }),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS010"]);
        assert_eq!(diags[0].severity, Severity::Info);
        assert_eq!(diags[0].node, Some(1));
        assert!(!has_errors(&diags));
        assert!(diags[0].message.contains("custom aggregate"), "{}", diags[0].message);

        // the same reduction through a typed aggregate is clean
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());
    }

    #[test]
    fn live_mode_escalates_custom_aggregates_to_ws012() {
        let custom_reduce = || {
            Operator::reduce("tally", Package::Base, |r| format!("{:?}", r.get("corpus")), |k, rs| {
                let mut out = Record::new();
                out.set("key", k).set("count", rs.len());
                vec![out]
            })
        };
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan.add(src, custom_reduce()).unwrap();
        plan.sink(r, "out").unwrap();

        // default mode: only the WS010 info
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS010"]);

        // live mode: WS012 joins as a warning on the same node
        let diags = analyze_plan(&plan, &AnalyzeOptions::default().with_live_mode());
        assert_eq!(codes(&diags), vec!["WS010", "WS012"]);
        assert_eq!(diags[1].severity, Severity::Warning);
        assert_eq!(diags[1].node, Some(1));
        assert!(!has_errors(&diags));
        assert!(diags[1].message.contains("cumulative"), "{}", diags[1].message);

        // a typed aggregate stays clean even in live mode
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let r = plan
            .add(
                src,
                Operator::reduce_agg(
                    "tally",
                    Package::Base,
                    |r: &Record| format!("{:?}", r.get("corpus")),
                    Aggregate::Count { into: "count".into() },
                ),
            )
            .unwrap();
        plan.sink(r, "out").unwrap();
        assert!(analyze_plan(&plan, &AnalyzeOptions::default().with_live_mode()).is_empty());
    }

    #[test]
    fn malformed_store_sink_is_flagged_ws011() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        // bypass store_sink() to build the malformed name directly
        plan.sink(src, "store:no-dataset").unwrap();
        let diags = analyze_plan(&plan, &AnalyzeOptions::default());
        assert_eq!(codes(&diags), vec!["WS011"]);
        assert!(has_errors(&diags));
        assert_eq!(diags[0].node, Some(1));
        assert!(diags[0].message.contains("store:<store>/<dataset>"), "{}", diags[0].message);
    }

    #[test]
    fn unknown_store_fires_only_with_declared_stores() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.store_sink(src, "serve", "entities").unwrap();

        // no declared stores: the name parses, so nothing fires
        assert!(analyze_plan(&plan, &AnalyzeOptions::default()).is_empty());

        // the right store declared: clean
        let opts = AnalyzeOptions::default().with_known_stores(["serve"]);
        assert!(analyze_plan(&plan, &opts).is_empty());

        // a different store declared: WS011 error naming both sides
        let opts = AnalyzeOptions::default().with_known_stores(["archive"]);
        let diags = analyze_plan(&plan, &opts);
        assert_eq!(codes(&diags), vec!["WS011"]);
        assert!(has_errors(&diags));
        assert!(diags[0].message.contains("unknown store 'serve'"), "{}", diags[0].message);
        assert!(diags[0].message.contains("archive"), "{}", diags[0].message);
    }
}
