//! The simulated cluster: node specs, admission control, and the network
//! model.
//!
//! This is the substitute for the paper's hardware ("a 28 node cluster,
//! where each node was equipped with 24 GB RAM, 1 TB HDD, and a Intel Xeon
//! E5-2620 CPU with 6 cores", 1 Gb links). Operators execute for real on
//! local threads; what the cluster simulates is the *resource envelope*:
//!
//! - **memory admission** — Stratosphere's scheduler "does not consider
//!   memory consumption per worker node", which is exactly how the paper's
//!   full flow (≈60 GB per worker) became unrunnable. Our
//!   [`admit`] check makes that failure explicit and typed;
//! - **library conflicts** — "the Java class loader ... is not capable of
//!   using two different versions of the same library" (OpenNLP 1.4 vs
//!   1.5);
//! - **network capacity** — intermediate annotation data (1.6 TB at paper
//!   scale) overwhelming a 1 Gb switch, causing "time-out induced crashes".

use crate::logical::LogicalPlan;
use serde::Serialize;
use std::collections::HashMap;

/// One compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct NodeSpec {
    pub ram_bytes: u64,
    pub cores: usize,
}

/// The cluster.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    pub nodes: Vec<NodeSpec>,
    /// Aggregate switch bandwidth in gigabits per second.
    pub network_gbps: f64,
    /// Intermediate-data volume (bytes in flight within one flow execution)
    /// beyond which the network model declares timeout-induced failure.
    pub network_overload_bytes: u64,
}

impl ClusterSpec {
    /// The paper's analysis cluster: 28 × (24 GB, 6 cores), 1 Gb links.
    pub fn paper_cluster() -> ClusterSpec {
        ClusterSpec {
            nodes: vec![
                NodeSpec {
                    ram_bytes: 24 << 30,
                    cores: 6,
                };
                28
            ],
            network_gbps: 1.0,
            // ~1 Gb/s sustained over a tolerable 10-minute window
            network_overload_bytes: 75 << 30,
        }
    }

    /// The paper's fallback: "a single server with 1 TB RAM using 40
    /// threads".
    pub fn big_memory_node() -> ClusterSpec {
        ClusterSpec {
            nodes: vec![NodeSpec {
                ram_bytes: 1 << 40,
                cores: 40,
            }],
            network_gbps: 10.0,
            network_overload_bytes: u64::MAX,
        }
    }

    /// A small local test cluster.
    pub fn local(nodes: usize, ram_gb: u64, cores: usize) -> ClusterSpec {
        ClusterSpec {
            nodes: vec![
                NodeSpec {
                    ram_bytes: ram_gb << 30,
                    cores,
                };
                nodes
            ],
            network_gbps: 10.0,
            network_overload_bytes: u64::MAX,
        }
    }

    pub fn total_cores(&self) -> usize {
        self.nodes.iter().map(|n| n.cores).sum()
    }

    /// Seconds to move `bytes` across the switch.
    pub fn network_secs(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 / (self.network_gbps * 1e9)
    }

    /// Does this volume of in-flight intermediate data overload the
    /// network (the war-story failure mode)?
    pub fn overloaded_by(&self, intermediate_bytes: u64) -> bool {
        intermediate_bytes > self.network_overload_bytes
    }
}

/// Admission failures.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum SchedulingError {
    /// DoP 0 requests no workers at all — nothing to place. Typed (not a
    /// panic) because the serving layer derives DoP from live query
    /// concurrency, where 0 is an ordinary caller mistake.
    ZeroDop,
    /// The plan declares no memory footprint at all. The per-node
    /// envelope would vacuously admit any co-location, which in practice
    /// means a missing cost model rather than a genuinely free flow —
    /// admitting it would disable the one check the paper's scheduler
    /// lacked.
    ZeroMemoryPlan { operators: usize },
    /// The flow's per-worker memory times co-located workers exceeds node
    /// RAM at every feasible placement.
    InsufficientMemory {
        memory_per_worker: u64,
        node_ram: u64,
        workers_per_node: usize,
    },
    /// Two operators need different major versions of one library.
    LibraryConflict {
        library: String,
        versions: Vec<u32>,
    },
    /// Requested DoP exceeds the cluster's total cores.
    DopExceedsCores { dop: usize, cores: usize },
    /// A node was lost mid-flow and no survivors remain to reschedule
    /// onto. Carries the failed node's id so the executor's rescheduler
    /// and the recovery experiments can report *which* node died.
    NodeFailed { node: usize },
}

impl std::fmt::Display for SchedulingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulingError::ZeroDop => {
                write!(f, "DoP 0 requests no workers; admission needs at least one")
            }
            SchedulingError::ZeroMemoryPlan { operators } => write!(
                f,
                "plan of {operators} operator(s) declares zero memory footprint; \
                 give every operator a cost model before admission"
            ),
            SchedulingError::InsufficientMemory {
                memory_per_worker,
                node_ram,
                workers_per_node,
            } => write!(
                f,
                "flow needs {:.1} GB per worker x {workers_per_node} workers/node but nodes have {:.1} GB",
                *memory_per_worker as f64 / (1u64 << 30) as f64,
                *node_ram as f64 / (1u64 << 30) as f64
            ),
            SchedulingError::LibraryConflict { library, versions } => {
                write!(f, "conflicting versions of {library}: {versions:?}")
            }
            SchedulingError::DopExceedsCores { dop, cores } => {
                write!(f, "DoP {dop} exceeds {cores} total cores")
            }
            SchedulingError::NodeFailed { node } => {
                write!(f, "node {node} failed and no surviving nodes remain")
            }
        }
    }
}

impl std::error::Error for SchedulingError {}

/// A successful placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Placement {
    pub dop: usize,
    pub workers_per_node: usize,
    pub memory_per_worker: u64,
}

/// Admission control: checks library compatibility, core budget, and the
/// per-node memory envelope for running `plan` at `dop`.
///
/// Memory model: every worker thread co-hosts *all* of the flow's
/// operators (pipelined execution), so per-worker memory is the sum of
/// operator footprints — the paper's "roughly 60 GB main memory per worker
/// thread" arithmetic.
pub fn admit(plan: &LogicalPlan, dop: usize, cluster: &ClusterSpec) -> Result<Placement, SchedulingError> {
    admit_sharded(plan, dop, cluster, None)
}

/// [`admit`] for sharded execution: with `shards = Some(n)` the unit of
/// placement is a worker *process*, not a thread — each shard co-hosts
/// the whole operator chain, so a node running `ceil(shards / nodes)`
/// shard processes needs that many full per-worker footprints resident
/// at once. `None` reproduces the one-process thread model, where DoP
/// threads share a single footprint per node slot.
pub fn admit_sharded(
    plan: &LogicalPlan,
    dop: usize,
    cluster: &ClusterSpec,
    shards: Option<usize>,
) -> Result<Placement, SchedulingError> {
    if dop == 0 {
        return Err(SchedulingError::ZeroDop);
    }

    // Library conflicts.
    let mut libs: HashMap<&str, Vec<u32>> = HashMap::new();
    for op in plan.operators() {
        if let Some((name, version)) = &op.library {
            let versions = libs.entry(name.as_str()).or_default();
            if !versions.contains(version) {
                versions.push(*version);
            }
        }
    }
    for (lib, mut versions) in libs {
        if versions.len() > 1 {
            versions.sort_unstable();
            return Err(SchedulingError::LibraryConflict {
                library: lib.to_string(),
                versions,
            });
        }
    }

    let cores = cluster.total_cores();
    if dop > cores {
        return Err(SchedulingError::DopExceedsCores { dop, cores });
    }

    let memory_per_worker: u64 = plan.operators().map(|op| op.cost.memory_bytes).sum();
    if memory_per_worker == 0 {
        return Err(SchedulingError::ZeroMemoryPlan { operators: plan.operator_count() });
    }
    let workers_per_node = match shards {
        Some(s) => s.max(1).div_ceil(cluster.nodes.len()).max(1),
        None => dop.div_ceil(cluster.nodes.len()).max(1),
    };
    let node_ram = cluster.nodes.iter().map(|n| n.ram_bytes).min().unwrap_or(0);
    if memory_per_worker.saturating_mul(workers_per_node as u64) > node_ram {
        return Err(SchedulingError::InsufficientMemory {
            memory_per_worker,
            node_ram,
            workers_per_node,
        });
    }
    Ok(Placement {
        dop,
        workers_per_node,
        memory_per_worker,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, Operator, Package};

    fn plan_with_memory(mem_gb: &[u64]) -> LogicalPlan {
        let mut plan = LogicalPlan::new();
        let mut prev = plan.source("in");
        for (i, &gb) in mem_gb.iter().enumerate() {
            let op = Operator::map(&format!("op{i}"), Package::Ie, |r| r).with_cost(CostModel {
                memory_bytes: gb << 30,
                ..CostModel::default()
            });
            prev = plan.add(prev, op).unwrap();
        }
        plan.sink(prev, "out").unwrap();
        plan
    }

    #[test]
    fn paper_cluster_shape() {
        let c = ClusterSpec::paper_cluster();
        assert_eq!(c.nodes.len(), 28);
        assert_eq!(c.total_cores(), 168, "max DoP of the paper");
    }

    #[test]
    fn small_flow_admits() {
        let plan = plan_with_memory(&[1, 2]);
        let p = admit(&plan, 28, &ClusterSpec::paper_cluster()).unwrap();
        assert_eq!(p.workers_per_node, 1);
        assert_eq!(p.memory_per_worker, 3 << 30);
    }

    #[test]
    fn sixty_gb_flow_rejected_on_paper_cluster() {
        // the war story: full Fig-2 flow ≈ 60 GB/worker vs 24 GB nodes
        let plan = plan_with_memory(&[20, 20, 20]);
        let err = admit(&plan, 28, &ClusterSpec::paper_cluster()).unwrap_err();
        assert!(matches!(err, SchedulingError::InsufficientMemory { .. }));
        // ... the paper's mitigation: spin off the fattest task (gene
        // recognition, 20 GB) alone onto the 1 TB server with 40 threads
        let gene_only = plan_with_memory(&[20]);
        assert!(admit(&gene_only, 40, &ClusterSpec::big_memory_node()).is_ok());
        // even there, the *full* flow at 40 workers would not fit
        assert!(admit(&plan, 40, &ClusterSpec::big_memory_node()).is_err());
    }

    #[test]
    fn higher_dop_needs_more_memory_per_node() {
        let plan = plan_with_memory(&[10]); // 10 GB/worker
        // 28 workers on 28 nodes: 1 worker/node -> fits in 24 GB
        assert!(admit(&plan, 28, &ClusterSpec::paper_cluster()).is_ok());
        // 84 workers on 28 nodes: 3 workers/node -> 30 GB > 24 GB
        let err = admit(&plan, 84, &ClusterSpec::paper_cluster()).unwrap_err();
        assert!(matches!(err, SchedulingError::InsufficientMemory { .. }));
    }

    #[test]
    fn sharding_multiplies_the_per_node_footprint() {
        let plan = plan_with_memory(&[10]); // 10 GB/worker
        let cluster = ClusterSpec::local(2, 24, 8);
        // one process per node at DoP 2: 10 GB fits 24 GB
        let p = admit(&plan, 2, &cluster).unwrap();
        assert_eq!(p.workers_per_node, 1);
        // same DoP, but 8 shard *processes*: 4/node x 10 GB > 24 GB
        let err = admit_sharded(&plan, 2, &cluster, Some(8)).unwrap_err();
        assert!(matches!(
            err,
            SchedulingError::InsufficientMemory { workers_per_node: 4, .. }
        ));
        // 4 shards spread 2/node: 20 GB still fits
        let p = admit_sharded(&plan, 2, &cluster, Some(4)).unwrap();
        assert_eq!(p.workers_per_node, 2);
        // shards = None delegates to the thread model
        assert_eq!(
            admit_sharded(&plan, 2, &cluster, None).unwrap(),
            admit(&plan, 2, &cluster).unwrap()
        );
    }

    #[test]
    fn dop_capped_by_cores() {
        let plan = plan_with_memory(&[1]);
        let err = admit(&plan, 200, &ClusterSpec::paper_cluster()).unwrap_err();
        assert!(matches!(err, SchedulingError::DopExceedsCores { cores: 168, .. }));
    }

    #[test]
    fn library_conflict_detected() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan
            .add(
                src,
                Operator::map("tokenize", Package::Ie, |r| r).with_library("opennlp", 15),
            )
            .unwrap();
        let b = plan
            .add(
                a,
                Operator::map("disease-ml", Package::Ie, |r| r).with_library("opennlp", 14),
            )
            .unwrap();
        plan.sink(b, "out").unwrap();
        let err = admit(&plan, 4, &ClusterSpec::paper_cluster()).unwrap_err();
        assert_eq!(
            err,
            SchedulingError::LibraryConflict {
                library: "opennlp".to_string(),
                versions: vec![14, 15],
            }
        );
    }

    #[test]
    fn zero_dop_is_a_typed_error_not_a_panic() {
        let plan = plan_with_memory(&[1]);
        let err = admit(&plan, 0, &ClusterSpec::paper_cluster()).unwrap_err();
        assert_eq!(err, SchedulingError::ZeroDop);
        assert!(err.to_string().contains("DoP 0"));
    }

    #[test]
    fn zero_memory_plan_is_rejected() {
        // A plan whose operators all declare zero memory would vacuously
        // pass the envelope check at any DoP — flag it instead.
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let op = Operator::map("free", Package::Ie, |r| r)
            .with_cost(CostModel { memory_bytes: 0, ..CostModel::default() });
        let a = plan.add(src, op).unwrap();
        plan.sink(a, "out").unwrap();
        let err = admit(&plan, 4, &ClusterSpec::paper_cluster()).unwrap_err();
        assert_eq!(err, SchedulingError::ZeroMemoryPlan { operators: 1 });
        assert!(err.to_string().contains("zero memory"));
    }

    #[test]
    fn network_model() {
        let c = ClusterSpec::paper_cluster();
        // 1 GB over 1 Gb/s = 8 seconds
        assert!((c.network_secs(1 << 30) - 8.589934592).abs() < 0.01);
        assert!(c.overloaded_by(1600 << 30), "1.6 TB overloads the switch");
        assert!(!c.overloaded_by(10 << 30));
    }

    #[test]
    fn error_messages_are_informative() {
        let plan = plan_with_memory(&[30, 30]);
        let err = admit(&plan, 28, &ClusterSpec::paper_cluster()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("60.0 GB"), "{msg}");
        assert!(msg.contains("24.0 GB"), "{msg}");
    }
}
