//! Sharded physical execution: N worker shards — separate OS processes,
//! or isolated in-process runtimes behind the same frame protocol —
//! exchanging length-prefixed record and partial-aggregate frames over
//! real channels (pipes / unix socket pairs), with bounded per-edge
//! backpressure and spill-to-disk for over-memory Reduce groups.
//!
//! # The byte-identity contract
//!
//! Sharding is *physical only*, like fusion, combining, and batching
//! before it: every deterministic surface (sink bytes, metrics codec
//! bytes, simulated seconds, digests, tracer JSONL, registry snapshots,
//! checkpoint frames, store snapshots) is bit-identical to in-process
//! execution. The trick is the same one the executor already plays —
//! the physical dataflow and the simulated accounting are decoupled:
//!
//! - chunk boundaries are computed by the parent exactly as the
//!   in-process pass computes them, and results merge in chunk order;
//! - every worker runs the *same* per-chunk [`StageKernel`] the
//!   in-process thread pool runs, so per-record f64 costs, partial
//!   aggregate states, and tapped streams are computed by shared code;
//! - costs and aggregate states cross the process boundary through the
//!   deterministic [`Snapshot`] codec (f64s travel as IEEE-754 bits);
//! - the analytic replay in `run_chain` charges the simulated cost
//!   model from the merged observations, exactly as before.
//!
//! Operators reach worker processes as [`OpSpec`]s — a closed algebra
//! of operator recipes — because closures cannot cross `fork`/`exec`.
//! Stages containing spec-less operators silently fall back to the
//! in-process pass; nothing observable changes either way.
//!
//! # Worker loss
//!
//! The parent counts frames per shard; a configured [`KillSpec`] (or a
//! real crash) surfaces as [`ShardRunError::Lost`], which the executor
//! converts to `ExecutionError::ShardLost` carrying every resilience
//! checkpoint taken so far — so callers resume from the last frame,
//! optionally at a different shard count, and reproduce the
//! uninterrupted run bit for bit. With `respawn_lost` the pool instead
//! respawns a fresh worker and re-runs the chunks that never reported
//! results.

use crate::batch::{BatchArena, RecordBatch};
use crate::operator::{AggState, Aggregate, CostModel, KeyFn, OpFunc, Operator, Package};
use crate::record::{Record, Value};
use crate::transport::{
    FrameChannel, TransportError, K_ACK, K_BYE, K_DATA, K_DONE, K_EOF_DATA, K_ERR, K_GROUPS,
    K_RESULT, K_STAGE,
};
use std::cell::Cell;
// lint:allow(hash_iteration): index maps only; every iteration order below comes from side vectors or sorts
use std::collections::HashMap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::os::unix::net::UnixStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
// lint:allow(wall_clock): see the StageKernel wall_ms notes — runtime-only diagnostics
use std::time::Instant;
use websift_resilience::frame::{read_frame, write_frame};
use websift_resilience::{CodecError, Reader, Snapshot, Writer};

// ---------------------------------------------------------------------------
// Spec algebra: operators that can cross a process boundary
// ---------------------------------------------------------------------------

/// A grouping key recipe for spec-built Reduces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeySpec {
    /// The string form of `field`'s value (`Str` as-is, `Int` printed,
    /// anything else the empty key).
    Field(String),
    /// `"{prefix}{value(field) mod modulus}"` over the Euclidean
    /// remainder, the workhorse of the differential test vocabulary.
    IntMod { field: String, modulus: i64, prefix: String },
}

impl KeySpec {
    /// The field this key reads (for operator annotations).
    pub fn field(&self) -> &str {
        match self {
            KeySpec::Field(f) => f,
            KeySpec::IntMod { field, .. } => field,
        }
    }

    /// Materializes the key closure. Workers and parents built from the
    /// same spec get the same function, which is what keeps sharded
    /// grouping identical to in-process grouping.
    pub fn key_fn(&self) -> KeyFn {
        match self.clone() {
            KeySpec::Field(field) => Arc::new(move |r: &Record| match r.get(&field) {
                Some(v) => v
                    .as_str()
                    .map(str::to_string)
                    .or_else(|| v.as_int().map(|i| i.to_string()))
                    .unwrap_or_default(),
                None => String::new(),
            }),
            KeySpec::IntMod { field, modulus, prefix } => {
                let m = modulus.max(1);
                Arc::new(move |r: &Record| {
                    let v = r.get(&field).and_then(Value::as_int).unwrap_or(0);
                    format!("{prefix}{}", v.rem_euclid(m))
                })
            }
        }
    }
}

impl Snapshot for KeySpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            KeySpec::Field(f) => {
                w.u8(0);
                w.str(f);
            }
            KeySpec::IntMod { field, modulus, prefix } => {
                w.u8(1);
                w.str(field);
                w.i64(*modulus);
                w.str(prefix);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<KeySpec, CodecError> {
        match r.u8()? {
            0 => Ok(KeySpec::Field(r.str()?)),
            1 => Ok(KeySpec::IntMod { field: r.str()?, modulus: r.i64()?, prefix: r.str()? }),
            tag => Err(CodecError::BadTag { what: "key spec", tag }),
        }
    }
}

/// A combinable aggregate recipe, mirroring the built-in
/// [`Aggregate`] variants (`Custom` closures cannot cross processes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    Count { into: String },
    Sum { field: String, into: String },
    Min { field: String, into: String },
    Max { field: String, into: String },
    Concat { field: String, sep: String, into: String },
    TopK { field: String, k: usize, into: String },
}

impl AggSpec {
    pub fn to_aggregate(&self) -> Aggregate {
        match self.clone() {
            AggSpec::Count { into } => Aggregate::Count { into },
            AggSpec::Sum { field, into } => Aggregate::Sum { field, into },
            AggSpec::Min { field, into } => Aggregate::Min { field, into },
            AggSpec::Max { field, into } => Aggregate::Max { field, into },
            AggSpec::Concat { field, sep, into } => Aggregate::Concat { field, sep, into },
            AggSpec::TopK { field, k, into } => Aggregate::TopK { field, k, into },
        }
    }

    fn field_read(&self) -> Option<&str> {
        match self {
            AggSpec::Count { .. } => None,
            AggSpec::Sum { field, .. }
            | AggSpec::Min { field, .. }
            | AggSpec::Max { field, .. }
            | AggSpec::Concat { field, .. }
            | AggSpec::TopK { field, .. } => Some(field),
        }
    }

    fn output_field(&self) -> &str {
        match self {
            AggSpec::Count { into }
            | AggSpec::Sum { into, .. }
            | AggSpec::Min { into, .. }
            | AggSpec::Max { into, .. }
            | AggSpec::Concat { into, .. }
            | AggSpec::TopK { into, .. } => into,
        }
    }
}

impl Snapshot for AggSpec {
    fn encode(&self, w: &mut Writer) {
        match self {
            AggSpec::Count { into } => {
                w.u8(0);
                w.str(into);
            }
            AggSpec::Sum { field, into } => {
                w.u8(1);
                w.str(field);
                w.str(into);
            }
            AggSpec::Min { field, into } => {
                w.u8(2);
                w.str(field);
                w.str(into);
            }
            AggSpec::Max { field, into } => {
                w.u8(3);
                w.str(field);
                w.str(into);
            }
            AggSpec::Concat { field, sep, into } => {
                w.u8(4);
                w.str(field);
                w.str(sep);
                w.str(into);
            }
            AggSpec::TopK { field, k, into } => {
                w.u8(5);
                w.str(field);
                w.usize(*k);
                w.str(into);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<AggSpec, CodecError> {
        match r.u8()? {
            0 => Ok(AggSpec::Count { into: r.str()? }),
            1 => Ok(AggSpec::Sum { field: r.str()?, into: r.str()? }),
            2 => Ok(AggSpec::Min { field: r.str()?, into: r.str()? }),
            3 => Ok(AggSpec::Max { field: r.str()?, into: r.str()? }),
            4 => Ok(AggSpec::Concat { field: r.str()?, sep: r.str()?, into: r.str()? }),
            5 => Ok(AggSpec::TopK { field: r.str()?, k: r.usize()?, into: r.str()? }),
            tag => Err(CodecError::BadTag { what: "aggregate spec", tag }),
        }
    }
}

/// The operator recipe algebra. Small by design: just enough shapes to
/// exercise Map/FlatMap/Filter/Reduce chains with data-dependent costs,
/// field reads/writes, and fan-out in the differential suites, while
/// staying serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecOp {
    /// `record[field] = record[from] * mul + add` (wrapping arithmetic,
    /// missing/non-int `from` reads as 0).
    MapStamp { field: String, from: String, mul: i64, add: i64 },
    /// Uppercases the `text` field.
    MapUpper,
    /// Appends `suffix` to the `text` field (grows per-record cost).
    MapGrow { suffix: String },
    /// Emits `copies` clones, stamping the copy index under `tag`.
    FlatMapDup { copies: usize, tag: String },
    /// Keeps records where `record[field] mod modulus == keep`.
    FilterIntMod { field: String, modulus: i64, keep: i64 },
    /// A combinable Reduce.
    Reduce { key: KeySpec, agg: AggSpec },
}

impl Snapshot for SpecOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            SpecOp::MapStamp { field, from, mul, add } => {
                w.u8(0);
                w.str(field);
                w.str(from);
                w.i64(*mul);
                w.i64(*add);
            }
            SpecOp::MapUpper => w.u8(1),
            SpecOp::MapGrow { suffix } => {
                w.u8(2);
                w.str(suffix);
            }
            SpecOp::FlatMapDup { copies, tag } => {
                w.u8(3);
                w.usize(*copies);
                w.str(tag);
            }
            SpecOp::FilterIntMod { field, modulus, keep } => {
                w.u8(4);
                w.str(field);
                w.i64(*modulus);
                w.i64(*keep);
            }
            SpecOp::Reduce { key, agg } => {
                w.u8(5);
                key.encode(w);
                agg.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<SpecOp, CodecError> {
        match r.u8()? {
            0 => Ok(SpecOp::MapStamp {
                field: r.str()?,
                from: r.str()?,
                mul: r.i64()?,
                add: r.i64()?,
            }),
            1 => Ok(SpecOp::MapUpper),
            2 => Ok(SpecOp::MapGrow { suffix: r.str()? }),
            3 => Ok(SpecOp::FlatMapDup { copies: r.usize()?, tag: r.str()? }),
            4 => Ok(SpecOp::FilterIntMod {
                field: r.str()?,
                modulus: r.i64()?,
                keep: r.i64()?,
            }),
            5 => Ok(SpecOp::Reduce {
                key: KeySpec::decode(r)?,
                agg: AggSpec::decode(r)?,
            }),
            tag => Err(CodecError::BadTag { what: "spec op", tag }),
        }
    }
}

fn package_tag(p: Package) -> u8 {
    match p {
        Package::Base => 0,
        Package::Ie => 1,
        Package::Wa => 2,
        Package::Dc => 3,
    }
}

fn package_from_tag(tag: u8) -> Result<Package, CodecError> {
    match tag {
        0 => Ok(Package::Base),
        1 => Ok(Package::Ie),
        2 => Ok(Package::Wa),
        3 => Ok(Package::Dc),
        tag => Err(CodecError::BadTag { what: "operator package", tag }),
    }
}

/// A serializable operator: everything a worker shard needs to rebuild
/// the [`Operator`] — recipe, name, package, cost model. `build()` also
/// attaches the analyzer annotations (reads/writes) each recipe
/// implies, so spec-built plans exercise the static analyzer the same
/// way hand-built ones do.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpec {
    pub name: String,
    pub package: Package,
    pub op: SpecOp,
    pub cost: CostModel,
}

impl OpSpec {
    pub fn new(name: &str, package: Package, op: SpecOp) -> OpSpec {
        OpSpec { name: name.to_string(), package, op, cost: CostModel::default() }
    }

    pub fn with_cost(mut self, cost: CostModel) -> OpSpec {
        self.cost = cost;
        self
    }

    /// Rebuilds the operator this spec describes. Parent and worker call
    /// this on byte-identical specs, so both sides run the same
    /// closures over the same cost model.
    pub fn build(&self) -> Operator {
        let op = match self.op.clone() {
            SpecOp::MapStamp { field, from, mul, add } => {
                let (reads, writes) = (from.clone(), field.clone());
                Operator::map(&self.name, self.package, move |mut r| {
                    let v = r.get(&from).and_then(Value::as_int).unwrap_or(0);
                    r.set(&field, v.wrapping_mul(mul).wrapping_add(add));
                    r
                })
                .with_reads(&[&reads])
                .with_writes(&[&writes])
            }
            SpecOp::MapUpper => Operator::map(&self.name, self.package, |mut r| {
                let t = r.text().map(str::to_uppercase).unwrap_or_default();
                r.set("text", t);
                r
            })
            .with_reads(&["text"])
            .with_writes(&["text"]),
            SpecOp::MapGrow { suffix } => Operator::map(&self.name, self.package, move |mut r| {
                let t = format!("{}{}", r.text().unwrap_or(""), suffix);
                r.set("text", t);
                r
            })
            .with_reads(&["text"])
            .with_writes(&["text"]),
            SpecOp::FlatMapDup { copies, tag } => {
                let writes = tag.clone();
                Operator::flat_map(&self.name, self.package, move |r| {
                    (0..copies)
                        .map(|c| {
                            let mut dup = r.clone();
                            dup.set(&tag, c as i64);
                            dup
                        })
                        .collect()
                })
                .with_writes(&[&writes])
            }
            SpecOp::FilterIntMod { field, modulus, keep } => {
                let reads = field.clone();
                let m = modulus.max(1);
                Operator::filter(&self.name, self.package, move |r| {
                    r.get(&field).and_then(Value::as_int).unwrap_or(0).rem_euclid(m) == keep
                })
                .with_reads(&[&reads])
            }
            SpecOp::Reduce { key, agg } => {
                let key_fn = key.key_fn();
                let mut reads: Vec<&str> = vec![key.field()];
                if let Some(f) = agg.field_read() {
                    if f != key.field() {
                        reads.push(f);
                    }
                }
                Operator::reduce_agg(&self.name, self.package, move |r| key_fn(r), agg.to_aggregate())
                    .with_reads(&reads)
                    .with_writes(&[agg.output_field()])
            }
        };
        op.with_cost(self.cost).with_spec(self.clone())
    }
}

impl Snapshot for OpSpec {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.u8(package_tag(self.package));
        self.op.encode(w);
        w.f64(self.cost.startup_secs);
        w.u64(self.cost.memory_bytes);
        w.f64(self.cost.us_per_char);
        self.cost.quadratic_ref.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<OpSpec, CodecError> {
        Ok(OpSpec {
            name: r.str()?,
            package: package_from_tag(r.u8()?)?,
            op: SpecOp::decode(r)?,
            cost: CostModel {
                startup_secs: r.f64()?,
                memory_bytes: r.u64()?,
                us_per_char: r.f64()?,
                quadratic_ref: Snapshot::decode(r)?,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Shard configuration
// ---------------------------------------------------------------------------

/// How worker shards are hosted.
#[derive(Debug, Clone)]
pub enum WorkerKind {
    /// Isolated in-process runtimes: each shard is a thread running the
    /// same [`worker_serve`] loop over a unix socket pair — the full
    /// frame protocol without process-spawn latency.
    InProcess,
    /// Real OS processes: `cmd` is spawned per shard and speaks the
    /// frame protocol over its stdio pipes (see the `shard_worker`
    /// binary).
    Process { cmd: PathBuf },
}

/// Forces the loss of one worker shard after the shard's channel has
/// carried `after_frames` frames (both directions) — the soak-test hook
/// for worker-loss recovery. Fires at most once per pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    pub shard: usize,
    pub after_frames: u64,
}

/// Sharded-execution configuration, carried on
/// [`ExecutionConfig::sharding`](crate::executor::ExecutionConfig).
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker shard count (N ≥ 1). Physical only: never feeds simulated
    /// numbers.
    pub shards: usize,
    pub worker: WorkerKind,
    /// Per-edge credit window: at most this many unanswered data frames
    /// outstanding toward one shard.
    pub window: usize,
    /// Reduce workers spill their group table to sorted disk runs when
    /// its approximate footprint exceeds this.
    pub spill_threshold_bytes: usize,
    /// Respawn a lost worker and re-run its unfinished chunks instead of
    /// failing the run with `ShardLost`.
    pub respawn_lost: bool,
    /// Injected worker loss (tests).
    pub kill: Option<KillSpec>,
}

impl ShardConfig {
    pub fn in_process(shards: usize) -> ShardConfig {
        ShardConfig {
            shards: shards.max(1),
            worker: WorkerKind::InProcess,
            window: 4,
            spill_threshold_bytes: 8 << 20,
            respawn_lost: false,
            kill: None,
        }
    }

    pub fn process(shards: usize, cmd: impl Into<PathBuf>) -> ShardConfig {
        ShardConfig { worker: WorkerKind::Process { cmd: cmd.into() }, ..ShardConfig::in_process(shards) }
    }

    pub fn with_window(mut self, window: usize) -> ShardConfig {
        self.window = window.max(1);
        self
    }

    pub fn with_spill_threshold(mut self, bytes: usize) -> ShardConfig {
        self.spill_threshold_bytes = bytes.max(1);
        self
    }

    pub fn with_respawn(mut self, respawn: bool) -> ShardConfig {
        self.respawn_lost = respawn;
        self
    }

    pub fn with_kill(mut self, kill: KillSpec) -> ShardConfig {
        self.kill = Some(kill);
        self
    }
}

// ---------------------------------------------------------------------------
// The shared per-chunk stage kernel
// ---------------------------------------------------------------------------

/// Per-stage observations for one chunk. `wall_ms` is runtime-only
/// diagnostics: excluded from the wire codec (it would differ across
/// hosts) exactly as it is excluded from checkpoints and digests —
/// chunks arriving from worker processes report `0.0`.
#[derive(Debug, Default, Clone)]
pub struct ChunkStats {
    /// Per-record simulated costs, in record order.
    pub costs: Vec<f64>,
    pub records_in: u64,
    pub bytes_in: u64,
    pub wall_ms: f64,
}

impl Snapshot for ChunkStats {
    fn encode(&self, w: &mut Writer) {
        self.costs.encode(w);
        w.u64(self.records_in);
        w.u64(self.bytes_in);
    }

    fn decode(r: &mut Reader<'_>) -> Result<ChunkStats, CodecError> {
        Ok(ChunkStats {
            costs: Snapshot::decode(r)?,
            records_in: r.u64()?,
            bytes_in: r.u64()?,
            wall_ms: 0.0,
        })
    }
}

/// Sorted `(key, partial state, per-key record costs)` triples plus the
/// chunk's emulated shuffle bytes, for stages ending in a combined
/// Reduce.
pub type ChunkPartials = (Vec<(String, AggState, Vec<f64>)>, u64);

/// Everything one chunk's pass produces — the unit merged (in chunk
/// order) by the executor, whether the chunk ran on a local thread or a
/// worker shard.
#[derive(Debug, Default)]
pub struct ChunkOut {
    pub stages: Vec<ChunkStats>,
    pub out: Vec<Record>,
    pub bytes_out: u64,
    pub partial: Option<ChunkPartials>,
    /// Clones of the record stream at each tapped interior boundary.
    pub taps: Vec<Vec<Record>>,
}

impl Snapshot for ChunkOut {
    fn encode(&self, w: &mut Writer) {
        self.stages.encode(w);
        self.out.encode(w);
        w.u64(self.bytes_out);
        match &self.partial {
            None => w.bool(false),
            Some((entries, shuffled)) => {
                w.bool(true);
                w.usize(entries.len());
                for (k, st, costs) in entries {
                    w.str(k);
                    st.encode(w);
                    costs.encode(w);
                }
                w.u64(*shuffled);
            }
        }
        self.taps.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<ChunkOut, CodecError> {
        let stages = Snapshot::decode(r)?;
        let out = Snapshot::decode(r)?;
        let bytes_out = r.u64()?;
        let partial = if r.bool()? {
            let n = r.usize()?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((r.str()?, AggState::decode(r)?, Snapshot::decode(r)?));
            }
            Some((entries, r.u64()?))
        } else {
            None
        };
        Ok(ChunkOut { stages, out, bytes_out, partial, taps: Snapshot::decode(r)? })
    }
}

/// The per-chunk fused-stage pass, extracted from the executor's worker
/// closure so the in-process thread pool and worker shards run *the
/// same code* — byte-identity across placements by construction, not by
/// parallel maintenance of two loops.
pub struct StageKernel<'a> {
    /// Chain constituents executed per batch.
    pub ops: &'a [&'a Operator],
    /// Trailing combinable Reduce folded after the chain (key,
    /// aggregate, its cost model), when the whole stage survived the
    /// schedule.
    pub fold: Option<(&'a KeyFn, &'a Aggregate, CostModel)>,
    /// Interior boundaries to tap, as in-chain stage indices.
    pub tapped: &'a [usize],
    pub work_scale: f64,
    /// Total constituent count of the stage (fold stage attribution).
    pub chain_len: usize,
}

impl StageKernel<'_> {
    /// Runs one chunk through the whole stage. `stage_at` tracks the
    /// stage index currently executing so a panic can be attributed.
    pub fn run_chunk(
        &self,
        batches: Vec<RecordBatch>,
        arena: &mut BatchArena,
        stage_at: &Cell<usize>,
    ) -> ChunkOut {
        let mut stages: Vec<ChunkStats> =
            (0..self.ops.len()).map(|_| ChunkStats::default()).collect();
        let mut taps: Vec<Vec<Record>> = vec![Vec::new(); self.tapped.len()];
        let mut done: Vec<Record> = Vec::new();
        // lint:hot_loop(begin): fused-stage worker batch loop
        for batch in batches {
            let mut cur = batch.records;
            for (s, op) in self.ops.iter().enumerate() {
                stage_at.set(s);
                // lint:allow(wall_clock): per-op wall_ms is runtime-only diagnostics
                let t0 = Instant::now();
                let tally = &mut stages[s];
                let mut next = Vec::with_capacity(cur.len());
                let charge = |tally: &mut ChunkStats, r: &Record| {
                    tally.bytes_in += r.approx_bytes();
                    tally.costs.push(
                        self.work_scale
                            * op.cost.record_cost_secs(r.text().map(str::len).unwrap_or(64)),
                    );
                };
                // One dispatch per batch per stage: the closure-variant
                // match is hoisted out of the record loop.
                match op.func() {
                    OpFunc::Map(f) => {
                        for r in cur {
                            charge(tally, &r);
                            next.push(f(r));
                        }
                    }
                    OpFunc::FlatMap(f) => {
                        for r in cur {
                            charge(tally, &r);
                            next.extend(f(r));
                        }
                    }
                    OpFunc::Filter(f) => {
                        for r in cur {
                            charge(tally, &r);
                            if f(&r) {
                                next.push(r);
                            }
                        }
                    }
                    OpFunc::Reduce { .. } => {
                        unreachable!("reduce is never part of a chain")
                    }
                }
                tally.wall_ms += t0.elapsed().as_secs_f64() * 1000.0;
                cur = next;
                if let Some(t) = self.tapped.iter().position(|&ts| ts == s) {
                    taps[t].extend(cur.iter().cloned());
                }
            }
            done.extend(cur);
            arena.reset();
        }
        // lint:hot_loop(end)
        for tally in &mut stages {
            tally.records_in = tally.costs.len() as u64;
        }
        let mut cur = done;
        let partial = if let Some((key, agg, reduce_cost)) = &self.fold {
            stage_at.set(self.chain_len - 1);
            // lint:allow(wall_clock): per-op wall_ms is runtime-only diagnostics
            let t0 = Instant::now();
            let mut tally = ChunkStats::default();
            // lint:allow(hash_iteration): drained into a sorted vec below
            let mut map: HashMap<String, (AggState, Vec<f64>)> = HashMap::new();
            for r in cur {
                tally.records_in += 1;
                tally.bytes_in += r.approx_bytes();
                let cost = self.work_scale
                    * reduce_cost.record_cost_secs(r.text().map(str::len).unwrap_or(64));
                let e = map.entry(key(&r)).or_insert_with(|| (agg.seed(), Vec::new()));
                agg.fold(&mut e.0, &r);
                e.1.push(cost);
            }
            cur = Vec::new();
            // The combiner's shuffle: only the sorted-key partial map
            // crosses the boundary through the codec, not the record
            // stream. The encode borrows the arena's recycled buffer.
            let mut sorted: Vec<(String, (AggState, Vec<f64>))> = map.into_iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            let mut w = Writer::from_vec(arena.take_scratch());
            w.usize(sorted.len());
            for (k, (st, _)) in &sorted {
                w.str(k);
                st.encode(&mut w);
            }
            let wire = w.into_bytes();
            let shuffled = wire.len() as u64;
            let mut rd = Reader::new(&wire);
            let _n = rd.usize().expect("partial map round-trips");
            let entries: Vec<(String, AggState, Vec<f64>)> = sorted
                .into_iter()
                .map(|(k, (_, costs))| {
                    let _k = rd.str().expect("partial map round-trips");
                    let st = AggState::decode(&mut rd).expect("partial map round-trips");
                    (k, st, costs)
                })
                .collect();
            arena.put_scratch(wire);
            tally.wall_ms = t0.elapsed().as_secs_f64() * 1000.0;
            stages.push(tally);
            Some((entries, shuffled))
        } else {
            None
        };
        let bytes_out = cur.iter().map(Record::approx_bytes).sum();
        ChunkOut { stages, out: cur, bytes_out, partial, taps }
    }
}

// ---------------------------------------------------------------------------
// Wire tasks
// ---------------------------------------------------------------------------

/// The stage setup shipped to a worker in a `K_STAGE` frame.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)] // one StageTask per run; size is irrelevant
pub enum StageTask {
    /// A fused Map/FlatMap/Filter chain, optionally folding a trailing
    /// combinable Reduce; one `K_RESULT` per `K_DATA` chunk.
    Pipeline {
        ops: Vec<OpSpec>,
        fold: Option<OpSpec>,
        tapped: Vec<usize>,
        work_scale: f64,
        batch_size: usize,
        chain_len: usize,
    },
    /// The uncombined-Reduce shuffle target: group arriving records by
    /// key (arrival order preserved per key, spilling over-memory
    /// tables to sorted disk runs), then stream sorted groups back
    /// after `K_EOF_DATA`.
    GroupBy { key: KeySpec, spill_threshold: usize },
}

impl Snapshot for StageTask {
    fn encode(&self, w: &mut Writer) {
        match self {
            StageTask::Pipeline { ops, fold, tapped, work_scale, batch_size, chain_len } => {
                w.u8(0);
                ops.encode(w);
                fold.encode(w);
                tapped.encode(w);
                w.f64(*work_scale);
                w.usize(*batch_size);
                w.usize(*chain_len);
            }
            StageTask::GroupBy { key, spill_threshold } => {
                w.u8(1);
                key.encode(w);
                w.usize(*spill_threshold);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<StageTask, CodecError> {
        match r.u8()? {
            0 => Ok(StageTask::Pipeline {
                ops: Snapshot::decode(r)?,
                fold: Snapshot::decode(r)?,
                tapped: Snapshot::decode(r)?,
                work_scale: r.f64()?,
                batch_size: r.usize()?,
                chain_len: r.usize()?,
            }),
            1 => Ok(StageTask::GroupBy { key: KeySpec::decode(r)?, spill_threshold: r.usize()? }),
            tag => Err(CodecError::BadTag { what: "stage task", tag }),
        }
    }
}

fn encode_chunk_payload(chunk_idx: usize, records: &[Record]) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(chunk_idx);
    w.usize(records.len());
    for r in records {
        r.encode(&mut w);
    }
    w.into_bytes()
}

fn decode_chunk_payload(payload: &[u8]) -> Result<(usize, Vec<Record>), CodecError> {
    let mut r = Reader::new(payload);
    let chunk_idx = r.usize()?;
    let n = r.usize()?;
    let mut records = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        records.push(Record::decode(&mut r)?);
    }
    Ok((chunk_idx, records))
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

/// Monotone id for spill-run temp files (no wall clock — deterministic
/// surfaces must not depend on time, and file names never leave the
/// worker anyway).
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A worker-side group table with spill-to-disk: groups preserve
/// arrival order (insertion-ordered via `order`; `index` is only a
/// lookup), and when the approximate in-memory footprint exceeds the
/// threshold the table drains to a sorted-run file on disk.
struct GroupTable {
    key: KeyFn,
    spill_threshold: usize,
    // lint:allow(hash_iteration): lookup only; iteration order comes from `order`
    index: HashMap<String, usize>,
    order: Vec<(String, Vec<Record>)>,
    mem_bytes: usize,
    runs: Vec<PathBuf>,
    spill_bytes: u64,
}

impl GroupTable {
    fn new(key: KeyFn, spill_threshold: usize) -> GroupTable {
        GroupTable {
            key,
            spill_threshold: spill_threshold.max(1),
            // lint:allow(hash_iteration): lookup index only; emission walks `order` (arrival order)
            index: HashMap::new(),
            order: Vec::new(),
            mem_bytes: 0,
            runs: Vec::new(),
            spill_bytes: 0,
        }
    }

    fn fold(&mut self, records: Vec<Record>) -> Result<(), TransportError> {
        for r in records {
            let k = (self.key)(&r);
            self.mem_bytes += r.approx_bytes() as usize + k.len();
            match self.index.get(&k) {
                Some(&slot) => self.order[slot].1.push(r),
                None => {
                    self.index.insert(k.clone(), self.order.len());
                    self.order.push((k, vec![r]));
                }
            }
        }
        if self.mem_bytes > self.spill_threshold {
            self.spill()?;
        }
        Ok(())
    }

    /// Drains the in-memory table to one sorted-run file. Within a run
    /// each key appears once with its records in arrival order; across
    /// runs, earlier runs hold earlier arrivals — the merge preserves
    /// global arrival order per key.
    fn spill(&mut self) -> Result<(), TransportError> {
        let mut drained = std::mem::take(&mut self.order);
        self.index.clear();
        self.mem_bytes = 0;
        if drained.is_empty() {
            return Ok(());
        }
        drained.sort_by(|a, b| a.0.cmp(&b.0));
        let path = std::env::temp_dir().join(format!(
            "websift-spill-{}-{}.run",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let file = File::create(&path)?;
        let mut out = BufWriter::new(file);
        for (k, rs) in &drained {
            let mut w = Writer::new();
            w.str(k);
            w.usize(rs.len());
            for r in rs {
                r.encode(&mut w);
            }
            let bytes = w.into_bytes();
            self.spill_bytes += bytes.len() as u64;
            write_frame(&mut out, 0, &bytes)?;
        }
        out.flush()?;
        self.runs.push(path);
        Ok(())
    }

    /// Streams the merged, key-sorted groups back as batched `K_GROUPS`
    /// frames followed by `K_DONE`, then resets the table.
    fn emit_groups<R: Read, W: Write>(
        &mut self,
        chan: &mut FrameChannel<R, W>,
    ) -> Result<(), TransportError> {
        let mut mem = std::mem::take(&mut self.order);
        self.index.clear();
        self.mem_bytes = 0;
        mem.sort_by(|a, b| a.0.cmp(&b.0));
        // Merge cursors: spill runs in spill order (earliest arrivals
        // first), the in-memory remainder last (latest arrivals).
        let runs = std::mem::take(&mut self.runs);
        let mut cursors: Vec<Cursor> = Vec::with_capacity(runs.len() + 1);
        for path in &runs {
            let file = File::open(path)?;
            cursors.push(Cursor { head: None, rest: CursorRest::Run(BufReader::new(file)) });
        }
        cursors.push(Cursor { head: None, rest: CursorRest::Mem(mem.into_iter()) });
        for c in &mut cursors {
            c.advance()?;
        }
        let flush_bytes = self.spill_threshold;
        let mut batch: Vec<(String, Vec<Record>)> = Vec::new();
        let mut batch_bytes = 0usize;
        while let Some(min_key) =
            cursors.iter().filter_map(|c| c.head.as_ref().map(|(k, _)| k.clone())).min()
        {
            let mut records: Vec<Record> = Vec::new();
            for c in &mut cursors {
                if c.head.as_ref().is_some_and(|(k, _)| *k == min_key) {
                    if let Some((_, rs)) = c.head.take() {
                        records.extend(rs);
                    }
                    c.advance()?;
                }
            }
            batch_bytes +=
                min_key.len() + records.iter().map(|r| r.approx_bytes() as usize).sum::<usize>();
            batch.push((min_key, records));
            if batch_bytes >= flush_bytes {
                let mut w = Writer::new();
                batch.encode(&mut w);
                chan.send(K_GROUPS, &w.into_bytes())?;
                batch = Vec::new();
                batch_bytes = 0;
            }
        }
        if !batch.is_empty() {
            let mut w = Writer::new();
            batch.encode(&mut w);
            chan.send(K_GROUPS, &w.into_bytes())?;
        }
        let mut w = Writer::new();
        w.u64(runs.len() as u64);
        w.u64(self.spill_bytes);
        chan.send(K_DONE, &w.into_bytes())?;
        for path in runs {
            let _ = std::fs::remove_file(path);
        }
        self.spill_bytes = 0;
        Ok(())
    }
}

struct Cursor {
    head: Option<(String, Vec<Record>)>,
    rest: CursorRest,
}

enum CursorRest {
    Run(BufReader<File>),
    Mem(std::vec::IntoIter<(String, Vec<Record>)>),
}

impl Cursor {
    fn advance(&mut self) -> Result<(), TransportError> {
        self.head = match &mut self.rest {
            CursorRest::Run(file) => match read_frame(file)? {
                Some((_, payload)) => {
                    let mut r = Reader::new(&payload);
                    let key = r.str().map_err(TransportError::Codec)?;
                    let n = r.usize().map_err(TransportError::Codec)?;
                    let mut rs = Vec::with_capacity(n.min(1 << 20));
                    for _ in 0..n {
                        rs.push(Record::decode(&mut r).map_err(TransportError::Codec)?);
                    }
                    Some((key, rs))
                }
                None => None,
            },
            CursorRest::Mem(it) => it.next(),
        };
        Ok(())
    }
}

#[allow(clippy::large_enum_variant)] // one WorkerMode per serve loop; size is irrelevant
enum WorkerMode {
    Pipeline {
        ops: Vec<Operator>,
        fold_op: Option<Operator>,
        tapped: Vec<usize>,
        work_scale: f64,
        batch_size: usize,
        chain_len: usize,
        arena: BatchArena,
    },
    GroupBy(GroupTable),
}

/// The worker shard's serve loop: speaks the frame protocol over any
/// byte channel until `K_BYE` or a clean end-of-stream. Run by the
/// `shard_worker` binary over stdio, and by in-process shard threads
/// over a unix socket pair. A UDF panic inside a chunk is caught and
/// reported as a `K_ERR` frame; channel/codec trouble ends the loop
/// with a typed error.
pub fn worker_serve(reader: impl Read, writer: impl Write) -> Result<(), TransportError> {
    let mut chan = FrameChannel::new(reader, writer);
    let mut mode: Option<WorkerMode> = None;
    loop {
        let Some((kind, payload)) = chan.recv()? else {
            return Ok(());
        };
        match kind {
            K_BYE => return Ok(()),
            K_STAGE => {
                let mut r = Reader::new(&payload);
                let task = StageTask::decode(&mut r).map_err(TransportError::Codec)?;
                mode = Some(match task {
                    StageTask::Pipeline { ops, fold, tapped, work_scale, batch_size, chain_len } => {
                        let built: Vec<Operator> = ops.iter().map(OpSpec::build).collect();
                        let fold_op = fold.as_ref().map(OpSpec::build);
                        if let Some(f) = &fold_op {
                            if !matches!(f.func(), OpFunc::Reduce { .. }) {
                                return Err(TransportError::Protocol {
                                    expected: "a reduce fold spec",
                                    got: K_STAGE,
                                });
                            }
                        }
                        WorkerMode::Pipeline {
                            ops: built,
                            fold_op,
                            tapped,
                            work_scale,
                            batch_size: batch_size.max(1),
                            chain_len,
                            arena: BatchArena::new(),
                        }
                    }
                    StageTask::GroupBy { key, spill_threshold } => {
                        WorkerMode::GroupBy(GroupTable::new(key.key_fn(), spill_threshold))
                    }
                });
            }
            K_DATA => {
                let (chunk_idx, records) =
                    decode_chunk_payload(&payload).map_err(TransportError::Codec)?;
                match &mut mode {
                    Some(WorkerMode::Pipeline {
                        ops,
                        fold_op,
                        tapped,
                        work_scale,
                        batch_size,
                        chain_len,
                        arena,
                    }) => {
                        let refs: Vec<&Operator> = ops.iter().collect();
                        let fold = fold_op.as_ref().and_then(|f| match f.func() {
                            OpFunc::Reduce { key, aggregate } => Some((key, aggregate, f.cost)),
                            _ => None,
                        });
                        let kernel = StageKernel {
                            ops: &refs,
                            fold,
                            tapped,
                            work_scale: *work_scale,
                            chain_len: *chain_len,
                        };
                        let batches = RecordBatch::split(records, *batch_size);
                        let stage_at = Cell::new(0usize);
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            kernel.run_chunk(batches, arena, &stage_at)
                        }));
                        match outcome {
                            Ok(out) => {
                                let mut w = Writer::new();
                                w.usize(chunk_idx);
                                out.encode(&mut w);
                                chan.send(K_RESULT, &w.into_bytes())?;
                            }
                            Err(panic) => {
                                let msg = panic
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| panic.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "worker UDF panicked".to_string());
                                let mut w = Writer::new();
                                w.usize(stage_at.get());
                                w.usize(chunk_idx);
                                w.str(&msg);
                                chan.send(K_ERR, &w.into_bytes())?;
                                // a panic may have poisoned the arena
                                *arena = BatchArena::new();
                            }
                        }
                    }
                    Some(WorkerMode::GroupBy(table)) => {
                        table.fold(records)?;
                        let mut w = Writer::new();
                        w.usize(chunk_idx);
                        chan.send(K_ACK, &w.into_bytes())?;
                    }
                    None => {
                        return Err(TransportError::Protocol {
                            expected: "a STAGE frame before DATA",
                            got: K_DATA,
                        })
                    }
                }
                chan.flush()?;
            }
            K_EOF_DATA => {
                match &mut mode {
                    Some(WorkerMode::GroupBy(table)) => {
                        table.emit_groups(&mut chan)?;
                    }
                    // pipeline stages need no end-of-input marker; the
                    // next STAGE frame resets the mode
                    Some(WorkerMode::Pipeline { .. }) | None => {}
                }
                chan.flush()?;
            }
            other => {
                return Err(TransportError::Protocol {
                    expected: "STAGE, DATA, EOF_DATA, or BYE",
                    got: other,
                })
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side: the shard pool and stage orchestration
// ---------------------------------------------------------------------------

type BoxedRead = Box<dyn Read + Send>;
type BoxedWrite = Box<dyn Write + Send>;
type ShardChannel = FrameChannel<BoxedRead, BoxedWrite>;

enum Peer {
    Thread { join: Option<std::thread::JoinHandle<()>>, kill: UnixStream },
    Child(Child),
}

struct ShardHandle {
    chan: ShardChannel,
    peer: Peer,
}

impl ShardHandle {
    fn frames_total(&self) -> u64 {
        self.chan.frames_sent + self.chan.frames_received
    }

    /// Simulates (or performs) abrupt worker loss: the channel dies
    /// mid-conversation from the peer's point of view.
    fn force_kill(&mut self) {
        match &mut self.peer {
            Peer::Thread { join, kill } => {
                let _ = kill.shutdown(std::net::Shutdown::Both);
                if let Some(j) = join.take() {
                    let _ = j.join();
                }
            }
            Peer::Child(child) => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    fn shutdown(mut self) {
        let _ = self.chan.send(K_BYE, &[]);
        let _ = self.chan.flush();
        match self.peer {
            Peer::Thread { join, .. } => {
                if let Some(j) = join {
                    let _ = j.join();
                }
            }
            Peer::Child(mut child) => {
                let _ = child.wait();
            }
        }
    }
}

fn spawn_worker(kind: &WorkerKind) -> Result<ShardHandle, TransportError> {
    match kind {
        WorkerKind::InProcess => {
            let (parent, worker) = UnixStream::pair()?;
            let worker_r = worker.try_clone()?;
            let join = std::thread::Builder::new()
                .name("websift-shard".to_string())
                .spawn(move || {
                    let _ = worker_serve(BufReader::new(worker_r), worker);
                })?;
            let kill = parent.try_clone()?;
            let parent_r = parent.try_clone()?;
            Ok(ShardHandle {
                chan: FrameChannel::new(
                    Box::new(BufReader::new(parent_r)),
                    Box::new(parent),
                ),
                peer: Peer::Thread { join: Some(join), kill },
            })
        }
        WorkerKind::Process { cmd } => {
            let mut child = Command::new(cmd)
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()?;
            let stdin = child.stdin.take().ok_or(TransportError::Closed)?;
            let stdout = child.stdout.take().ok_or(TransportError::Closed)?;
            Ok(ShardHandle {
                chan: FrameChannel::new(
                    Box::new(BufReader::new(stdout)),
                    Box::new(BufWriter::new(stdin)),
                ),
                peer: Peer::Child(child),
            })
        }
    }
}

/// Failures of a sharded stage run, mapped by the executor onto its
/// own error vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardRunError {
    /// A worker reported a UDF panic (`K_ERR`) — same semantics as an
    /// in-process chunk panic.
    Panicked { stage: usize, chunk: usize },
    /// The shard's channel died mid-conversation (crash or injected
    /// kill) and `respawn_lost` was off.
    Lost { shard: usize },
    /// The conversation desynchronized (unexpected frame, corrupt
    /// payload).
    Protocol { shard: usize, detail: String },
}

impl std::fmt::Display for ShardRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardRunError::Panicked { stage, chunk } => {
                write!(f, "worker reported a panic in stage {stage}, chunk {chunk}")
            }
            ShardRunError::Lost { shard } => write!(f, "worker shard {shard} lost"),
            ShardRunError::Protocol { shard, detail } => {
                write!(f, "shard {shard} protocol violation: {detail}")
            }
        }
    }
}

/// A pool of N worker shards, living for the duration of one executor
/// run. Spawns shards lazily, counts frames for the kill hook, and
/// shuts every worker down (BYE + join/wait) on drop.
pub struct ShardPool {
    cfg: ShardConfig,
    handles: Vec<Option<ShardHandle>>,
    kill_fired: Arc<AtomicBool>,
    /// Channel totals of shards that have died (their live counters are
    /// gone with the handle).
    dead_frames: u64,
    dead_wire: u64,
    /// Workers respawned after a loss.
    pub respawns: u64,
}

impl ShardPool {
    pub fn new(cfg: ShardConfig) -> ShardPool {
        let n = cfg.shards.max(1);
        ShardPool {
            cfg,
            handles: (0..n).map(|_| None).collect(),
            kill_fired: Arc::new(AtomicBool::new(false)),
            dead_frames: 0,
            dead_wire: 0,
            respawns: 0,
        }
    }

    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    pub fn shards(&self) -> usize {
        self.handles.len()
    }

    /// Total frames carried over all shard channels so far (both
    /// directions, dead shards included).
    pub fn frames_total(&self) -> u64 {
        self.dead_frames
            + self
                .handles
                .iter()
                .flatten()
                .map(ShardHandle::frames_total)
                .sum::<u64>()
    }

    /// Total frame payload bytes over all shard channels so far.
    pub fn wire_bytes_total(&self) -> u64 {
        self.dead_wire
            + self
                .handles
                .iter()
                .flatten()
                .map(|h| h.chan.payload_bytes)
                .sum::<u64>()
    }

    fn take_or_spawn(&mut self, shard: usize) -> Result<ShardHandle, ShardRunError> {
        match self.handles[shard].take() {
            Some(h) => Ok(h),
            None => spawn_worker(&self.cfg.worker).map_err(|e| ShardRunError::Protocol {
                shard,
                detail: format!("spawn failed: {e}"),
            }),
        }
    }

    fn kill_threshold(&self, shard: usize) -> Option<u64> {
        match self.cfg.kill {
            Some(k) if k.shard == shard && !self.kill_fired.load(Ordering::Relaxed) => {
                Some(k.after_frames)
            }
            _ => None,
        }
    }

    fn bury(&mut self, handle: ShardHandle) {
        self.dead_frames += handle.frames_total();
        self.dead_wire += handle.chan.payload_bytes;
        drop(handle);
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for slot in &mut self.handles {
            if let Some(handle) = slot.take() {
                handle.shutdown();
            }
        }
    }
}

/// What one shard's conversation produced this stage.
struct ShardThreadOut {
    shard: usize,
    results: Vec<(usize, ChunkOut)>,
    err: Option<ShardRunError>,
    /// The handle, unless the shard died.
    handle: Option<ShardHandle>,
    /// Work items that never produced a result (for respawn re-runs).
    undone: Vec<(usize, Vec<Record>)>,
}

fn lost_or_protocol(shard: usize, e: TransportError) -> ShardRunError {
    match e {
        TransportError::Frame(_) | TransportError::Closed => ShardRunError::Lost { shard },
        other => ShardRunError::Protocol { shard, detail: other.to_string() },
    }
}

/// Drives one shard through a pipeline stage: STAGE, then DATA frames
/// under the credit window, collecting RESULT frames.
fn drive_pipeline_shard(
    shard: usize,
    mut handle: ShardHandle,
    task_bytes: &[u8],
    work: Vec<(usize, Vec<Record>)>,
    window: usize,
    kill_after: Option<u64>,
    kill_fired: &AtomicBool,
) -> ShardThreadOut {
    let mut results: Vec<(usize, ChunkOut)> = Vec::new();
    let outcome: Result<(), ShardRunError> = (|| {
        handle
            .chan
            .send(K_STAGE, task_bytes)
            .and_then(|()| handle.chan.flush())
            .map_err(|e| lost_or_protocol(shard, e))?;
        let kill_due = |chan: &ShardChannel| {
            kill_after.is_some_and(|n| chan.frames_sent + chan.frames_received >= n)
        };
        let mut win = crate::transport::CreditWindow::new(window);
        let mut cursor = 0usize;
        loop {
            while win.has_credit() && cursor < work.len() {
                let (idx, records) = &work[cursor];
                let payload = encode_chunk_payload(*idx, records);
                handle
                    .chan
                    .send(K_DATA, &payload)
                    .and_then(|()| handle.chan.flush())
                    .map_err(|e| lost_or_protocol(shard, e))?;
                win.on_sent();
                cursor += 1;
                if kill_due(&handle.chan) {
                    kill_fired.store(true, Ordering::Relaxed);
                    handle.force_kill();
                    return Err(ShardRunError::Lost { shard });
                }
            }
            if win.in_flight() == 0 && cursor >= work.len() {
                return Ok(());
            }
            match handle.chan.recv() {
                Ok(Some((K_RESULT, payload))) => {
                    let mut r = Reader::new(&payload);
                    let parsed = r
                        .usize()
                        .and_then(|idx| ChunkOut::decode(&mut r).map(|out| (idx, out)));
                    match parsed {
                        Ok(pair) => results.push(pair),
                        Err(e) => {
                            return Err(ShardRunError::Protocol {
                                shard,
                                detail: format!("bad RESULT payload: {e}"),
                            })
                        }
                    }
                    win.on_answered();
                    if kill_due(&handle.chan) {
                        kill_fired.store(true, Ordering::Relaxed);
                        handle.force_kill();
                        return Err(ShardRunError::Lost { shard });
                    }
                }
                Ok(Some((K_ERR, payload))) => {
                    let mut r = Reader::new(&payload);
                    let stage = r.usize().unwrap_or(0);
                    let chunk = r.usize().unwrap_or(0);
                    return Err(ShardRunError::Panicked { stage, chunk });
                }
                Ok(Some((kind, _))) => {
                    return Err(ShardRunError::Protocol {
                        shard,
                        detail: format!("unexpected frame kind {kind:#04x} awaiting RESULT"),
                    })
                }
                Ok(None) => return Err(ShardRunError::Lost { shard }),
                Err(e) => return Err(lost_or_protocol(shard, e)),
            }
        }
    })();
    let err = outcome.err();
    // lint:allow(hash_iteration): membership test only; `undone` keeps `work`'s order
    let done: std::collections::HashSet<usize> =
        results.iter().map(|(idx, _)| *idx).collect();
    let undone = work.into_iter().filter(|(idx, _)| !done.contains(idx)).collect();
    ShardThreadOut { shard, results, err, handle: Some(handle), undone }
}

/// A shard's assignment for one stage run: `(shard index, live handle,
/// [(chunk index, records)], kill-after-frames test hook)`.
type ShardWork = (usize, ShardHandle, Vec<(usize, Vec<Record>)>, Option<u64>);

/// What a reduce feeder thread hands back: `(shard index, output when
/// clean, error, handle when still joinable, the slice for re-runs)`.
type ReduceThreadOut = (
    usize,
    Option<ReduceShardOut>,
    Option<ShardRunError>,
    Option<ShardHandle>,
    Vec<(usize, Vec<Record>)>,
);

/// Runs one pipeline stage across the pool: chunks are dealt
/// round-robin over the shards, each shard driven by its own feeder
/// thread under the per-edge credit window, and results are merged
/// back in chunk order — the exact merge order of the in-process pass.
pub fn run_stage_sharded(
    pool: &mut ShardPool,
    task: &StageTask,
    chunks: Vec<Vec<Record>>,
) -> Result<Vec<ChunkOut>, ShardRunError> {
    let n_chunks = chunks.len();
    if n_chunks == 0 {
        return Ok(Vec::new());
    }
    let n_shards = pool.shards();
    let mut assigned: Vec<Vec<(usize, Vec<Record>)>> = (0..n_shards).map(|_| Vec::new()).collect();
    for (i, c) in chunks.into_iter().enumerate() {
        assigned[i % n_shards].push((i, c));
    }
    let mut task_w = Writer::new();
    task.encode(&mut task_w);
    let task_bytes = task_w.into_bytes();
    let window = pool.cfg.window;

    let mut shard_work: Vec<ShardWork> = Vec::new();
    for (shard, work) in assigned.into_iter().enumerate() {
        if work.is_empty() {
            continue;
        }
        let handle = pool.take_or_spawn(shard)?;
        let kill_after = pool.kill_threshold(shard);
        shard_work.push((shard, handle, work, kill_after));
    }

    let kill_fired = Arc::clone(&pool.kill_fired);
    let outs: Vec<ShardThreadOut> = std::thread::scope(|scope| {
        let task_bytes = &task_bytes;
        let kill_fired = &kill_fired;
        let joins: Vec<_> = shard_work
            .into_iter()
            .map(|(shard, handle, work, kill_after)| {
                scope.spawn(move || {
                    drive_pipeline_shard(
                        shard, handle, task_bytes, work, window, kill_after, kill_fired,
                    )
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| j.join().unwrap_or(ShardThreadOut {
                shard: 0,
                results: Vec::new(),
                err: Some(ShardRunError::Protocol {
                    shard: 0,
                    detail: "shard feeder thread panicked".to_string(),
                }),
                handle: None,
                undone: Vec::new(),
            }))
            .collect()
    });

    let mut slots: Vec<Option<ChunkOut>> = (0..n_chunks).map(|_| None).collect();
    let mut first_err: Option<ShardRunError> = None;
    for out in outs {
        for (idx, chunk_out) in out.results {
            slots[idx] = Some(chunk_out);
        }
        // A handle that hit any error is dead or desynchronized: bury it
        // (keeping its frame counters) rather than ever reusing it.
        match (&out.err, out.handle) {
            (None, Some(h)) => pool.handles[out.shard] = Some(h),
            (_, Some(h)) => pool.bury(h),
            (_, None) => {}
        }
        if let Some(err) = out.err {
            match err {
                ShardRunError::Lost { shard } if pool.cfg.respawn_lost => {
                    // Respawn and re-run whatever never reported back.
                    pool.respawns += 1;
                    let fresh = pool.take_or_spawn(shard)?;
                    let redo = drive_pipeline_shard(
                        shard,
                        fresh,
                        &task_bytes,
                        out.undone,
                        window,
                        None,
                        &pool.kill_fired,
                    );
                    for (idx, chunk_out) in redo.results {
                        slots[idx] = Some(chunk_out);
                    }
                    match (&redo.err, redo.handle) {
                        (None, Some(h)) => pool.handles[shard] = Some(h),
                        (_, Some(h)) => pool.bury(h),
                        (_, None) => {}
                    }
                    if let Some(e) = redo.err {
                        first_err.get_or_insert(e);
                    }
                }
                // a panic outranks a loss: it is deterministic and the
                // in-process path would have surfaced it too
                ShardRunError::Panicked { .. } => {
                    first_err = Some(err);
                }
                other => {
                    first_err.get_or_insert(other);
                }
            }
        }
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    let mut out = Vec::with_capacity(n_chunks);
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(c) => out.push(c),
            None => {
                return Err(ShardRunError::Protocol {
                    shard: idx % n_shards,
                    detail: format!("chunk {idx} never produced a result"),
                })
            }
        }
    }
    Ok(out)
}

/// One shard's reduce contribution: key-sorted groups (records in
/// arrival order within each key) plus spill statistics.
#[derive(Debug, Default)]
pub struct ReduceShardOut {
    pub groups: Vec<(String, Vec<Record>)>,
    pub spill_runs: u64,
    pub spill_bytes: u64,
}

fn drive_reduce_shard(
    shard: usize,
    mut handle: ShardHandle,
    task_bytes: &[u8],
    work: Vec<(usize, Vec<Record>)>,
    window: usize,
    kill_after: Option<u64>,
    kill_fired: &AtomicBool,
) -> (Option<ReduceShardOut>, Option<ShardRunError>, ShardHandle) {
    let mut reduce_out = ReduceShardOut::default();
    let outcome: Result<(), ShardRunError> = (|| {
        handle
            .chan
            .send(K_STAGE, task_bytes)
            .and_then(|()| handle.chan.flush())
            .map_err(|e| lost_or_protocol(shard, e))?;
        let kill_due = |chan: &ShardChannel| {
            kill_after.is_some_and(|n| chan.frames_sent + chan.frames_received >= n)
        };
        let mut win = crate::transport::CreditWindow::new(window);
        let mut cursor = 0usize;
        // Feed every sub-chunk under the credit window (ACK per DATA).
        while cursor < work.len() || win.in_flight() > 0 {
            while win.has_credit() && cursor < work.len() {
                let (idx, records) = &work[cursor];
                let payload = encode_chunk_payload(*idx, records);
                handle
                    .chan
                    .send(K_DATA, &payload)
                    .and_then(|()| handle.chan.flush())
                    .map_err(|e| lost_or_protocol(shard, e))?;
                win.on_sent();
                cursor += 1;
                if kill_due(&handle.chan) {
                    kill_fired.store(true, Ordering::Relaxed);
                    handle.force_kill();
                    return Err(ShardRunError::Lost { shard });
                }
            }
            if win.in_flight() == 0 {
                continue;
            }
            match handle.chan.recv() {
                Ok(Some((K_ACK, _))) => {
                    win.on_answered();
                    if kill_due(&handle.chan) {
                        kill_fired.store(true, Ordering::Relaxed);
                        handle.force_kill();
                        return Err(ShardRunError::Lost { shard });
                    }
                }
                Ok(Some((kind, _))) => {
                    return Err(ShardRunError::Protocol {
                        shard,
                        detail: format!("unexpected frame kind {kind:#04x} awaiting ACK"),
                    })
                }
                Ok(None) => return Err(ShardRunError::Lost { shard }),
                Err(e) => return Err(lost_or_protocol(shard, e)),
            }
        }
        handle
            .chan
            .send(K_EOF_DATA, &[])
            .and_then(|()| handle.chan.flush())
            .map_err(|e| lost_or_protocol(shard, e))?;
        // Collect the sorted group stream.
        loop {
            match handle.chan.recv() {
                Ok(Some((K_GROUPS, payload))) => {
                    let mut r = Reader::new(&payload);
                    let batch: Vec<(String, Vec<Record>)> =
                        Snapshot::decode(&mut r).map_err(|e| ShardRunError::Protocol {
                            shard,
                            detail: format!("bad GROUPS payload: {e}"),
                        })?;
                    reduce_out.groups.extend(batch);
                    if kill_due(&handle.chan) {
                        kill_fired.store(true, Ordering::Relaxed);
                        handle.force_kill();
                        return Err(ShardRunError::Lost { shard });
                    }
                }
                Ok(Some((K_DONE, payload))) => {
                    let mut r = Reader::new(&payload);
                    reduce_out.spill_runs = r.u64().unwrap_or(0);
                    reduce_out.spill_bytes = r.u64().unwrap_or(0);
                    return Ok(());
                }
                Ok(Some((kind, _))) => {
                    return Err(ShardRunError::Protocol {
                        shard,
                        detail: format!("unexpected frame kind {kind:#04x} awaiting GROUPS"),
                    })
                }
                Ok(None) => return Err(ShardRunError::Lost { shard }),
                Err(e) => return Err(lost_or_protocol(shard, e)),
            }
        }
    })();
    let err = outcome.err();
    (if err.is_none() { Some(reduce_out) } else { None }, err, handle)
}

/// Runs an uncombined Reduce's shuffle across the pool. `slices[s]` is
/// shard `s`'s *contiguous* run of sub-chunks — contiguity is what lets
/// the parent rebuild global arrival order per key by concatenating
/// shard outputs in shard order. Returns one [`ReduceShardOut`] per
/// shard, in shard order.
pub fn run_reduce_sharded(
    pool: &mut ShardPool,
    key: &KeySpec,
    slices: Vec<Vec<Vec<Record>>>,
) -> Result<Vec<ReduceShardOut>, ShardRunError> {
    let n_shards = pool.shards();
    let task = StageTask::GroupBy {
        key: key.clone(),
        spill_threshold: pool.cfg.spill_threshold_bytes,
    };
    let mut task_w = Writer::new();
    task.encode(&mut task_w);
    let task_bytes = task_w.into_bytes();
    let window = pool.cfg.window;

    let mut shard_work: Vec<ShardWork> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (shard, slice) in slices.into_iter().enumerate().take(n_shards) {
        if slice.is_empty() {
            continue;
        }
        let work: Vec<(usize, Vec<Record>)> = slice.into_iter().enumerate().collect();
        let handle = pool.take_or_spawn(shard)?;
        let kill_after = pool.kill_threshold(shard);
        shard_work.push((shard, handle, work, kill_after));
        active.push(shard);
    }

    let kill_fired = Arc::clone(&pool.kill_fired);
    let outs: Vec<ReduceThreadOut> = std::thread::scope(|scope| {
        let task_bytes = &task_bytes;
        let kill_fired = &kill_fired;
        let joins: Vec<_> = shard_work
            .into_iter()
            .map(|(shard, handle, work, kill_after)| {
                scope.spawn(move || {
                    let redo = work.clone();
                    let (out, err, handle) = drive_reduce_shard(
                        shard, handle, task_bytes, work, window, kill_after, kill_fired,
                    );
                    (shard, out, err, Some(handle), redo)
                })
            })
            .collect();
        joins
            .into_iter()
            .map(|j| {
                j.join().unwrap_or((
                    0,
                    None,
                    Some(ShardRunError::Protocol {
                        shard: 0,
                        detail: "shard feeder thread panicked".to_string(),
                    }),
                    None,
                    Vec::new(),
                ))
            })
            .collect()
    });

    let mut per_shard: Vec<Option<ReduceShardOut>> = (0..n_shards).map(|_| None).collect();
    let mut first_err: Option<ShardRunError> = None;
    for (shard, out, err, handle, redo_work) in outs {
        // Bury errored handles (keeping counters); restore healthy ones.
        match (&err, handle) {
            (None, Some(h)) => pool.handles[shard] = Some(h),
            (_, Some(h)) => pool.bury(h),
            (_, None) => {}
        }
        if let Some(o) = out {
            per_shard[shard] = Some(o);
        }
        if let Some(err) = err {
            match err {
                ShardRunError::Lost { .. } if pool.cfg.respawn_lost => {
                    // Groups only commit at DONE, so a lost reduce shard
                    // simply re-runs its whole slice on a fresh worker.
                    pool.respawns += 1;
                    let fresh = pool.take_or_spawn(shard)?;
                    let (out, err, handle) = drive_reduce_shard(
                        shard,
                        fresh,
                        &task_bytes,
                        redo_work,
                        window,
                        None,
                        &pool.kill_fired,
                    );
                    match (&err, handle) {
                        (None, h) => pool.handles[shard] = Some(h),
                        (_, h) => pool.bury(h),
                    }
                    if let Some(o) = out {
                        per_shard[shard] = Some(o);
                    }
                    if let Some(e) = err {
                        first_err.get_or_insert(e);
                    }
                }
                other => {
                    first_err.get_or_insert(other);
                }
            }
        }
    }
    if let Some(err) = first_err {
        return Err(err);
    }
    let mut result = Vec::with_capacity(n_shards);
    for (shard, slot) in per_shard.into_iter().enumerate() {
        match slot {
            Some(o) => result.push(o),
            None if active.contains(&shard) => {
                return Err(ShardRunError::Protocol {
                    shard,
                    detail: "reduce shard never reported DONE".to_string(),
                })
            }
            None => result.push(ReduceShardOut::default()),
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap as Map;

    fn docs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::new();
                r.set("id", i as i64)
                    .set("text", format!("document {i} with a little body text"));
                r
            })
            .collect()
    }

    fn stamp_spec() -> OpSpec {
        OpSpec::new(
            "stamp",
            Package::Base,
            SpecOp::MapStamp { field: "stamp".into(), from: "id".into(), mul: 3, add: 1 },
        )
    }

    fn reduce_spec() -> OpSpec {
        OpSpec::new(
            "tally",
            Package::Base,
            SpecOp::Reduce {
                key: KeySpec::IntMod { field: "id".into(), modulus: 3, prefix: "g".into() },
                agg: AggSpec::Count { into: "n".into() },
            },
        )
    }

    #[test]
    fn specs_roundtrip_through_the_codec() {
        let specs = vec![
            stamp_spec(),
            OpSpec::new("upper", Package::Ie, SpecOp::MapUpper),
            OpSpec::new("grow", Package::Wa, SpecOp::MapGrow { suffix: " lorem".into() }),
            OpSpec::new("dup", Package::Dc, SpecOp::FlatMapDup { copies: 2, tag: "half".into() }),
            OpSpec::new(
                "parity",
                Package::Base,
                SpecOp::FilterIntMod { field: "id".into(), modulus: 2, keep: 0 },
            ),
            reduce_spec().with_cost(CostModel {
                startup_secs: 2.5,
                memory_bytes: 1 << 20,
                us_per_char: 0.25,
                quadratic_ref: Some(900.0),
            }),
        ];
        for spec in specs {
            let mut w = Writer::new();
            spec.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = OpSpec::decode(&mut r).unwrap();
            assert_eq!(back, spec);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn bad_spec_tags_are_typed_errors() {
        let mut w = Writer::new();
        w.str("x");
        w.u8(200); // bogus package tag
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(OpSpec::decode(&mut r), Err(CodecError::BadTag { .. })));
    }

    #[test]
    fn built_operators_execute_their_recipes() {
        let stamp = stamp_spec().build();
        let OpFunc::Map(f) = stamp.func() else { panic!("stamp is a map") };
        let mut r = Record::new();
        r.set("id", 7i64);
        let out = f(r);
        assert_eq!(out.get("stamp").and_then(Value::as_int), Some(22));
        assert_eq!(stamp.reads, vec!["id".to_string()]);
        assert_eq!(stamp.writes, vec!["stamp".to_string()]);
        assert!(stamp.spec().is_some());
    }

    #[test]
    fn worker_serves_a_pipeline_stage_identically_to_a_direct_kernel_run() {
        let specs = vec![
            stamp_spec(),
            OpSpec::new(
                "parity",
                Package::Base,
                SpecOp::FilterIntMod { field: "id".into(), modulus: 2, keep: 0 },
            ),
        ];
        let ops: Vec<Operator> = specs.iter().map(OpSpec::build).collect();
        let refs: Vec<&Operator> = ops.iter().collect();
        let kernel = StageKernel {
            ops: &refs,
            fold: None,
            tapped: &[],
            work_scale: 1.0,
            chain_len: 2,
        };
        let mut arena = BatchArena::new();
        let direct = kernel.run_chunk(
            RecordBatch::split(docs(10), 4),
            &mut arena,
            &Cell::new(0),
        );

        let mut pool = ShardPool::new(ShardConfig::in_process(1));
        let task = StageTask::Pipeline {
            ops: specs,
            fold: None,
            tapped: vec![],
            work_scale: 1.0,
            batch_size: 4,
            chain_len: 2,
        };
        let outs = run_stage_sharded(&mut pool, &task, vec![docs(10)]).unwrap();
        assert_eq!(outs.len(), 1);
        let sharded = &outs[0];
        assert_eq!(sharded.out, direct.out);
        assert_eq!(sharded.bytes_out, direct.bytes_out);
        assert_eq!(sharded.stages.len(), direct.stages.len());
        for (a, b) in sharded.stages.iter().zip(&direct.stages) {
            assert_eq!(a.records_in, b.records_in);
            assert_eq!(a.bytes_in, b.bytes_in);
            assert_eq!(
                a.costs.iter().map(|c| c.to_bits()).collect::<Vec<_>>(),
                b.costs.iter().map(|c| c.to_bits()).collect::<Vec<_>>()
            );
        }
        assert!(pool.frames_total() > 0);
    }

    #[test]
    fn group_by_worker_spills_and_streams_sorted_arrival_ordered_groups() {
        let key = KeySpec::IntMod { field: "id".into(), modulus: 3, prefix: "g".into() };
        // Tiny threshold: every fold spills, the merge walks disk runs.
        let mut pool = ShardPool::new(ShardConfig::in_process(1).with_spill_threshold(64));
        let input = docs(30);
        let slices = vec![input.chunks(7).map(<[Record]>::to_vec).collect()];
        let outs = run_reduce_sharded(&mut pool, &key, slices).unwrap();
        assert_eq!(outs.len(), 1);
        let out = &outs[0];
        assert!(out.spill_runs > 0, "tiny threshold must force spills");
        assert!(out.spill_bytes > 0);
        let keys: Vec<&str> = out.groups.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["g0", "g1", "g2"]);
        // Arrival order within each key: ids ascending (input order).
        for (k, rs) in &out.groups {
            let ids: Vec<i64> = rs.iter().filter_map(|r| r.get("id").and_then(Value::as_int)).collect();
            let mut sorted = ids.clone();
            sorted.sort_unstable();
            assert_eq!(ids, sorted, "group {k} lost arrival order");
            assert_eq!(ids.len(), 10);
        }
    }

    #[test]
    fn killed_shard_surfaces_as_lost() {
        let cfg = ShardConfig::in_process(2).with_kill(KillSpec { shard: 1, after_frames: 2 });
        let mut pool = ShardPool::new(cfg);
        let task = StageTask::Pipeline {
            ops: vec![stamp_spec()],
            fold: None,
            tapped: vec![],
            work_scale: 1.0,
            batch_size: 8,
            chain_len: 1,
        };
        let chunks: Vec<Vec<Record>> = (0..6).map(|_| docs(4)).collect();
        match run_stage_sharded(&mut pool, &task, chunks) {
            Err(ShardRunError::Lost { shard }) => assert_eq!(shard, 1),
            other => panic!("expected Lost, got {other:?}"),
        }
    }

    #[test]
    fn respawned_shard_recovers_all_chunks() {
        let cfg = ShardConfig::in_process(2)
            .with_kill(KillSpec { shard: 0, after_frames: 3 })
            .with_respawn(true);
        let mut pool = ShardPool::new(cfg);
        let task = StageTask::Pipeline {
            ops: vec![stamp_spec()],
            fold: None,
            tapped: vec![],
            work_scale: 1.0,
            batch_size: 8,
            chain_len: 1,
        };
        let chunks: Vec<Vec<Record>> = (0..6).map(|i| docs(3 + i)).collect();
        let outs = run_stage_sharded(&mut pool, &task, chunks).unwrap();
        assert_eq!(outs.len(), 6);
        assert_eq!(pool.respawns, 1);
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(out.out.len(), 3 + i);
            assert!(out.out.iter().all(|r| r.contains("stamp")));
        }
    }

    #[test]
    fn chunk_out_roundtrips_with_partials_and_taps() {
        let entries = vec![
            ("a".to_string(), AggState::Count(3), vec![0.5, 0.25]),
            ("b".to_string(), AggState::Sum(41), vec![1.0]),
        ];
        let original = ChunkOut {
            stages: vec![ChunkStats {
                costs: vec![0.125, 0.25],
                records_in: 2,
                bytes_in: 99,
                wall_ms: 7.0,
            }],
            out: docs(3),
            bytes_out: 123,
            partial: Some((entries, 456)),
            taps: vec![docs(1), Vec::new()],
        };
        let mut w = Writer::new();
        original.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = ChunkOut::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.out, original.out);
        assert_eq!(back.bytes_out, original.bytes_out);
        assert_eq!(back.taps, original.taps);
        assert_eq!(back.stages[0].records_in, 2);
        assert_eq!(back.stages[0].wall_ms, 0.0, "wall_ms never crosses the wire");
        let (entries, shuffled) = back.partial.unwrap();
        assert_eq!(shuffled, 456);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(entries[0].1, AggState::Count(3));
        assert_eq!(entries[1].2, vec![1.0]);
    }

    #[test]
    fn key_specs_group_consistently_with_their_built_closures() {
        let spec = KeySpec::IntMod { field: "id".into(), modulus: 4, prefix: "p".into() };
        let f = spec.key_fn();
        let mut seen: Map<String, usize> = Map::new();
        for r in docs(12) {
            *seen.entry(f(&r)).or_default() += 1;
        }
        let mut keys: Vec<(String, usize)> = seen.into_iter().collect();
        keys.sort();
        assert_eq!(
            keys,
            vec![
                ("p0".to_string(), 3),
                ("p1".to_string(), 3),
                ("p2".to_string(), 3),
                ("p3".to_string(), 3)
            ]
        );
    }
}
