//! The logical optimizer: semantic-annotation-driven plan rewriting.
//!
//! This reproduces the SOFA-style optimization the authors built for
//! Stratosphere ("a Meteor script is parsed into an algebraic
//! representation, logically optimized ..."; reference [23] of the paper).
//! Rules implemented:
//!
//! 1. **Filter pull-forward** — a `Filter` moves upstream past a `Map` when
//!    the filter's read set is disjoint from the map's write set. On
//!    UDF-heavy IE flows this is the big win: relevance and length filters
//!    hop over expensive annotators.
//! 2. **Cheap-filter-first** — adjacent filters are ordered by ascending
//!    per-character cost.
//! 3. **Identity elimination** — operators that declare no writes and are
//!    named `identity` are dropped.
//!
//! Every rewrite is recorded so ablation benches can report what fired.

use crate::logical::{LogicalPlan, NodeId, NodeOp};
use crate::operator::Kind;

/// Physical operator fusion: length (≥ 1) of the maximal fusable chain
/// starting at `start`.
///
/// A chain extends from node `j` to node `j + 1` when:
///
/// - node `j + 1` is an operator node whose input is exactly `j`,
/// - both operators are pipelineable (Map/FlatMap/Filter — no shuffle),
/// - `j + 1` has at least one consumer (the executor skips orphaned
///   operators entirely, so fusing into one would change what runs),
/// - the executor reports no `barrier` at `j + 1` (checkpoint or
///   stop-after boundaries must stay observable between stages).
///
/// Fan-out at `j` no longer blocks fusion: when `j` has consumers besides
/// `j + 1`, the executor *tees* the fused pass — it taps the record
/// stream crossing the `j`/`j + 1` boundary (in unfused record order) and
/// publishes the tap as node `j`'s live output for the remaining
/// consumers, which always carry ids beyond the chain. Edges kept by
/// orphaned [`REMOVED_IDENTITY`] nodes tee harmlessly: the orphan never
/// takes its input, exactly as in unfused execution.
///
/// Non-contiguous ids never fuse: the executor replays per-constituent
/// charges in node-id order, and fusing across an id gap would reorder
/// them. Fusion is physical only — the executor still charges and
/// observes every constituent separately, so chain shape never changes a
/// simulated number.
pub fn fusable_chain_len(
    plan: &LogicalPlan,
    start: NodeId,
    barrier: impl Fn(NodeId) -> bool,
) -> usize {
    let nodes = plan.nodes();
    let fusable = |id: NodeId| match &nodes[id].op {
        NodeOp::Op(op) => op.is_pipelineable(),
        _ => false,
    };
    if !fusable(start) {
        return 1;
    }
    let mut last = start;
    while last + 1 < nodes.len()
        && nodes[last + 1].input == Some(last)
        && fusable(last + 1)
        && !plan.children(last + 1).is_empty()
        && !barrier(last + 1)
    {
        last += 1;
    }
    last - start + 1
}

/// A physical stage as planned by fusion: `len` consecutive plan nodes
/// executed in one pass. When `combined_reduce` is set, the last node is
/// a combinable Reduce run via partial aggregation (per-worker fold +
/// final merge) instead of a serial hash shuffle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusedStage {
    pub len: usize,
    pub combined_reduce: bool,
}

/// Plans the fused stage starting at `start`: the maximal fusable chain,
/// extended *through* a trailing Reduce when `combining` is on and the
/// Reduce's aggregate is provably combinable (typed, not `Custom`).
///
/// The extension applies the same structural rules as
/// [`fusable_chain_len`] to the Reduce node — contiguous id, itself
/// consumed, no `barrier`; fan-out at the chain tail tees — because
/// the executor's replay walks constituents in node-id order and the
/// Reduce must be this stage's sole terminal. A combinable Reduce that
/// *heads* a stage is also planned as combined (chunked fold + merge):
/// partial aggregation does not require upstream fusion, only an exact
/// merge. `Custom` aggregates never combine; the analyzer surfaces that
/// silent fallback as the info-level WS010 diagnostic.
pub fn fused_stage(
    plan: &LogicalPlan,
    start: NodeId,
    barrier: impl Fn(NodeId) -> bool,
    combining: bool,
) -> FusedStage {
    let nodes = plan.nodes();
    let combinable = |id: NodeId| match &nodes[id].op {
        NodeOp::Op(op) => op.combinable_reduce(),
        _ => false,
    };
    if combining && combinable(start) {
        return FusedStage { len: 1, combined_reduce: true };
    }
    let len = fusable_chain_len(plan, start, &barrier);
    let last = start + len - 1;
    let pipelineable_start = matches!(&nodes[start].op, NodeOp::Op(op) if op.is_pipelineable());
    if combining
        && pipelineable_start
        && last + 1 < nodes.len()
        && nodes[last + 1].input == Some(last)
        && combinable(last + 1)
        && !plan.children(last + 1).is_empty()
        && !barrier(last + 1)
    {
        return FusedStage { len: len + 1, combined_reduce: true };
    }
    FusedStage { len, combined_reduce: false }
}

/// One stage decision a fresh executor run makes: the stage starts at
/// node `first` and spans `len` consecutive nodes;
/// [`FusedStage::combined_reduce`] semantics for the terminal Reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageDecision {
    pub first: NodeId,
    pub len: usize,
    pub combined_reduce: bool,
}

/// Statically predicts every stage decision a *fresh, unbarriered* run of
/// the executor makes on this plan at the given `fusion`/`combining`
/// configuration — the same walk `Executor::drive` performs, decision for
/// decision. The differential proptest in `tests/explain.rs` pins this
/// against [`crate::executor::FlowOutput::stages`], the decisions the
/// executor actually recorded.
///
/// The executor skips an operator node when, at visit time, no consumer is
/// left to take its output. On a fresh run consumers are decremented only
/// by *later* nodes (children always carry larger ids), none of which have
/// run when the node is visited — so that test reduces exactly to "the
/// node has no children at all", which is what this walk checks. Barriers
/// (checkpoint cadence, `stop_after`) never arise here because both only
/// fire on resumed or truncated runs.
pub fn plan_stages(plan: &LogicalPlan, fusion: bool, combining: bool) -> Vec<StageDecision> {
    let mut stages = Vec::new();
    let mut next = 0;
    while next < plan.len() {
        let node = &plan.nodes()[next];
        let op = match &node.op {
            NodeOp::Op(op) => op,
            _ => {
                next += 1;
                continue;
            }
        };
        if plan.children(next).is_empty() {
            // orphaned operator (e.g. a spliced-out identity): never runs
            next += 1;
            continue;
        }
        let stage = if fusion && op.is_pipelineable() {
            fused_stage(plan, next, |_| false, combining)
        } else if combining && op.combinable_reduce() {
            FusedStage { len: 1, combined_reduce: true }
        } else {
            FusedStage { len: 1, combined_reduce: false }
        };
        stages.push(StageDecision {
            first: next,
            len: stage.len,
            combined_reduce: stage.combined_reduce,
        });
        next += stage.len;
    }
    stages
}

/// Name given to identity nodes spliced out by rule 3. They stay in the
/// node vector (orphaned) so node ids remain stable; the executor and the
/// static analyzer both skip nodes with this name.
pub const REMOVED_IDENTITY: &str = "removed-identity";

/// A record of one applied rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rewrite {
    FilterPulledForward { filter: String, past: String },
    FiltersReordered { first: String, second: String },
    IdentityRemoved { name: String },
}

/// Optimizer entry point: rewrites the plan in place, returning the applied
/// rewrites.
pub fn optimize(plan: &mut LogicalPlan) -> Vec<Rewrite> {
    let mut rewrites = Vec::new();
    loop {
        let mut changed = false;
        changed |= pull_filters_forward(plan, &mut rewrites);
        changed |= reorder_adjacent_filters(plan, &mut rewrites);
        changed |= remove_identities(plan, &mut rewrites);
        if !changed {
            break;
        }
    }
    rewrites
}

/// Swaps the operator payloads of two nodes (keeps plan topology).
fn swap_ops(plan: &mut LogicalPlan, a: NodeId, b: NodeId) {
    let nodes = plan.nodes_mut();
    // Safety of indexing: caller guarantees distinct valid ids.
    assert_ne!(a, b);
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    let (left, right) = nodes.split_at_mut(hi);
    std::mem::swap(&mut left[lo].op, &mut right[0].op);
}

fn op_of(plan: &LogicalPlan, id: NodeId) -> Option<&crate::operator::Operator> {
    match &plan.nodes()[id].op {
        NodeOp::Op(op) => Some(op),
        _ => None,
    }
}

/// Rule 1: move a Filter above its parent Map when field sets are disjoint
/// and the parent has exactly one consumer (this filter).
fn pull_filters_forward(plan: &mut LogicalPlan, rewrites: &mut Vec<Rewrite>) -> bool {
    let mut changed = false;
    for id in 0..plan.len() {
        let Some(filter) = op_of(plan, id) else { continue };
        if filter.kind != Kind::Filter {
            continue;
        }
        let Some(parent_id) = plan.nodes()[id].input else { continue };
        let Some(parent) = op_of(plan, parent_id) else { continue };
        if parent.kind != Kind::Map {
            continue;
        }
        // the parent must feed only this filter, or the swap changes what
        // the siblings see
        if plan.children(parent_id).len() != 1 {
            continue;
        }
        let disjoint = filter
            .reads
            .iter()
            .all(|f| !parent.writes.contains(f));
        // unannotated operators (empty read/write sets) are opaque: no move
        if disjoint && !filter.reads.is_empty() && !parent.writes.is_empty() {
            rewrites.push(Rewrite::FilterPulledForward {
                filter: filter.name.clone(),
                past: parent.name.clone(),
            });
            swap_ops(plan, id, parent_id);
            changed = true;
        }
    }
    changed
}

/// Rule 2: among two adjacent filters, run the cheaper one first.
fn reorder_adjacent_filters(plan: &mut LogicalPlan, rewrites: &mut Vec<Rewrite>) -> bool {
    let mut changed = false;
    for id in 0..plan.len() {
        let Some(second) = op_of(plan, id) else { continue };
        if second.kind != Kind::Filter {
            continue;
        }
        let Some(parent_id) = plan.nodes()[id].input else { continue };
        let Some(first) = op_of(plan, parent_id) else { continue };
        if first.kind != Kind::Filter || plan.children(parent_id).len() != 1 {
            continue;
        }
        if second.cost.us_per_char < first.cost.us_per_char {
            rewrites.push(Rewrite::FiltersReordered {
                first: second.name.clone(),
                second: first.name.clone(),
            });
            swap_ops(plan, id, parent_id);
            changed = true;
        }
    }
    changed
}

/// Rule 3: drop no-op identity operators by splicing them out.
fn remove_identities(plan: &mut LogicalPlan, rewrites: &mut Vec<Rewrite>) -> bool {
    let mut to_remove: Option<(NodeId, NodeId)> = None; // (node, its parent)
    for id in 0..plan.len() {
        let Some(op) = op_of(plan, id) else { continue };
        if op.kind == Kind::Map && op.name == "identity" && op.writes.is_empty() {
            if let Some(parent) = plan.nodes()[id].input {
                to_remove = Some((id, parent));
                break;
            }
        }
    }
    let Some((id, parent)) = to_remove else {
        return false;
    };
    let name = match &plan.nodes()[id].op {
        NodeOp::Op(op) => op.name.clone(),
        _ => unreachable!(),
    };
    // Rewire children of `id` to `parent`, then neutralize the node by
    // turning it into a pass-through that nothing consumes.
    let children = plan.children(id);
    for c in children {
        plan.nodes_mut()[c].input = Some(parent);
    }
    // Orphan the identity node; execution skips unreachable nodes.
    plan.nodes_mut()[id].input = Some(parent);
    plan.nodes_mut()[id].op = NodeOp::Op(crate::operator::Operator::map(
        REMOVED_IDENTITY,
        crate::operator::Package::Base,
        |r| r,
    ));
    rewrites.push(Rewrite::IdentityRemoved { name });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, Operator, Package};
    use crate::record::Record;

    fn expensive_map() -> Operator {
        Operator::map("annotate", Package::Ie, |mut r| {
            r.set("pos", "x");
            r
        })
        .with_reads(&["text"])
        .with_writes(&["pos"])
        .with_cost(CostModel {
            us_per_char: 10.0,
            ..CostModel::default()
        })
    }

    fn cheap_filter(name: &str, field: &str) -> Operator {
        Operator::filter(name, Package::Base, |_| true)
            .with_reads(&[field])
            .with_cost(CostModel {
                us_per_char: 0.001,
                ..CostModel::default()
            })
    }

    fn op_names(plan: &LogicalPlan) -> Vec<String> {
        plan.operators().map(|o| o.name.clone()).collect()
    }

    #[test]
    fn filter_pulled_past_disjoint_map() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let m = plan.add(src, expensive_map()).unwrap();
        let f = plan.add(m, cheap_filter("len-filter", "text")).unwrap();
        plan.sink(f, "out").unwrap();
        let rewrites = optimize(&mut plan);
        assert!(matches!(rewrites[0], Rewrite::FilterPulledForward { .. }));
        assert_eq!(op_names(&plan), vec!["len-filter", "annotate"]);
        plan.validate().unwrap();
    }

    #[test]
    fn filter_not_pulled_past_dependent_map() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let m = plan.add(src, expensive_map()).unwrap();
        let f = plan.add(m, cheap_filter("pos-filter", "pos")).unwrap(); // reads what map writes
        plan.sink(f, "out").unwrap();
        let rewrites = optimize(&mut plan);
        assert!(rewrites.is_empty());
        assert_eq!(op_names(&plan), vec!["annotate", "pos-filter"]);
    }

    #[test]
    fn filter_not_pulled_when_map_has_other_consumers() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let m = plan.add(src, expensive_map()).unwrap();
        let f = plan.add(m, cheap_filter("len-filter", "text")).unwrap();
        let other = plan.add(m, cheap_filter("other", "pos")).unwrap();
        plan.sink(f, "a").unwrap();
        plan.sink(other, "b").unwrap();
        let rewrites = optimize(&mut plan);
        assert!(!rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::FilterPulledForward { .. })));
    }

    #[test]
    fn adjacent_filters_ordered_by_cost() {
        let mut expensive_filter = cheap_filter("expensive", "text");
        expensive_filter.cost.us_per_char = 5.0;
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan.add(src, expensive_filter).unwrap();
        let b = plan.add(a, cheap_filter("cheap", "text")).unwrap();
        plan.sink(b, "out").unwrap();
        let rewrites = optimize(&mut plan);
        assert!(rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::FiltersReordered { .. })));
        assert_eq!(op_names(&plan), vec!["cheap", "expensive"]);
    }

    #[test]
    fn fusable_chain_spans_maximal_pipelineable_run() {
        // src -> map -> filter -> map -> reduce -> map -> sink
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan.add(src, expensive_map()).unwrap();
        let b = plan.add(a, cheap_filter("f", "text")).unwrap();
        let c = plan.add(b, Operator::map("m2", Package::Base, |r| r)).unwrap();
        let red = plan
            .add(c, Operator::reduce("r", Package::Base, |_| String::new(), |_, rs| rs))
            .unwrap();
        let d = plan.add(red, Operator::map("m3", Package::Base, |r| r)).unwrap();
        plan.sink(d, "out").unwrap();
        assert_eq!(fusable_chain_len(&plan, a, |_| false), 3, "map-filter-map fuses");
        assert_eq!(fusable_chain_len(&plan, red, |_| false), 1, "reduce never fuses");
        assert_eq!(fusable_chain_len(&plan, d, |_| false), 1, "sink stops the chain");
        assert_eq!(fusable_chain_len(&plan, src, |_| false), 1, "source is not a chain");
    }

    #[test]
    fn fused_stage_extends_through_combinable_reduce_only() {
        use crate::operator::Aggregate;
        // src -> map -> filter -> reduce -> sink
        let build = |combinable: bool| {
            let mut plan = LogicalPlan::new();
            let src = plan.source("in");
            let a = plan.add(src, expensive_map()).unwrap();
            let b = plan.add(a, cheap_filter("f", "text")).unwrap();
            let red = if combinable {
                Operator::reduce_agg(
                    "r",
                    Package::Base,
                    |_| String::new(),
                    Aggregate::Count { into: "n".into() },
                )
            } else {
                Operator::reduce("r", Package::Base, |_| String::new(), |_, rs| rs)
            };
            let red = plan.add(b, red).unwrap();
            plan.sink(red, "out").unwrap();
            (plan, a, red)
        };

        let (plan, a, red) = build(true);
        assert_eq!(
            fused_stage(&plan, a, |_| false, true),
            FusedStage { len: 3, combined_reduce: true },
            "chain extends through the combinable reduce"
        );
        assert_eq!(
            fused_stage(&plan, a, |_| false, false),
            FusedStage { len: 2, combined_reduce: false },
            "combining off keeps the PR-4 chain"
        );
        assert_eq!(
            fused_stage(&plan, red, |_| false, true),
            FusedStage { len: 1, combined_reduce: true },
            "a lone combinable reduce still pre-aggregates"
        );
        assert_eq!(
            fused_stage(&plan, a, |id| id == red, true),
            FusedStage { len: 2, combined_reduce: false },
            "a barrier at the reduce blocks the extension"
        );

        let (plan, a, red) = build(false);
        assert_eq!(
            fused_stage(&plan, a, |_| false, true),
            FusedStage { len: 2, combined_reduce: false },
            "custom aggregates never combine"
        );
        assert_eq!(
            fused_stage(&plan, red, |_| false, true),
            FusedStage { len: 1, combined_reduce: false }
        );
    }

    #[test]
    fn fan_out_tees_and_barriers_block_fusion() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan.add(src, Operator::map("a", Package::Base, |r| r)).unwrap();
        let b = plan.add(a, Operator::map("b", Package::Base, |r| r)).unwrap();
        let c = plan.add(b, Operator::map("c", Package::Base, |r| r)).unwrap();
        let side = plan.add(b, Operator::map("side", Package::Base, |r| r)).unwrap();
        plan.sink(c, "x").unwrap();
        plan.sink(side, "y").unwrap();
        // b has two consumers; the chain fuses through it anyway — the
        // executor tees b's stream to `side` at the interior boundary
        assert_eq!(fusable_chain_len(&plan, a, |_| false), 3);
        // `side` is not contiguous with the chain, so it stands alone
        assert_eq!(fusable_chain_len(&plan, side, |_| false), 1);
        // a checkpoint boundary between a and b still stops the chain at a
        assert_eq!(fusable_chain_len(&plan, a, |id| id == b), 1);
    }

    #[test]
    fn orphaned_consumer_blocks_fusion_into_it() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan.add(src, Operator::map("a", Package::Base, |r| r)).unwrap();
        let i = plan.add(a, Operator::map("identity", Package::Base, |r| r)).unwrap();
        let f = plan.add(i, cheap_filter("keep", "text")).unwrap();
        plan.sink(f, "out").unwrap();
        optimize(&mut plan);
        // the spliced-out identity is `a`'s contiguous successor but has
        // zero consumers: it never runs, so nothing may fuse into it (the
        // filter now hangs off `a` on a non-contiguous edge and the
        // orphan's kept input edge merely tees)
        assert_eq!(fusable_chain_len(&plan, a, |_| false), 1);
        assert_eq!(fusable_chain_len(&plan, i, |_| false), 1);
    }

    #[test]
    fn identity_removed_and_plan_still_executes() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let i = plan.add(src, Operator::map("identity", Package::Base, |r| r)).unwrap();
        let f = plan.add(i, cheap_filter("keep-all", "text")).unwrap();
        plan.sink(f, "out").unwrap();
        let rewrites = optimize(&mut plan);
        assert!(rewrites
            .iter()
            .any(|r| matches!(r, Rewrite::IdentityRemoved { .. })));
        // the filter now hangs off the source
        let filter_node = plan
            .nodes()
            .iter()
            .find(|n| matches!(&n.op, crate::logical::NodeOp::Op(op) if op.name == "keep-all"))
            .unwrap();
        assert_eq!(filter_node.input, Some(src));
        plan.validate().unwrap();
        let _ = Record::new(); // silence unused import in some cfgs
    }
}
