//! Batch-of-records execution support for the fused physical path.
//!
//! Fused workers used to pull per-worker mega-chunks (`ceil(n / dop)`
//! records) off the queue and dispatch the stage closure per record.
//! [`RecordBatch`] is the fixed-size unit workers pull instead: small
//! enough that a batch's records and their per-stage outputs stay
//! cache-resident, large enough to amortize queue locking and the
//! stage-closure dispatch, which runs once per batch per stage.
//!
//! Batching is physical only. The analytic replay re-chunks each stage's
//! per-record costs by the *simulated* partition size, independent of
//! physical batch boundaries, and batch results merge in batch-index
//! order (pipeline stages preserve record order) — so every deterministic
//! surface (sink bytes, metrics, JSONL, digests, analyzer verdicts,
//! checkpoints, watermarks, store snapshots) is bit-identical across
//! batch sizes, including the legacy per-worker chunking.

use crate::record::Record;

/// Default batch size when [`crate::ExecutionConfig::batch_size`] is
/// `None`: large enough to amortize dispatch, small enough that a batch
/// of annotation-inflated records stays cache-friendly. The auto policy
/// still splits smaller inputs `dop`-ways so every simulated worker has
/// work.
pub const DEFAULT_BATCH_SIZE: usize = 256;

/// A fixed-size run of records — the unit of work fused workers pull off
/// the stage queue.
#[derive(Debug, Default)]
pub struct RecordBatch {
    pub records: Vec<Record>,
}

impl RecordBatch {
    pub fn new(records: Vec<Record>) -> RecordBatch {
        RecordBatch { records }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Splits `records` into contiguous batches of at most `batch_size`,
    /// preserving order. The concatenation of the result is exactly the
    /// input.
    pub fn split(records: Vec<Record>, batch_size: usize) -> Vec<RecordBatch> {
        let batch_size = batch_size.max(1);
        let mut batches = Vec::with_capacity(records.len().div_ceil(batch_size.max(1)));
        let mut rest = records;
        while rest.len() > batch_size {
            let tail = rest.split_off(batch_size);
            batches.push(RecordBatch::new(rest));
            rest = tail;
        }
        if !rest.is_empty() {
            batches.push(RecordBatch::new(rest));
        }
        batches
    }
}

/// Index of a string allocated from a [`BatchArena`]. Valid until the
/// arena is reset; resolving after a reset yields whatever bytes now
/// occupy the range (never undefined behaviour — the arena hands out
/// ranges, not pointers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaStr {
    start: usize,
    end: usize,
}

/// Bump allocator for short-lived per-batch strings and byte scratch.
///
/// Each worker owns one arena for its whole run. During a batch, strings
/// bump-allocate out of one backing buffer ([`BatchArena::alloc_str`])
/// and encode scratch borrows a recycled byte vector
/// ([`BatchArena::take_scratch`]); at the batch boundary [`reset`]
/// reclaims everything in O(1) while keeping the capacity, so steady
/// state does no allocator traffic at all. Lifetime rule: an [`ArenaStr`]
/// must not outlive the batch that allocated it — `reset` invalidates its
/// contents (though never memory safety; ids index the backing buffer).
///
/// [`reset`]: BatchArena::reset
#[derive(Debug, Default)]
pub struct BatchArena {
    buf: String,
    scratch: Vec<u8>,
}

impl BatchArena {
    pub fn new() -> BatchArena {
        BatchArena::default()
    }

    /// Copies `s` into the arena and returns its handle.
    pub fn alloc_str(&mut self, s: &str) -> ArenaStr {
        let start = self.buf.len();
        self.buf.push_str(s);
        ArenaStr { start, end: self.buf.len() }
    }

    /// Resolves a handle allocated since the last [`BatchArena::reset`].
    pub fn get(&self, id: ArenaStr) -> &str {
        &self.buf[id.start..id.end]
    }

    /// Borrows the recycled byte buffer for a per-batch encode. The
    /// buffer comes back cleared but with its high-water capacity.
    pub fn take_scratch(&mut self) -> Vec<u8> {
        let mut s = std::mem::take(&mut self.scratch);
        s.clear();
        s
    }

    /// Returns a buffer taken with [`BatchArena::take_scratch`] so the
    /// next batch reuses its capacity.
    pub fn put_scratch(&mut self, buf: Vec<u8>) {
        if buf.capacity() > self.scratch.capacity() {
            self.scratch = buf;
        }
    }

    /// Reclaims all string allocations in O(1), keeping capacity.
    pub fn reset(&mut self) {
        self.buf.clear();
    }

    /// Bytes currently allocated to strings (diagnostics).
    pub fn allocated(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Record, Value};

    fn recs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::new();
                r.set("id", i as i64).set("text", Value::from(format!("doc {i}")));
                r
            })
            .collect()
    }

    #[test]
    fn split_preserves_order_and_covers_input() {
        for (n, b) in [(0usize, 4usize), (1, 4), (7, 3), (12, 4), (5, 100), (9, 1)] {
            let batches = RecordBatch::split(recs(n), b);
            assert!(batches.iter().all(|c| c.len() <= b.max(1) && !c.is_empty()));
            let flat: Vec<i64> = batches
                .iter()
                .flat_map(|c| c.records.iter())
                .map(|r| r.get("id").unwrap().as_int().unwrap())
                .collect();
            assert_eq!(flat, (0..n as i64).collect::<Vec<_>>(), "n={n} b={b}");
        }
    }

    #[test]
    fn arena_strings_round_trip_until_reset() {
        let mut arena = BatchArena::new();
        let a = arena.alloc_str("alpha");
        let b = arena.alloc_str("");
        let c = arena.alloc_str("β-batch");
        assert_eq!(arena.get(a), "alpha");
        assert_eq!(arena.get(b), "");
        assert_eq!(arena.get(c), "β-batch");
        assert_eq!(arena.allocated(), "alpha".len() + "β-batch".len());
        arena.reset();
        assert_eq!(arena.allocated(), 0);
        let d = arena.alloc_str("next-batch");
        assert_eq!(arena.get(d), "next-batch");
    }

    #[test]
    fn scratch_buffer_keeps_capacity_across_batches() {
        let mut arena = BatchArena::new();
        let mut s = arena.take_scratch();
        s.extend_from_slice(&[0u8; 4096]);
        let cap = s.capacity();
        arena.put_scratch(s);
        let s2 = arena.take_scratch();
        assert!(s2.is_empty());
        assert!(s2.capacity() >= cap);
    }
}
