//! A parallel data-flow engine for UDF-heavy text analytics — the
//! from-scratch Stratosphere analogue of the websift workspace.
//!
//! The paper executes its entire web-text analysis "using a small set of
//! data flows in a single, homogeneous, and declarative framework", i.e.
//! Stratosphere: Meteor scripts over packaged operators, logically
//! optimized, compiled to parallel primitives, and run on a cluster. This
//! crate rebuilds that stack:
//!
//! - [`record`] — the JSON-like record model whose annotation growth
//!   drives the network war story;
//! - [`batch`] — fixed-size record batches and the per-worker bump arena
//!   behind the fused executor's batched physical path;
//! - [`operator`] — UDF operators with semantic (reads/writes) and
//!   resource (memory/startup/cost) annotations;
//! - [`packages`] — the BASE / IE / WA / DC operator packages and the
//!   trained [`packages::IeResources`];
//! - [`logical`] / [`optimizer`] — plan DAGs and SOFA-style rewriting;
//! - [`cluster`] — the simulated 28-node cluster: memory admission,
//!   library-conflict detection, network capacity model;
//! - [`executor`] — real multi-threaded execution with a simulated
//!   paper-scale clock (the engine behind Figs. 4 and 5);
//! - [`dfs`] — an HDFS-like replicated block store;
//! - [`meteor`] — the declarative script front end;
//! - [`analyze`] — static plan verification (use-before-def, library
//!   conflicts, dead writes, admission pre-flight) run before execution;
//! - [`fieldflow`] — forward abstract interpretation over the plan:
//!   per-edge schema inference, selectivity-based cost envelopes, and the
//!   static fusion/combining "explain" report;
//! - [`resilience`] — fault-injection options, operator-granular
//!   checkpoints, and the machinery behind [`Executor::resume_from`];
//! - [`transport`] / [`shuffle`] — the sharded physical runtime: worker
//!   shards (threads or real OS processes) exchanging length-prefixed
//!   record/partial-aggregate frames over pipes and unix sockets, with
//!   credit-window backpressure and spill-to-disk grouping, while every
//!   deterministic surface stays byte-identical to in-process runs.

pub mod analyze;
pub mod batch;
pub mod cluster;
pub mod dfs;
pub mod executor;
pub mod fieldflow;
pub mod logical;
pub mod meteor;
pub mod operator;
pub mod optimizer;
pub mod packages;
pub mod record;
pub mod resilience;
pub mod shuffle;
pub mod transport;

pub use analyze::{analyze_plan, analyze_script, AnalyzeOptions};
pub use batch::{ArenaStr, BatchArena, RecordBatch, DEFAULT_BATCH_SIZE};
pub use cluster::{admit, admit_sharded, ClusterSpec, NodeSpec, Placement, SchedulingError};
pub use dfs::{Dfs, DfsConfig, DfsError, DfsStats};
pub use executor::{
    ExecutionConfig, ExecutionError, Executor, FlowMetrics, FlowOutput, OpMetrics, PhysicalStats,
    ResilientRun, StoreSink,
};
pub use resilience::{FlowCheckpoint, FlowResilience};
pub use logical::{parse_store_sink, LogicalPlan, NodeId, NodeOp, PlanError, STORE_SINK_PREFIX};
pub use meteor::{compile, compile_traced, MeteorError, ScriptInfo};
pub use operator::{
    value_cmp, AggState, Aggregate, CostModel, CustomCombine, Kind, OpFunc, Operator, Package,
};
pub use fieldflow::{canonical_stages, explain_plan, field_flow, EdgeState, FieldFlow};
pub use optimizer::{fused_stage, optimize, plan_stages, FusedStage, Rewrite, StageDecision};
pub use packages::{IeConfig, IeResources, OperatorRegistry};
pub use record::{span_annotation, FieldMap, Record, Value};
pub use shuffle::{
    AggSpec, KeySpec, KillSpec, OpSpec, ShardConfig, SpecOp, StageKernel, WorkerKind,
};
pub use transport::{CreditWindow, FrameChannel, TransportError};
