//! Trained IE resources shared by the IE operator package: the POS tagger,
//! the three dictionary taggers, and the three CRF taggers.
//!
//! The paper's dictionaries are deliberately *incomplete* relative to the
//! text ("dictionary-based entity extraction typically achieves good
//! precision yet low recall because dictionaries are necessarily
//! incomplete in a field developing as fast as biomedical research");
//! [`IeConfig::dict_coverage`] reproduces that by building each dictionary
//! from only a prefix fraction of the corresponding lexicon. The CRF
//! taggers are trained on abstract-like (Medline-generator) sentences —
//! the same domain mismatch that produces the paper's TLA false-positive
//! storm on web text.

use std::collections::HashMap;
use std::sync::Arc;
use websift_corpus::{CorpusKind, Generator, LabeledSentence, Lexicon, LexiconScale};
use websift_ner::crf::{CrfConfig, CrfTagger, TrainExample};
use websift_ner::dictionary::{Dictionary, DictionaryTagger};
use websift_ner::EntityType;
use websift_text::tokenize::tokenize;
use websift_text::PosTagger;

/// Configuration for building the standard resources.
#[derive(Debug, Clone, Copy)]
pub struct IeConfig {
    /// Fraction of each lexicon present in the dictionaries.
    pub dict_coverage: f64,
    /// Training sentences per CRF tagger.
    pub crf_training_sentences: usize,
    /// Enable sentence-wide context features (quadratic inference cost).
    pub crf_context_features: bool,
    pub crf_epochs: usize,
    /// Evaluate the dictionary taggers' simulated cost models at the
    /// paper's dictionary sizes (700 K / 51 K / 61 K) even when the actual
    /// dictionaries are scaled down — so the simulated cluster sees
    /// paper-scale footprints.
    pub paper_scale_costs: bool,
    pub seed: u64,
}

impl Default for IeConfig {
    fn default() -> IeConfig {
        IeConfig {
            dict_coverage: 0.7,
            crf_training_sentences: 250,
            crf_context_features: false,
            crf_epochs: 5,
            paper_scale_costs: true,
            seed: 0x1E5EED,
        }
    }
}

/// The trained resources.
pub struct IeResources {
    pub pos: Arc<PosTagger>,
    pub dict: HashMap<EntityType, Arc<DictionaryTagger>>,
    pub crf: HashMap<EntityType, Arc<CrfTagger>>,
    pub config: IeConfig,
}

/// Converts a char-span labeled sentence into a token-level CRF example
/// for one entity type.
pub fn labeled_to_example(ls: &LabeledSentence, entity: EntityType) -> TrainExample {
    let tokens = tokenize(&ls.text);
    let mut spans = Vec::new();
    let mut current: Option<(usize, usize)> = None;
    for (ti, tok) in tokens.iter().enumerate() {
        let inside = ls
            .spans
            .iter()
            .any(|&(s, e, t)| t == entity && tok.start >= s && tok.end <= e);
        match (inside, current) {
            (true, None) => current = Some((ti, ti + 1)),
            (true, Some((s, _))) => current = Some((s, ti + 1)),
            (false, Some(span)) => {
                spans.push(span);
                current = None;
            }
            (false, None) => {}
        }
    }
    if let Some(span) = current {
        spans.push(span);
    }
    let token_strings: Vec<String> = tokens.iter().map(|t| t.text(&ls.text).to_string()).collect();
    TrainExample::from_spans(token_strings, &spans)
}

impl IeResources {
    /// Builds the standard resources over `lexicon`.
    pub fn standard(lexicon: &Lexicon, config: IeConfig) -> IeResources {
        assert!((0.0..=1.0).contains(&config.dict_coverage));
        let take = |terms: &[String]| -> Vec<String> {
            let n = (terms.len() as f64 * config.dict_coverage).ceil() as usize;
            terms.iter().take(n).cloned().collect()
        };
        let paper = LexiconScale::paper();
        let build = |entity: EntityType, terms: &[String], paper_count: usize| {
            let tagger = DictionaryTagger::new(&Dictionary::new(entity, terms.to_vec()));
            if config.paper_scale_costs {
                Arc::new(tagger.with_cost_reference(paper_count))
            } else {
                Arc::new(tagger)
            }
        };
        let mut dict = HashMap::new();
        dict.insert(
            EntityType::Gene,
            build(EntityType::Gene, &take(lexicon.genes()), paper.genes),
        );
        dict.insert(
            EntityType::Drug,
            build(EntityType::Drug, &take(lexicon.drugs()), paper.drugs),
        );
        dict.insert(
            EntityType::Disease,
            build(EntityType::Disease, &take(lexicon.diseases()), paper.diseases),
        );

        // CRF training data: abstract-like sentences with gold spans.
        let generator = Generator::with_lexicon(
            CorpusKind::Medline,
            config.seed,
            Arc::new(lexicon.clone()),
        );
        let sentences = generator.labeled_sentences(config.crf_training_sentences);
        let crf_config = CrfConfig {
            dim: 1 << 16,
            epochs: config.crf_epochs,
            context_features: config.crf_context_features,
            ..CrfConfig::default()
        };
        let mut crf = HashMap::new();
        for entity in EntityType::all() {
            let examples: Vec<TrainExample> = sentences
                .iter()
                .map(|ls| labeled_to_example(ls, entity))
                .collect();
            crf.insert(
                entity,
                Arc::new(CrfTagger::train(entity, &examples, crf_config)),
            );
        }

        IeResources {
            pos: Arc::new(PosTagger::pretrained().clone()),
            dict,
            crf,
            config,
        }
    }

    /// Small, fast resources for unit tests.
    pub fn quick_for_tests(scale: LexiconScale) -> IeResources {
        let lexicon = Lexicon::generate(scale);
        IeResources::standard(
            &lexicon,
            IeConfig {
                crf_training_sentences: 60,
                crf_epochs: 3,
                ..IeConfig::default()
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_to_example_maps_char_spans_to_tokens() {
        let ls = LabeledSentence {
            text: "The BRCA1 gene regulates cells.".to_string(),
            spans: vec![(4, 9, EntityType::Gene)],
        };
        let ex = labeled_to_example(&ls, EntityType::Gene);
        assert_eq!(ex.tokens[1], "BRCA1");
        assert_eq!(ex.labels[1], websift_ner::crf::Label::Begin);
        assert_eq!(ex.labels[0], websift_ner::crf::Label::Outside);
        // other entity types see no spans
        let ex2 = labeled_to_example(&ls, EntityType::Drug);
        assert!(ex2.labels.iter().all(|&l| l == websift_ner::crf::Label::Outside));
    }

    #[test]
    fn multi_token_span_becomes_begin_inside() {
        let ls = LabeledSentence {
            text: "patients with chronic cardiitis improved".to_string(),
            spans: vec![(14, 31, EntityType::Disease)],
        };
        let ex = labeled_to_example(&ls, EntityType::Disease);
        use websift_ner::crf::Label;
        assert_eq!(ex.labels[2], Label::Begin);
        assert_eq!(ex.labels[3], Label::Inside);
    }

    #[test]
    fn standard_resources_build_and_tag() {
        let res = IeResources::quick_for_tests(LexiconScale::tiny());
        assert_eq!(res.dict.len(), 3);
        assert_eq!(res.crf.len(), 3);
        // dictionary coverage: 70% of the tiny gene lexicon
        let lexicon = Lexicon::generate(LexiconScale::tiny());
        let covered = lexicon.genes()[0].clone();
        let uncovered = lexicon.genes()[lexicon.genes().len() - 1].clone();
        let tagger = &res.dict[&EntityType::Gene];
        assert_eq!(tagger.tag(&format!("the {covered} gene")).len(), 1);
        assert_eq!(
            tagger.tag(&format!("the {uncovered} gene")).len(),
            0,
            "tail of the lexicon is outside the dictionary"
        );
    }
}
