//! DC package: data-cleansing operators — "addressing common challenges
//! in processing dirty or heterogeneous data sources".

use crate::operator::{Operator, Package};
use crate::packages::OperatorRegistry;
use crate::record::Value;

/// `dc.drop_untranscodable` — removes pages the markup stages flagged.
pub fn drop_untranscodable() -> Operator {
    Operator::filter("dc.drop_untranscodable", Package::Dc, |r| {
        r.get("transcodable") != Some(&Value::Bool(false))
    })
    .with_reads(&["transcodable"])
}

/// `dc.filter_empty_text` — drops records whose text is empty/whitespace.
pub fn filter_empty_text() -> Operator {
    Operator::filter("dc.filter_empty_text", Package::Dc, |r| {
        r.text().map(|t| !t.trim().is_empty()).unwrap_or(false)
    })
    .with_reads(&["text"])
}

/// `dc.normalize_whitespace` — collapses runs of whitespace in the text.
pub fn normalize_whitespace() -> Operator {
    Operator::map("dc.normalize_whitespace", Package::Dc, |mut r| {
        if let Some(t) = r.text() {
            let mut out = String::with_capacity(t.len());
            let mut last_ws = false;
            for c in t.chars() {
                if c.is_whitespace() {
                    if !out.is_empty() {
                        if !last_ws {
                            out.push(' ');
                        }
                        if c == '\n' {
                            // a newline anywhere in the run wins
                            out.pop();
                            out.push('\n');
                        }
                    }
                    last_ws = true;
                } else {
                    out.push(c);
                    last_ws = false;
                }
            }
            while out.ends_with(char::is_whitespace) {
                out.pop();
            }
            r.set("text", out);
        }
        r
    })
    .with_reads(&["text"])
    .with_writes(&["text"])
}

/// `dc.dedup_entities` — merges entity annotations that cover the same
/// span with the same type ("merging annotations using different
/// schemes"). Dictionary-sourced annotations win over ML on exact ties.
pub fn dedup_entities() -> Operator {
    Operator::map("dc.dedup_entities", Package::Dc, |mut r| {
        let Some(Value::Array(entities)) = r.remove("entities") else {
            return r;
        };
        let mut sorted = entities;
        sorted.sort_by_key(|v| {
            let o = v.as_object();
            let start = o.and_then(|o| o.get("start")).and_then(Value::as_int).unwrap_or(0);
            let end = o.and_then(|o| o.get("end")).and_then(Value::as_int).unwrap_or(0);
            let method_rank = o
                .and_then(|o| o.get("method"))
                .and_then(Value::as_str)
                .map(|m| if m == "dict" { 0 } else { 1 })
                .unwrap_or(2);
            (start, end, method_rank)
        });
        let mut out: Vec<Value> = Vec::with_capacity(sorted.len());
        for v in sorted {
            let dup = out.last().is_some_and(|prev| {
                let (po, vo) = (prev.as_object(), v.as_object());
                match (po, vo) {
                    (Some(p), Some(n)) => {
                        p.get("start") == n.get("start")
                            && p.get("end") == n.get("end")
                            && p.get("type") == n.get("type")
                    }
                    _ => false,
                }
            });
            if !dup {
                out.push(v);
            }
        }
        r.set("entities", Value::Array(out));
        r
    })
    .with_reads(&["entities"])
    .with_writes(&["entities"])
}

pub fn register(reg: &mut OperatorRegistry) {
    reg.register("dc.drop_untranscodable", drop_untranscodable);
    reg.register("dc.filter_empty_text", filter_empty_text);
    reg.register("dc.normalize_whitespace", normalize_whitespace);
    reg.register("dc.dedup_entities", dedup_entities);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{span_annotation, Record};

    #[test]
    fn drop_untranscodable_filters_flagged() {
        let mut bad = Record::new();
        bad.set("transcodable", false);
        let mut good = Record::new();
        good.set("transcodable", true);
        let unmarked = Record::new();
        let out = drop_untranscodable().apply(vec![bad, good, unmarked]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn filter_empty_text_drops_blank() {
        let mut blank = Record::new();
        blank.set("text", "   \n ");
        let mut full = Record::new();
        full.set("text", "content");
        let out = filter_empty_text().apply(vec![blank, full, Record::new()]);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn normalize_whitespace_collapses() {
        let mut r = Record::new();
        r.set("text", "a   b\t\tc  \n\nd  ");
        let out = normalize_whitespace().apply(vec![r]);
        assert_eq!(out[0].text(), Some("a b c\nd"));
    }

    #[test]
    fn dedup_prefers_dictionary() {
        let mut r = Record::new();
        r.push_to(
            "entities",
            span_annotation(0, 5, &[("type", "gene".into()), ("method", "ml".into())]),
        );
        r.push_to(
            "entities",
            span_annotation(0, 5, &[("type", "gene".into()), ("method", "dict".into())]),
        );
        r.push_to(
            "entities",
            span_annotation(8, 12, &[("type", "drug".into()), ("method", "ml".into())]),
        );
        let out = dedup_entities().apply(vec![r]);
        let ents = out[0].get("entities").unwrap().as_array().unwrap();
        assert_eq!(ents.len(), 2);
        assert_eq!(
            ents[0].as_object().unwrap()["method"].as_str(),
            Some("dict"),
            "dictionary annotation wins the tie"
        );
    }

    #[test]
    fn dedup_keeps_distinct_types_on_same_span() {
        let mut r = Record::new();
        r.push_to(
            "entities",
            span_annotation(0, 5, &[("type", "gene".into()), ("method", "ml".into())]),
        );
        r.push_to(
            "entities",
            span_annotation(0, 5, &[("type", "drug".into()), ("method", "ml".into())]),
        );
        let out = dedup_entities().apply(vec![r]);
        assert_eq!(out[0].get("entities").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn dedup_without_entities_is_noop() {
        let out = dedup_entities().apply(vec![Record::new()]);
        assert!(!out[0].contains("entities"));
    }
}
