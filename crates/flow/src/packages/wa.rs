//! WA package: web-analytics operators — markup detection, repair,
//! removal, boilerplate extraction, and link extraction.

use crate::operator::{CostModel, Operator, Package};
use crate::packages::OperatorRegistry;
use crate::record::Value;
use websift_crawler::boilerplate::BoilerplateDetector;
use websift_crawler::parser::{extract_links, repair_markup, strip_markup, HtmlToken};
use websift_web::Url;

/// `wa.detect_markup` — flags whether the text field contains HTML markup.
pub fn detect_markup() -> Operator {
    Operator::map("wa.detect_markup", Package::Wa, |mut r| {
        let has = r
            .text()
            .map(|t| t.contains('<') && (t.contains("</") || t.to_lowercase().contains("<html")))
            .unwrap_or(false);
        r.set("has_markup", has);
        r
    })
    .with_reads(&["text"])
    .with_writes(&["has_markup"])
}

/// Serializes repaired tokens back to an HTML string.
fn serialize_tokens(tokens: &[HtmlToken]) -> String {
    let mut out = String::new();
    for t in tokens {
        match t {
            HtmlToken::Open { name, attrs } => {
                out.push('<');
                out.push_str(name);
                if !attrs.is_empty() {
                    out.push(' ');
                    out.push_str(attrs);
                }
                out.push('>');
            }
            HtmlToken::Close { name } => {
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            HtmlToken::Text(t) => out.push_str(t),
        }
    }
    out
}

/// `wa.repair_markup` — balances the markup; untranscodable pages get
/// `transcodable: false` and pass through unchanged (so the flow can count
/// and drop them instead of crashing — the robustness the paper asks for).
pub fn repair_markup_op() -> Operator {
    Operator::map("wa.repair_markup", Package::Wa, |mut r| {
        let html = r.text_shared().unwrap_or_else(|| "".into());
        match repair_markup(&html, 0.45) {
            Ok(tokens) => {
                r.set("text", serialize_tokens(&tokens));
                r.set("transcodable", true);
            }
            Err(_) => {
                r.set("transcodable", false);
            }
        }
        r
    })
    .with_reads(&["text"])
    .with_writes(&["text", "transcodable"])
    .with_cost(CostModel {
        us_per_char: 0.02,
        ..CostModel::default()
    })
}

/// `wa.remove_markup` — strips all tags, keeping every text node.
pub fn remove_markup() -> Operator {
    Operator::map("wa.remove_markup", Package::Wa, |mut r| {
        let text = r.text_shared().unwrap_or_else(|| "".into());
        if text.contains('<') {
            r.set("text", strip_markup(&text));
        }
        r
    })
    .with_reads(&["text"])
    .with_writes(&["text"])
    .with_cost(CostModel {
        us_per_char: 0.02,
        ..CostModel::default()
    })
}

/// `wa.extract_net_text` — boilerplate-aware net-text extraction
/// (Boilerpipe analogue). Untranscodable pages yield empty text and
/// `transcodable: false`.
pub fn extract_net_text() -> Operator {
    Operator::map("wa.extract_net_text", Package::Wa, |mut r| {
        let html = r.text_shared().unwrap_or_else(|| "".into());
        if !html.contains('<') {
            return r; // already plain text (Medline/PMC branch)
        }
        let detector = BoilerplateDetector::default();
        match detector.extract(&html) {
            Ok(net) => {
                r.set("text", net);
                r.set("transcodable", true);
            }
            Err(_) => {
                r.set("text", "");
                r.set("transcodable", false);
            }
        }
        r
    })
    .with_reads(&["text"])
    .with_writes(&["text", "transcodable"])
    .with_cost(CostModel {
        us_per_char: 0.05,
        ..CostModel::default()
    })
}

/// `wa.extract_links` — collects outgoing links into a `links` array.
pub fn extract_links_op() -> Operator {
    Operator::map("wa.extract_links", Package::Wa, |mut r| {
        let html = r.text_shared().unwrap_or_else(|| "".into());
        let base = r
            .get("url")
            .and_then(Value::as_str)
            .and_then(|u| Url::parse(u).ok())
            .unwrap_or_else(|| Url::new("unknown.example", "/"));
        let links: Vec<Value> = extract_links(&html, &base)
            .into_iter()
            .map(|u| Value::from(u.to_string()))
            .collect();
        r.set("links", Value::Array(links));
        r
    })
    .with_reads(&["text", "url"])
    .with_writes(&["links"])
}

pub fn register(reg: &mut OperatorRegistry) {
    reg.register("wa.detect_markup", detect_markup);
    reg.register("wa.repair_markup", repair_markup_op);
    reg.register("wa.remove_markup", remove_markup);
    reg.register("wa.extract_net_text", extract_net_text);
    reg.register("wa.extract_links", extract_links_op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Record;

    fn html_doc() -> Record {
        let mut r = Record::new();
        r.set("url", "http://x.example/p1.html");
        r.set(
            "text",
            "<html><body><div class=\"nav\"><a href=\"/a\">Home</a><a href=\"/b\">About</a>\
             <a href=\"/c\">More</a></div><p>The clinical study shows the drug reduces pain \
             in most patients over twelve weeks of treatment and observation.</p>\
             <p><a href=\"http://y.example/z\">related</a></p></body></html>",
        );
        r
    }

    #[test]
    fn detect_markup_flags_html() {
        let out = detect_markup().apply(vec![html_doc()]);
        assert_eq!(out[0].get("has_markup"), Some(&Value::Bool(true)));
        let mut plain = Record::new();
        plain.set("text", "no markup here");
        let out = detect_markup().apply(vec![plain]);
        assert_eq!(out[0].get("has_markup"), Some(&Value::Bool(false)));
    }

    #[test]
    fn repair_marks_transcodable() {
        let out = repair_markup_op().apply(vec![html_doc()]);
        assert_eq!(out[0].get("transcodable"), Some(&Value::Bool(true)));
        let mut broken = Record::new();
        broken.set("text", "</p></div></b></i></span></p>");
        let out = repair_markup_op().apply(vec![broken]);
        assert_eq!(out[0].get("transcodable"), Some(&Value::Bool(false)));
    }

    #[test]
    fn remove_markup_strips_tags() {
        let out = remove_markup().apply(vec![html_doc()]);
        let text = out[0].text().unwrap();
        assert!(!text.contains('<'));
        assert!(text.contains("clinical study"));
        assert!(text.contains("Home"), "strip keeps boilerplate text");
    }

    #[test]
    fn extract_net_text_drops_boilerplate() {
        let out = extract_net_text().apply(vec![html_doc()]);
        let text = out[0].text().unwrap();
        assert!(text.contains("clinical study"));
        assert!(!text.contains("Home"));
        // plain text records pass through untouched
        let mut plain = Record::new();
        plain.set("text", "an abstract body with no markup at all");
        let out = extract_net_text().apply(vec![plain]);
        assert_eq!(out[0].text(), Some("an abstract body with no markup at all"));
    }

    #[test]
    fn extract_links_resolves_against_url() {
        let out = extract_links_op().apply(vec![html_doc()]);
        let links = out[0].get("links").unwrap().as_array().unwrap();
        let strings: Vec<&str> = links.iter().filter_map(Value::as_str).collect();
        assert!(strings.contains(&"http://x.example/a"));
        assert!(strings.contains(&"http://y.example/z"));
    }

    #[test]
    fn serialize_roundtrips_structure() {
        let tokens = repair_markup("<p>a<b>c</b></p>", 1.0).unwrap();
        let s = serialize_tokens(&tokens);
        assert_eq!(s, "<p>a<b>c</b></p>");
    }
}
