//! Operator packages (BASE, IE, WA, DC) and the operator registry.
//!
//! "Currently, the system ships more than 60 different operators organized
//! in four packages": general purpose (BASE), information extraction (IE),
//! web analytics (WA), and data cleansing (DC). This module provides the
//! same organization: each package registers named operator factories into
//! an [`OperatorRegistry`], which the Meteor front end and the pipeline
//! builders resolve operators from.

pub mod base;
pub mod dc;
pub mod ie;
pub mod resources;
pub mod wa;

pub use resources::{IeConfig, IeResources};

use crate::operator::Operator;
use std::collections::BTreeMap;
use std::sync::Arc;

type Factory = Arc<dyn Fn() -> Operator + Send + Sync>;

/// Registry of named operator factories, e.g. `"ie.annotate_sentences"`.
#[derive(Clone, Default)]
pub struct OperatorRegistry {
    factories: BTreeMap<String, Factory>,
}

impl OperatorRegistry {
    pub fn new() -> OperatorRegistry {
        OperatorRegistry::default()
    }

    /// The full standard registry over trained IE resources.
    pub fn standard(resources: Arc<IeResources>) -> OperatorRegistry {
        let mut reg = OperatorRegistry::new();
        base::register(&mut reg);
        wa::register(&mut reg);
        ie::register(&mut reg, resources);
        dc::register(&mut reg);
        reg
    }

    /// Registers a factory under `name` (package-qualified).
    pub fn register(&mut self, name: &str, factory: impl Fn() -> Operator + Send + Sync + 'static) {
        self.factories.insert(name.to_string(), Arc::new(factory));
    }

    /// Instantiates an operator by name.
    pub fn create(&self, name: &str) -> Option<Operator> {
        self.factories.get(name).map(|f| f())
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.factories.keys().map(String::as_str).collect()
    }

    pub fn len(&self) -> usize {
        self.factories.len()
    }

    pub fn is_empty(&self) -> bool {
        self.factories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_corpus::LexiconScale;

    #[test]
    fn standard_registry_is_well_stocked() {
        let resources = Arc::new(IeResources::quick_for_tests(LexiconScale::tiny()));
        let reg = OperatorRegistry::standard(resources);
        assert!(reg.len() >= 20, "only {} operators registered", reg.len());
        for prefix in ["base.", "ie.", "wa.", "dc."] {
            assert!(
                reg.names().iter().any(|n| n.starts_with(prefix)),
                "missing package {prefix}"
            );
        }
    }

    #[test]
    fn create_unknown_is_none() {
        let reg = OperatorRegistry::new();
        assert!(reg.create("nope.nothing").is_none());
    }
}
