//! BASE package: general-purpose relational operators.

use crate::operator::{Aggregate, CostModel, Operator, Package};
use crate::packages::OperatorRegistry;
use crate::record::Record;

/// Maximum text length admitted by `base.filter_length` (the Fig.-2 flow
/// "first filter[s] to exclude extremely long documents", and §5 notes the
/// eventual "hard upper limit on the texts to be analyzed" forced by
/// out-of-memory errors in the tools).
pub const DEFAULT_MAX_TEXT_CHARS: usize = 500_000;

/// `base.filter_length` with an explicit bound.
pub fn filter_length(max_chars: usize) -> Operator {
    Operator::filter("base.filter_length", Package::Base, move |r| {
        r.text().map(|t| t.chars().count() <= max_chars).unwrap_or(false)
    })
    .with_reads(&["text"])
    .with_cost(CostModel {
        us_per_char: 0.001,
        ..CostModel::default()
    })
}

/// `base.filter_min_length` — drops records with very little text.
pub fn filter_min_length(min_chars: usize) -> Operator {
    Operator::filter("base.filter_min_length", Package::Base, move |r| {
        r.text().map(|t| t.chars().count() >= min_chars).unwrap_or(false)
    })
    .with_reads(&["text"])
    .with_cost(CostModel {
        us_per_char: 0.001,
        ..CostModel::default()
    })
}

/// `base.project` — keeps only the listed fields.
pub fn project(fields: Vec<String>) -> Operator {
    Operator::map("base.project", Package::Base, move |mut r| {
        let keep: Vec<String> = fields.clone();
        let keys: Vec<std::sync::Arc<str>> = r.0.keys().cloned().collect();
        for k in keys {
            if !keep.iter().any(|f| f.as_str() == &*k) {
                r.remove(&k);
            }
        }
        r
    })
}

/// `base.count_by` — reduce counting records per value of `field`. Uses
/// the typed [`Aggregate::Count`], so the executor can pre-aggregate it
/// inside fused stages.
pub fn count_by(field: &str) -> Operator {
    let field = field.to_string();
    let key_field = field.clone();
    let mut op = Operator::reduce_agg(
        "base.count_by",
        Package::Base,
        move |r: &Record| {
            r.get(&key_field)
                .map(|v| format!("{v:?}"))
                .unwrap_or_else(|| "<missing>".to_string())
        },
        Aggregate::Count { into: "count".to_string() },
    );
    op.reads = vec![field];
    op
}

/// Registers the BASE operators under their default parameters.
pub fn register(reg: &mut OperatorRegistry) {
    reg.register("base.filter_length", || filter_length(DEFAULT_MAX_TEXT_CHARS));
    reg.register("base.filter_min_length", || filter_min_length(100));
    reg.register("base.identity", || {
        Operator::map("identity", Package::Base, |r| r)
    });
    reg.register("base.count_by_corpus", || count_by("corpus"));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn doc(text: &str) -> Record {
        let mut r = Record::new();
        r.set("text", text).set("corpus", "x").set("extra", 1i64);
        r
    }

    #[test]
    fn filter_length_bounds() {
        let op = filter_length(10);
        let out = op.apply(vec![doc("short"), doc("definitely too long for ten")]);
        assert_eq!(out.len(), 1);
        // records without text are dropped too
        let out = op.apply(vec![Record::new()]);
        assert!(out.is_empty());
    }

    #[test]
    fn filter_min_length_bounds() {
        let op = filter_min_length(6);
        let out = op.apply(vec![doc("tiny"), doc("long enough")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].text(), Some("long enough"));
    }

    #[test]
    fn project_keeps_only_listed() {
        let op = project(vec!["text".to_string()]);
        let out = op.apply(vec![doc("abc")]);
        assert!(out[0].contains("text"));
        assert!(!out[0].contains("extra"));
        assert!(!out[0].contains("corpus"));
    }

    #[test]
    fn count_by_counts() {
        let op = count_by("corpus");
        let mut d2 = doc("x");
        d2.set("corpus", "y");
        let out = op.apply(vec![doc("a"), doc("b"), d2]);
        assert_eq!(out.len(), 2);
        let total: i64 = out.iter().map(|r| r.get("count").unwrap().as_int().unwrap()).sum();
        assert_eq!(total, 3);
        let _ = Value::Null;
    }
}
