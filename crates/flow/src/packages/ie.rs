//! IE package: syntactic and semantic annotation operators.
//!
//! These are the wrapped "best-of-breed" tools of the paper's Fig.-2 flow:
//! sentence/token boundary annotation, part-of-speech tagging (MedPost
//! analogue), regular-expression linguistic annotators (negation,
//! pronouns, parentheses), and the six entity annotators (dictionary + ML
//! for genes, drugs, diseases). Each carries the cost model and library
//! annotations that drive the simulated-cluster experiments, including the
//! OpenNLP version split behind the paper's class-loader war story.

use crate::operator::{CostModel, Operator, Package};
use crate::packages::{IeResources, OperatorRegistry};
use crate::record::{span_annotation, Record, Value};
use std::sync::Arc;
use std::sync::OnceLock;
use websift_analyze::lattice::FieldType;
use websift_ner::{EntityType, Mention};
use websift_text::regexlite::Regex;
use websift_text::tokenize::tokenize;
use websift_text::{PosTagger, SentenceSplitter};

/// Reads the `sentences` annotation back into spans; falls back to the
/// whole text as one sentence when absent.
pub fn sentence_spans(r: &Record) -> Vec<(usize, usize)> {
    match r.get("sentences").and_then(Value::as_array) {
        Some(arr) => arr
            .iter()
            .filter_map(|v| {
                let o = v.as_object()?;
                Some((o.get("start")?.as_int()? as usize, o.get("end")?.as_int()? as usize))
            })
            .collect(),
        None => match r.text() {
            Some(t) if !t.is_empty() => vec![(0, t.len())],
            _ => Vec::new(),
        },
    }
}

fn push_mentions(r: &mut Record, mentions: impl IntoIterator<Item = Mention>) {
    for m in mentions {
        r.push_to(
            "entities",
            span_annotation(
                m.start,
                m.end,
                &[
                    ("name", Value::from(m.name.as_str())),
                    ("type", Value::from(m.entity.name())),
                    (
                        "method",
                        Value::from(match m.method {
                            websift_ner::Method::Dictionary => "dict",
                            websift_ner::Method::Ml => "ml",
                        }),
                    ),
                ],
            ),
        );
    }
}

/// `ie.annotate_sentences` (OpenNLP-1.5-class tool).
pub fn annotate_sentences() -> Operator {
    Operator::map("ie.annotate_sentences", Package::Ie, |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let spans: Vec<Value> = SentenceSplitter::new()
            .split(&text)
            .into_iter()
            .map(|s| span_annotation(s.start, s.end, &[]))
            .collect();
        r.set("sentences", Value::Array(spans));
        r
    })
    .with_reads(&["text"])
    .with_writes(&["sentences"])
    .with_write_types(&[("sentences", FieldType::Array)])
    .with_library("opennlp", 15)
    .with_cost(CostModel {
        us_per_char: 0.05,
        ..CostModel::default()
    })
}

/// `ie.annotate_tokens` (OpenNLP-1.5-class tool).
pub fn annotate_tokens() -> Operator {
    Operator::map("ie.annotate_tokens", Package::Ie, |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let toks: Vec<Value> = tokenize(&text)
            .into_iter()
            .map(|t| span_annotation(t.start, t.end, &[]))
            .collect();
        r.set("tokens", Value::Array(toks));
        r
    })
    .with_reads(&["text"])
    .with_writes(&["tokens"])
    .with_write_types(&[("tokens", FieldType::Array)])
    .with_library("opennlp", 15)
    .with_cost(CostModel {
        us_per_char: 0.08,
        ..CostModel::default()
    })
}

/// `ie.annotate_pos` — the MedPost-analogue HMM tagger, applied per
/// sentence. Over-long sentences fail cleanly and are counted in
/// `pos_errors` (the original tool crashed; the flow must not).
pub fn annotate_pos(tagger: Arc<PosTagger>) -> Operator {
    Operator::map("ie.annotate_pos", Package::Ie, move |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let mut errors = 0i64;
        let mut annotations: Vec<Value> = Vec::new();
        for (si, (start, end)) in sentence_spans(&r).into_iter().enumerate() {
            let sent = &text[start.min(text.len())..end.min(text.len())];
            let tokens = tokenize(sent);
            let strs: Vec<&str> = tokens.iter().map(|t| t.text(sent)).collect();
            match tagger.tag(&strs) {
                Ok(tags) => {
                    let tag_values: Vec<Value> = tags
                        .into_iter()
                        .map(|t| Value::from(format!("{t:?}")))
                        .collect();
                    let mut obj = crate::record::FieldMap::with_capacity(2);
                    obj.insert(crate::record::intern("sentence"), Value::Int(si as i64));
                    obj.insert(crate::record::intern("tags"), Value::Array(tag_values));
                    annotations.push(Value::Object(obj));
                }
                Err(_) => errors += 1,
            }
        }
        r.set("pos", Value::Array(annotations));
        r.set("pos_errors", errors);
        r
    })
    .with_reads(&["text", "sentences"])
    .with_writes(&["pos", "pos_errors"])
    .with_cost(CostModel {
        startup_secs: 5.0,
        memory_bytes: 512 << 20,
        us_per_char: 2.0,
        quadratic_ref: None,
    })
}

fn regex_annotator(
    name: &'static str,
    writes: &'static str,
    pattern: &'static str,
    class_of: fn(&str) -> Option<String>,
) -> Operator {
    static CACHE: OnceLock<parking_lot::Mutex<std::collections::HashMap<&'static str, Arc<Regex>>>> =
        OnceLock::new();
    let cache = CACHE.get_or_init(Default::default);
    let regex = cache
        .lock()
        .entry(pattern)
        .or_insert_with(|| Arc::new(Regex::case_insensitive(pattern).expect("valid pattern")))
        .clone();

    Operator::map(name, Package::Ie, move |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let mut annotations: Vec<Value> = Vec::new();
        for (si, (start, end)) in sentence_spans(&r).into_iter().enumerate() {
            let sent = &text[start.min(text.len())..end.min(text.len())];
            for m in regex.find_iter(sent) {
                let mut extra: Vec<(&str, Value)> =
                    vec![("sentence", Value::Int(si as i64))];
                if let Some(class) = class_of(m.text(sent)) {
                    extra.push(("class", Value::from(class)));
                }
                annotations.push(span_annotation(start + m.start, start + m.end, &extra));
            }
        }
        r.set(writes, Value::Array(annotations));
        r
    })
    .with_reads(&["text", "sentences"])
    .with_writes(&[writes])
    .with_cost(CostModel {
        us_per_char: 0.3,
        ..CostModel::default()
    })
}

/// `ie.annotate_negation` — finds *not*, *nor*, *neither* (the paper's
/// "rather simple method for determining negations").
pub fn annotate_negation() -> Operator {
    regex_annotator(
        "ie.annotate_negation",
        "negation",
        r"\b(not|nor|neither)\b",
        |_| None,
    )
}

/// `ie.annotate_pronouns` — six pronoun classes.
pub fn annotate_pronouns() -> Operator {
    regex_annotator(
        "ie.annotate_pronouns",
        "pronouns",
        r"\b(it|they|we|he|she|i|you|its|their|his|her|our|this|these|that|those|which|who|whom|them|him|us|me|itself|themselves)\b",
        |m| {
            let lower = m.to_lowercase();
            let class = match lower.as_str() {
                "it" | "they" | "we" | "he" | "she" | "i" | "you" => "personal",
                "its" | "their" | "his" | "her" | "our" => "possessive",
                "this" | "these" | "that" | "those" => "demonstrative",
                "which" | "who" | "whom" => "relative",
                "them" | "him" | "us" | "me" => "object",
                _ => "reflexive",
            };
            Some(class.to_string())
        },
    )
}

/// `ie.annotate_parentheses` — parenthesized text spans.
pub fn annotate_parentheses() -> Operator {
    regex_annotator(
        "ie.annotate_parentheses",
        "parens",
        r"\([^()]*\)",
        |_| None,
    )
}

/// Dictionary entity annotator for one type.
pub fn annotate_entities_dict(resources: &IeResources, entity: EntityType) -> Operator {
    let tagger = resources.dict[&entity].clone();
    let cost = tagger.cost_model();
    let name = format!("ie.annotate_entities_dict_{}", entity.name());
    Operator::map(&name, Package::Ie, move |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let mentions = tagger.tag(&text);
        push_mentions(&mut r, mentions);
        r
    })
    .with_reads(&["text"])
    .with_writes(&["entities"])
    .with_cost(CostModel {
        startup_secs: cost.startup_secs,
        memory_bytes: cost.memory_bytes,
        us_per_char: cost.us_per_char,
        quadratic_ref: None,
    })
}

/// ML (CRF) entity annotator for one type. The disease tagger "brings its
/// own linguistic preprocessing ... imported from the OpenNLP library,
/// version 1.4" — hence its conflicting library annotation.
pub fn annotate_entities_ml(resources: &IeResources, entity: EntityType) -> Operator {
    let tagger = resources.crf[&entity].clone();
    let cost = tagger.cost_model();
    let context = resources.config.crf_context_features;
    let name = format!("ie.annotate_entities_ml_{}", entity.name());
    let op = Operator::map(&name, Package::Ie, move |mut r| {
        let text = r.text_shared().unwrap_or_else(|| Arc::from(""));
        let mut all = Vec::new();
        for (start, end) in sentence_spans(&r) {
            let sent = &text[start.min(text.len())..end.min(text.len())];
            for mut m in tagger.tag(sent) {
                m.start += start;
                m.end += start;
                all.push(m);
            }
        }
        push_mentions(&mut r, all);
        r
    })
    .with_cost(CostModel {
        startup_secs: cost.startup_secs,
        memory_bytes: cost.memory_bytes,
        us_per_char: cost.us_per_char,
        quadratic_ref: if context { Some(500.0) } else { None },
    });
    match entity {
        EntityType::Disease => op
            .with_reads(&["text"])
            .with_writes(&["entities"])
            .with_library("opennlp", 14),
        _ => op
            .with_reads(&["text", "sentences"])
            .with_writes(&["entities"])
            .with_library("opennlp", 15),
    }
}

/// Registers IE operators over shared resources.
pub fn register(reg: &mut OperatorRegistry, resources: Arc<IeResources>) {
    reg.register("ie.annotate_sentences", annotate_sentences);
    reg.register("ie.annotate_tokens", annotate_tokens);
    let res = resources.clone();
    reg.register("ie.annotate_pos", move || annotate_pos(res.pos.clone()));
    reg.register("ie.annotate_negation", annotate_negation);
    reg.register("ie.annotate_pronouns", annotate_pronouns);
    reg.register("ie.annotate_parentheses", annotate_parentheses);
    for entity in EntityType::all() {
        let res = resources.clone();
        reg.register(
            &format!("ie.annotate_entities_dict_{}", entity.name()),
            move || annotate_entities_dict(&res, entity),
        );
        let res = resources.clone();
        reg.register(
            &format!("ie.annotate_entities_ml_{}", entity.name()),
            move || annotate_entities_ml(&res, entity),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_corpus::LexiconScale;

    fn resources() -> &'static IeResources {
        static RES: OnceLock<IeResources> = OnceLock::new();
        RES.get_or_init(|| IeResources::quick_for_tests(LexiconScale::tiny()))
    }

    fn doc(text: &str) -> Record {
        let mut r = Record::new();
        r.set("text", text);
        r
    }

    fn with_sentences(text: &str) -> Record {
        let out = annotate_sentences().apply(vec![doc(text)]);
        out.into_iter().next().unwrap()
    }

    #[test]
    fn sentence_annotation() {
        let r = with_sentences("First sentence here. Second one follows.");
        let sents = sentence_spans(&r);
        assert_eq!(sents.len(), 2);
        assert_eq!(sents[0].0, 0);
    }

    #[test]
    fn sentence_spans_fallback_without_annotation() {
        let r = doc("no sentence annotation");
        assert_eq!(sentence_spans(&r), vec![(0, 22)]);
        assert!(sentence_spans(&doc("")).is_empty());
    }

    #[test]
    fn token_annotation() {
        let out = annotate_tokens().apply(vec![doc("two tokens")]);
        assert_eq!(out[0].get("tokens").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn pos_annotation_and_error_counting() {
        let r = with_sentences("The gene regulates the protein.");
        let out = annotate_pos(resources().pos.clone()).apply(vec![r]);
        let pos = out[0].get("pos").unwrap().as_array().unwrap();
        assert_eq!(pos.len(), 1);
        assert_eq!(out[0].get("pos_errors").unwrap().as_int(), Some(0));

        // a pathological unpunctuated blob exceeds the tagger's budget
        let blob = "word ".repeat(600);
        let r = with_sentences(&blob);
        let tagger = Arc::new(PosTagger::pretrained().clone().with_max_tokens(100));
        let out = annotate_pos(tagger).apply(vec![r]);
        assert_eq!(out[0].get("pos_errors").unwrap().as_int(), Some(1));
    }

    #[test]
    fn negation_annotation() {
        let r = with_sentences("This does not work. Neither does that. All fine here.");
        let out = annotate_negation().apply(vec![r]);
        let ns = out[0].get("negation").unwrap().as_array().unwrap();
        assert_eq!(ns.len(), 2);
    }

    #[test]
    fn pronoun_classes() {
        let r = with_sentences("They saw it. Their results, which we measured.");
        let out = annotate_pronouns().apply(vec![r]);
        let ps = out[0].get("pronouns").unwrap().as_array().unwrap();
        let classes: Vec<&str> = ps
            .iter()
            .filter_map(|p| p.as_object()?.get("class")?.as_str())
            .collect();
        assert!(classes.contains(&"personal"));
        assert!(classes.contains(&"possessive"));
        assert!(classes.contains(&"relative"));
    }

    #[test]
    fn parentheses_annotation() {
        let r = with_sentences("The gene (also called TP53) matters (P < 0.01).");
        let out = annotate_parentheses().apply(vec![r]);
        assert_eq!(out[0].get("parens").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn dict_entity_annotation_finds_lexicon_terms() {
        let lexicon = websift_corpus::Lexicon::generate(LexiconScale::tiny());
        let gene = &lexicon.genes()[0];
        let r = with_sentences(&format!("Mutations of {gene} were frequent."));
        let out = annotate_entities_dict(resources(), EntityType::Gene).apply(vec![r]);
        let ents = out[0].get("entities").unwrap().as_array().unwrap();
        assert_eq!(ents.len(), 1);
        let o = ents[0].as_object().unwrap();
        assert_eq!(o["type"].as_str(), Some("gene"));
        assert_eq!(o["method"].as_str(), Some("dict"));
    }

    #[test]
    fn ml_entity_annotation_produces_mentions_with_offsets() {
        let lexicon = websift_corpus::Lexicon::generate(LexiconScale::tiny());
        let gene = &lexicon.genes()[1];
        let text = format!("Filler sentence first. Expression of {gene} increased.");
        let r = with_sentences(&text);
        let out = annotate_entities_ml(resources(), EntityType::Gene).apply(vec![r]);
        let ents = out[0].get("entities").unwrap().as_array().unwrap();
        assert!(!ents.is_empty(), "CRF should tag a gene-like symbol");
        for e in ents {
            let o = e.as_object().unwrap();
            let (s, e_) = (
                o["start"].as_int().unwrap() as usize,
                o["end"].as_int().unwrap() as usize,
            );
            assert!(e_ <= text.len() && s < e_);
            assert_eq!(o["method"].as_str(), Some("ml"));
        }
    }

    #[test]
    fn disease_ml_tagger_declares_conflicting_library() {
        let sent = annotate_sentences();
        let disease = annotate_entities_ml(resources(), EntityType::Disease);
        assert_eq!(sent.library, Some(("opennlp".to_string(), 15)));
        assert_eq!(disease.library, Some(("opennlp".to_string(), 14)));
    }

    #[test]
    fn dict_cost_dwarfed_by_ml_cost() {
        let dict = annotate_entities_dict(resources(), EntityType::Gene);
        let ml = annotate_entities_ml(resources(), EntityType::Gene);
        assert!(ml.cost.us_per_char > 50.0 * dict.cost.us_per_char);
    }
}
