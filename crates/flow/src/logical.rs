//! Logical plans: DAGs of operators between named sources and sinks.
//!
//! A Meteor script "is parsed into an algebraic representation, logically
//! optimized, and compiled into a parallel data flow program". This module
//! is that algebraic representation: single-input operator nodes (the
//! paper's flows are trees — one source fanning out into linguistic and
//! entity branches), named sources and sinks.

use crate::operator::Operator;

/// Node id within a plan.
pub type NodeId = usize;

/// Sink-name prefix marking a sink that feeds a persistent store instead
/// of an in-memory output dataset. The full convention is
/// `store:<store>/<dataset>`; [`parse_store_sink`] splits it.
///
/// Store routing rides on sink *names* rather than a new [`NodeOp`]
/// variant so every existing plan pass (fusion, analysis, checkpointing,
/// the executor's drive loop) keeps working unchanged — only
/// [`crate::executor::Executor::run_into`] and the WS011 diagnostic give
/// the prefix meaning.
pub const STORE_SINK_PREFIX: &str = "store:";

/// Splits a store-sink name into `(store, dataset)`. Returns `None` when
/// the name does not carry the [`STORE_SINK_PREFIX`] or is malformed
/// (missing `/`, empty store, or empty dataset).
pub fn parse_store_sink(name: &str) -> Option<(&str, &str)> {
    let rest = name.strip_prefix(STORE_SINK_PREFIX)?;
    let (store, dataset) = rest.split_once('/')?;
    if store.is_empty() || dataset.is_empty() {
        return None;
    }
    Some((store, dataset))
}

/// Structural errors raised while building a plan. Plans are often built
/// from untrusted Meteor scripts, so construction must not panic — these
/// propagate through `meteor::compile` as line-mapped script errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The referenced input node does not exist in the plan.
    UnknownInput { node: NodeId, len: usize },
    /// A sink with this output name already exists in the plan.
    DuplicateSink { name: String },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::UnknownInput { node, len } => {
                write!(f, "unknown input node {node} (plan has {len} nodes)")
            }
            PlanError::DuplicateSink { name } => write!(f, "duplicate sink name '{name}'"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A plan node.
// In realistic plans nearly every node is an `Op`, so boxing the large
// variant would buy no aggregate memory and cost a pointer chase in the
// executor's drive loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum NodeOp {
    /// Reads the named input dataset.
    Source(String),
    /// Applies an operator to the parent's output.
    Op(Operator),
    /// Writes the parent's output to the named output dataset.
    Sink(String),
}

#[derive(Debug, Clone)]
pub struct Node {
    pub id: NodeId,
    pub op: NodeOp,
    /// Parent node (None for sources).
    pub input: Option<NodeId>,
}

/// The logical plan.
#[derive(Debug, Clone, Default)]
pub struct LogicalPlan {
    nodes: Vec<Node>,
}

impl LogicalPlan {
    pub fn new() -> LogicalPlan {
        LogicalPlan::default()
    }

    /// Adds a source node reading dataset `name`.
    pub fn source(&mut self, name: &str) -> NodeId {
        self.push(NodeOp::Source(name.to_string()), None)
    }

    /// Adds an operator node downstream of `input`.
    pub fn add(&mut self, input: NodeId, op: Operator) -> Result<NodeId, PlanError> {
        self.check_input(input)?;
        Ok(self.push(NodeOp::Op(op), Some(input)))
    }

    /// Adds a sink writing `input`'s records to dataset `name`. Sink names
    /// are output datasets, so duplicates are rejected.
    pub fn sink(&mut self, input: NodeId, name: &str) -> Result<NodeId, PlanError> {
        self.check_input(input)?;
        if self.sinks().contains(&name) {
            return Err(PlanError::DuplicateSink { name: name.to_string() });
        }
        Ok(self.push(NodeOp::Sink(name.to_string()), Some(input)))
    }

    /// Adds a sink that routes `input`'s records into dataset `dataset`
    /// of the persistent store `store` (via the `store:` name
    /// convention). The plan still executes everywhere a plain sink
    /// would; [`crate::executor::Executor::run_into`] drains the records
    /// into the store afterwards.
    pub fn store_sink(
        &mut self,
        input: NodeId,
        store: &str,
        dataset: &str,
    ) -> Result<NodeId, PlanError> {
        self.sink(input, &format!("{STORE_SINK_PREFIX}{store}/{dataset}"))
    }

    fn check_input(&self, input: NodeId) -> Result<(), PlanError> {
        if input < self.nodes.len() {
            Ok(())
        } else {
            Err(PlanError::UnknownInput { node: input, len: self.nodes.len() })
        }
    }

    fn push(&mut self, op: NodeOp, input: Option<NodeId>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node { id, op, input });
        id
    }

    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    pub fn nodes_mut(&mut self) -> &mut [Node] {
        &mut self.nodes
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of elementary operator nodes (the paper counts its full flow
    /// at 38).
    pub fn operator_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.op, NodeOp::Op(_)))
            .count()
    }

    /// All operators in the plan.
    pub fn operators(&self) -> impl Iterator<Item = &Operator> {
        self.nodes.iter().filter_map(|n| match &n.op {
            NodeOp::Op(op) => Some(op),
            _ => None,
        })
    }

    /// Sink names.
    pub fn sinks(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                NodeOp::Sink(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// `(store, dataset)` pairs for every well-formed store sink, in
    /// node order.
    pub fn store_sinks(&self) -> Vec<(&str, &str)> {
        self.sinks()
            .into_iter()
            .filter_map(parse_store_sink)
            .collect()
    }

    /// Source names.
    pub fn sources(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| match &n.op {
                NodeOp::Source(name) => Some(name.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Children of a node.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.input == Some(id))
            .map(|n| n.id)
            .collect()
    }

    /// Validates structural invariants: every non-source has a parent with
    /// a smaller id (acyclic by construction), every sink is a leaf, and at
    /// least one source and sink exist.
    pub fn validate(&self) -> Result<(), String> {
        if self.sources().is_empty() {
            return Err("plan has no source".into());
        }
        if self.sinks().is_empty() {
            return Err("plan has no sink".into());
        }
        for node in &self.nodes {
            match (&node.op, node.input) {
                (NodeOp::Source(_), Some(_)) => {
                    return Err(format!("source node {} has an input", node.id))
                }
                (NodeOp::Source(_), None) => {}
                (_, None) => return Err(format!("node {} has no input", node.id)),
                (_, Some(p)) if p >= node.id => {
                    return Err(format!("node {} input {} out of order", node.id, p))
                }
                _ => {}
            }
            if matches!(node.op, NodeOp::Sink(_)) && !self.children(node.id).is_empty() {
                return Err(format!("sink node {} has children", node.id));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Operator, Package};

    fn identity(name: &str) -> Operator {
        Operator::map(name, Package::Base, |r| r)
    }

    #[test]
    fn builds_linear_plan() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let a = plan.add(src, identity("a")).unwrap();
        let b = plan.add(a, identity("b")).unwrap();
        plan.sink(b, "out").unwrap();
        assert_eq!(plan.operator_count(), 2);
        assert_eq!(plan.sources(), vec!["docs"]);
        assert_eq!(plan.sinks(), vec!["out"]);
        plan.validate().unwrap();
    }

    #[test]
    fn builds_branching_plan() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let shared = plan.add(src, identity("preprocess")).unwrap();
        let l = plan.add(shared, identity("linguistic")).unwrap();
        let e = plan.add(shared, identity("entities")).unwrap();
        plan.sink(l, "ling").unwrap();
        plan.sink(e, "ents").unwrap();
        assert_eq!(plan.children(shared).len(), 2);
        assert_eq!(plan.sinks().len(), 2);
        plan.validate().unwrap();
    }

    #[test]
    fn validation_catches_missing_sink() {
        let mut plan = LogicalPlan::new();
        plan.source("docs");
        assert!(plan.validate().is_err());
    }

    #[test]
    fn add_rejects_unknown_input() {
        let mut plan = LogicalPlan::new();
        assert_eq!(
            plan.add(42, identity("x")),
            Err(PlanError::UnknownInput { node: 42, len: 0 })
        );
        let err = plan.add(42, identity("x")).unwrap_err();
        assert_eq!(err.to_string(), "unknown input node 42 (plan has 0 nodes)");
    }

    #[test]
    fn store_sink_names_parse_back() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.store_sink(src, "serve", "entities").unwrap();
        plan.sink(src, "plain").unwrap();
        assert_eq!(plan.sinks(), vec!["store:serve/entities", "plain"]);
        assert_eq!(plan.store_sinks(), vec![("serve", "entities")]);
        plan.validate().unwrap();
    }

    #[test]
    fn parse_store_sink_rejects_malformed_names() {
        assert_eq!(parse_store_sink("store:serve/entities"), Some(("serve", "entities")));
        // dataset may itself contain '/': split at the first one
        assert_eq!(parse_store_sink("store:s/a/b"), Some(("s", "a/b")));
        assert_eq!(parse_store_sink("plain"), None);
        assert_eq!(parse_store_sink("store:missing-slash"), None);
        assert_eq!(parse_store_sink("store:/entities"), None);
        assert_eq!(parse_store_sink("store:serve/"), None);
    }

    #[test]
    fn sink_rejects_duplicate_names() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.sink(src, "out").unwrap();
        let err = plan.sink(src, "out").unwrap_err();
        assert_eq!(err, PlanError::DuplicateSink { name: "out".into() });
        assert_eq!(err.to_string(), "duplicate sink name 'out'");
    }
}
