//! Typed frame protocol between the executor and its worker shards.
//!
//! The raw streaming layer ([`websift_resilience::frame`]) moves opaque
//! `(kind, payload)` frames over a pipe or socket; this module gives the
//! shuffle its vocabulary (frame kinds), a counting [`FrameChannel`]
//! wrapper, and the [`CreditWindow`] that bounds how much data the
//! parent may have in flight toward one shard — the per-edge
//! backpressure of the sharded runtime.
//!
//! Everything arriving on a channel is untrusted: a worker process may
//! have died mid-frame, a stream may have desynchronized, a kind byte
//! may be garbage. Every decode path here returns a typed
//! [`TransportError`]; nothing panics on wire bytes.

use std::fmt;
use std::io::{Read, Write};

use websift_resilience::frame::{read_frame, write_frame, FrameError};
use websift_resilience::CodecError;

/// Stage setup: the serialized stage task a worker must execute.
pub const K_STAGE: u8 = 0x01;
/// A chunk of input records (parent → worker).
pub const K_DATA: u8 = 0x02;
/// End of input for the current stage (parent → worker).
pub const K_EOF_DATA: u8 = 0x03;
/// Receipt of one `K_DATA` frame (worker → parent, group-by mode).
pub const K_ACK: u8 = 0x04;
/// One chunk's full result (worker → parent, pipeline mode).
pub const K_RESULT: u8 = 0x05;
/// A batch of grouped records (worker → parent, group-by mode).
pub const K_GROUPS: u8 = 0x06;
/// End of the worker's group stream, carrying spill statistics.
pub const K_DONE: u8 = 0x07;
/// Worker-side failure (panic or bad stage spec), with context.
pub const K_ERR: u8 = 0x08;
/// Orderly shutdown request (parent → worker).
pub const K_BYE: u8 = 0x09;

/// Errors on a shard channel.
#[derive(Debug)]
pub enum TransportError {
    /// The frame layer failed (I/O, truncation, corruption).
    Frame(FrameError),
    /// A frame payload failed to decode.
    Codec(CodecError),
    /// A frame of an unexpected kind arrived.
    Protocol { expected: &'static str, got: u8 },
    /// The peer closed the stream where a frame was required.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Frame(e) => write!(f, "shard channel frame error: {e}"),
            TransportError::Codec(e) => write!(f, "shard frame payload corrupt: {e}"),
            TransportError::Protocol { expected, got } => {
                write!(f, "shard protocol violation: expected {expected}, got frame kind {got:#04x}")
            }
            TransportError::Closed => write!(f, "shard channel closed mid-conversation"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<FrameError> for TransportError {
    fn from(e: FrameError) -> TransportError {
        TransportError::Frame(e)
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> TransportError {
        TransportError::Codec(e)
    }
}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> TransportError {
        TransportError::Frame(FrameError::Io(e))
    }
}

/// A counted frame channel over any `Read`/`Write` pair — a child
/// process's stdio pipes or one end of a `UnixStream` pair.
#[derive(Debug)]
pub struct FrameChannel<R, W> {
    reader: R,
    writer: W,
    /// Frames written to the peer.
    pub frames_sent: u64,
    /// Frames read from the peer.
    pub frames_received: u64,
    /// Total payload bytes moved in either direction.
    pub payload_bytes: u64,
}

impl<R: Read, W: Write> FrameChannel<R, W> {
    pub fn new(reader: R, writer: W) -> FrameChannel<R, W> {
        FrameChannel { reader, writer, frames_sent: 0, frames_received: 0, payload_bytes: 0 }
    }

    /// Writes one frame. Not flushed — call [`Self::flush`] at
    /// turn-taking points so pipelined frames share syscalls.
    pub fn send(&mut self, kind: u8, payload: &[u8]) -> Result<(), TransportError> {
        write_frame(&mut self.writer, kind, payload)?;
        self.frames_sent += 1;
        self.payload_bytes += payload.len() as u64;
        Ok(())
    }

    pub fn flush(&mut self) -> Result<(), TransportError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next frame; `Ok(None)` on clean end-of-stream.
    pub fn recv(&mut self) -> Result<Option<(u8, Vec<u8>)>, TransportError> {
        match read_frame(&mut self.reader)? {
            Some((kind, payload)) => {
                self.frames_received += 1;
                self.payload_bytes += payload.len() as u64;
                Ok(Some((kind, payload)))
            }
            None => Ok(None),
        }
    }

    /// Reads the next frame, treating end-of-stream as
    /// [`TransportError::Closed`] — for protocol points where the peer
    /// owes us an answer.
    pub fn recv_required(&mut self, expected: &'static str) -> Result<(u8, Vec<u8>), TransportError> {
        match self.recv()? {
            Some(frame) => Ok(frame),
            None => {
                let _ = expected;
                Err(TransportError::Closed)
            }
        }
    }
}

/// Bounded per-edge backpressure: the parent may have at most `window`
/// unanswered data frames outstanding toward one shard. The shard
/// answers each `K_DATA` with a `K_RESULT` (pipeline mode) or `K_ACK`
/// (group-by mode); the parent blocks on those answers before sending
/// more, so a slow worker throttles its feeder instead of buffering an
/// unbounded queue in the pipe.
#[derive(Debug, Clone, Copy)]
pub struct CreditWindow {
    window: usize,
    in_flight: usize,
}

impl CreditWindow {
    pub fn new(window: usize) -> CreditWindow {
        CreditWindow { window: window.max(1), in_flight: 0 }
    }

    /// May another data frame be sent without waiting for an answer?
    pub fn has_credit(&self) -> bool {
        self.in_flight < self.window
    }

    /// Records one data frame sent.
    pub fn on_sent(&mut self) {
        self.in_flight += 1;
    }

    /// Records one answer received, releasing one credit.
    pub fn on_answered(&mut self) {
        self.in_flight = self.in_flight.saturating_sub(1);
    }

    /// Data frames currently unanswered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_roundtrips_and_counts() {
        let mut wire = Vec::new();
        {
            let mut ch = FrameChannel::new(std::io::empty(), &mut wire);
            ch.send(K_DATA, b"records").unwrap();
            ch.send(K_EOF_DATA, b"").unwrap();
            ch.flush().unwrap();
            assert_eq!(ch.frames_sent, 2);
            assert_eq!(ch.payload_bytes, 7);
        }
        let mut ch = FrameChannel::new(&wire[..], std::io::sink());
        assert_eq!(ch.recv().unwrap(), Some((K_DATA, b"records".to_vec())));
        assert_eq!(ch.recv().unwrap(), Some((K_EOF_DATA, Vec::new())));
        assert_eq!(ch.recv().unwrap(), None);
        assert_eq!(ch.frames_received, 2);
    }

    #[test]
    fn required_recv_reports_closed_stream() {
        let mut ch = FrameChannel::new(std::io::empty(), std::io::sink());
        assert!(matches!(
            ch.recv_required("a result"),
            Err(TransportError::Closed)
        ));
    }

    #[test]
    fn truncated_stream_is_a_typed_frame_error() {
        let mut wire = Vec::new();
        {
            let mut ch = FrameChannel::new(std::io::empty(), &mut wire);
            ch.send(K_RESULT, b"partial aggregate bytes").unwrap();
        }
        let cut = &wire[..wire.len() - 3];
        let mut ch = FrameChannel::new(cut, std::io::sink());
        assert!(matches!(ch.recv(), Err(TransportError::Frame(_))));
    }

    #[test]
    fn credit_window_bounds_in_flight_data() {
        let mut win = CreditWindow::new(2);
        assert!(win.has_credit());
        win.on_sent();
        win.on_sent();
        assert!(!win.has_credit());
        assert_eq!(win.in_flight(), 2);
        win.on_answered();
        assert!(win.has_credit());
        win.on_answered();
        win.on_answered(); // extra answers never underflow
        assert_eq!(win.in_flight(), 0);
    }

    #[test]
    fn zero_window_is_clamped_to_one() {
        let win = CreditWindow::new(0);
        assert!(win.has_credit());
    }
}
