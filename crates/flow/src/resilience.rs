//! Flow-side resilience surface: per-run options and the sealed
//! operator-granular [`FlowCheckpoint`].
//!
//! The paper's flows died for infrastructure reasons — timeout-induced
//! crashes, lost workers, failed nodes — and every death meant rerunning
//! the whole flow over terabytes of crawled data. This module gives the
//! executor the knobs to (a) inject those failures deterministically,
//! (b) retry lost partitions and reschedule around dead nodes, and
//! (c) checkpoint completed plan nodes so a rerun resumes instead of
//! restarting.

use websift_resilience::codec;
use websift_resilience::{CodecError, FaultPlan};

/// Frame tag + version for flow checkpoints.
const CHECKPOINT_TAG: [u8; 4] = *b"WSFK";
const CHECKPOINT_VERSION: u16 = 1;

/// Per-run resilience configuration for [`crate::Executor`].
///
/// Defaults are behaviour-preserving: no fault plan means no injected
/// panics or losses, and the retry/rescheduling machinery only engages on
/// failures — so [`crate::Executor::run`] behaves exactly as it did
/// before this module existed.
#[derive(Debug, Clone)]
pub struct FlowResilience {
    /// Deterministic fault schedule; `None` disables injection.
    pub faults: Option<FaultPlan>,
    /// Times a panicked partition is re-launched before the operator
    /// (and flow) is declared failed.
    pub partition_retries: u32,
    /// Take a checkpoint after every N completed plan nodes; `None`
    /// disables checkpointing.
    pub checkpoint_every_nodes: Option<usize>,
    /// Stop (simulating a kill) before executing this plan-node index.
    pub stop_after_nodes: Option<usize>,
}

impl Default for FlowResilience {
    fn default() -> FlowResilience {
        FlowResilience {
            faults: None,
            partition_retries: 3,
            checkpoint_every_nodes: None,
            stop_after_nodes: None,
        }
    }
}

impl FlowResilience {
    /// Options for a fault-injection run: uniform fault rate across all
    /// kinds, checkpointing every `checkpoint_every` plan nodes.
    pub fn injected(seed: u64, rate: f64, checkpoint_every: usize) -> FlowResilience {
        FlowResilience {
            faults: Some(FaultPlan::uniform(seed, rate)),
            checkpoint_every_nodes: Some(checkpoint_every),
            ..FlowResilience::default()
        }
    }
}

/// A sealed flow checkpoint: the executor's complete mid-plan state
/// (completed node outputs, sink contents, metrics, surviving nodes)
/// framed with a magic tag, version, and checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowCheckpoint {
    frame: Vec<u8>,
    /// Index of the next plan node to execute on resume.
    pub next_node: usize,
}

impl FlowCheckpoint {
    pub(crate) fn seal(next_node: usize, payload: &[u8]) -> FlowCheckpoint {
        FlowCheckpoint {
            frame: codec::seal(CHECKPOINT_TAG, CHECKPOINT_VERSION, payload),
            next_node,
        }
    }

    pub(crate) fn payload(&self) -> Result<&[u8], CodecError> {
        codec::open(CHECKPOINT_TAG, CHECKPOINT_VERSION, &self.frame)
    }

    /// The serialized frame — what a real deployment would persist.
    pub fn as_bytes(&self) -> &[u8] {
        &self.frame
    }

    /// Rehydrates a checkpoint from stored bytes, verifying tag,
    /// version, and checksum.
    pub fn from_bytes(next_node: usize, bytes: Vec<u8>) -> Result<FlowCheckpoint, CodecError> {
        let ckpt = FlowCheckpoint { frame: bytes, next_node };
        ckpt.payload()?;
        Ok(ckpt)
    }

    /// Content digest, for cheap state comparison.
    pub fn digest(&self) -> u64 {
        codec::digest(&self.frame)
    }

    pub fn size_bytes(&self) -> usize {
        self.frame.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupted_flow_checkpoint_is_rejected() {
        let ckpt = FlowCheckpoint::seal(5, b"executor state");
        assert_eq!(ckpt.next_node, 5);
        assert!(ckpt.payload().is_ok());
        let mut bytes = ckpt.as_bytes().to_vec();
        bytes[10] ^= 0x01;
        assert!(FlowCheckpoint::from_bytes(5, bytes).is_err());
    }

    #[test]
    fn default_flow_resilience_is_inert() {
        let r = FlowResilience::default();
        assert!(r.faults.is_none());
        assert!(r.checkpoint_every_nodes.is_none());
        assert!(r.stop_after_nodes.is_none());
    }
}
