//! The semi-structured record model flowing through operators.
//!
//! Stratosphere's Sopremo/Meteor layer operates on JSON-like records; the
//! IE operators "add specific annotations (POS tags, entity annotation,
//! token boundaries etc.) and thus actually increas[e] the size of the data
//! through the analysis pipeline" — the property behind the paper's
//! network-overload war story. [`Value::approx_bytes`] is the size model
//! the simulated cluster uses to account for that growth.

use serde::Serialize;
use std::sync::Arc;
use websift_resilience::{CodecError, Reader, Snapshot, Writer};

/// The sorted field map backing [`Value::Object`] and [`Record`].
///
/// Annotation operators build millions of tiny `{start, end}` objects per
/// run. A sorted `Vec<(key, value)>` keeps each one to a single
/// right-sized allocation (~100 bytes for a two-field object, where a
/// B-tree leaf node is over 500) and makes drops a linear walk instead of
/// a tree teardown. Iteration order is sorted by key — exactly BTreeMap's
/// — so codec bytes, JSON output, digests, and the `approx_bytes` size
/// model are unchanged by the representation swap.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FieldMap(Vec<(Arc<str>, Value)>);

impl FieldMap {
    pub fn new() -> FieldMap {
        FieldMap(Vec::new())
    }

    pub fn with_capacity(n: usize) -> FieldMap {
        FieldMap(Vec::with_capacity(n))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    fn idx(&self, key: &str) -> Result<usize, usize> {
        self.0.binary_search_by(|(k, _)| (**k).cmp(key))
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.idx(key).ok().map(|i| &self.0[i].1)
    }

    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.idx(key).ok().map(|i| &mut self.0[i].1)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.idx(key).is_ok()
    }

    /// Inserts, replacing and returning any previous value for the key —
    /// `BTreeMap::insert` semantics. Appending in key order is O(1).
    pub fn insert(&mut self, key: Arc<str>, value: Value) -> Option<Value> {
        match self.0.last() {
            Some((last, _)) if **last < *key => {
                self.0.push((key, value));
                None
            }
            _ => match self.idx(&key) {
                Ok(i) => Some(std::mem::replace(&mut self.0[i].1, value)),
                Err(i) => {
                    self.0.insert(i, (key, value));
                    None
                }
            },
        }
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.idx(key).ok().map(|i| self.0.remove(i).1)
    }

    pub fn keys(&self) -> impl Iterator<Item = &Arc<str>> {
        self.0.iter().map(|(k, _)| k)
    }

    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter().map(|(_, v)| v)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Value)> {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

impl IntoIterator for FieldMap {
    type Item = (Arc<str>, Value);
    type IntoIter = std::vec::IntoIter<(Arc<str>, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a FieldMap {
    type Item = (&'a Arc<str>, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (Arc<str>, Value)>,
        fn(&'a (Arc<str>, Value)) -> (&'a Arc<str>, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(Arc<str>, Value)> for FieldMap {
    /// Last value wins on duplicate keys, matching `BTreeMap::from_iter`.
    fn from_iter<I: IntoIterator<Item = (Arc<str>, Value)>>(iter: I) -> FieldMap {
        let mut v: Vec<(Arc<str>, Value)> = iter.into_iter().collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v.dedup_by(|cur, prev| {
            if cur.0 == prev.0 {
                std::mem::swap(cur, prev);
                true
            } else {
                false
            }
        });
        FieldMap(v)
    }
}

impl std::ops::Index<&str> for FieldMap {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or_else(|| panic!("no field {key:?}"))
    }
}


/// A JSON-like value. Strings are `Arc<str>` so the residual clones on
/// fan-out and Reduce grouping are pointer bumps, not text copies — the
/// codec bytes and [`Value::approx_bytes`] model are unaffected. Object
/// (and [`Record`]) keys are `Arc<str>` too, built through [`intern`]:
/// the annotation-heavy operators create millions of tiny `{start, end}`
/// maps, and pooling the recurring key names turns every key into a
/// refcount bump instead of a heap string.
#[derive(Debug, Clone, PartialEq, Serialize)]
#[serde(untagged)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    Array(Vec<Value>),
    Object(FieldMap),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&FieldMap> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes — the unit of the simulated
    /// cluster's network and storage accounting.
    pub fn approx_bytes(&self) -> u64 {
        match self {
            Value::Null => 4,
            Value::Bool(_) => 5,
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() as u64 + 2,
            Value::Array(a) => 2 + a.iter().map(Value::approx_bytes).sum::<u64>(),
            Value::Object(o) => {
                2 + o
                    .iter()
                    .map(|(k, v)| k.len() as u64 + 3 + v.approx_bytes())
                    .sum::<u64>()
            }
        }
    }
}

impl Snapshot for Value {
    fn encode(&self, w: &mut Writer) {
        match self {
            Value::Null => w.u8(0),
            Value::Bool(b) => {
                w.u8(1);
                w.bool(*b);
            }
            Value::Int(i) => {
                w.u8(2);
                w.i64(*i);
            }
            Value::Float(f) => {
                w.u8(3);
                w.f64(*f);
            }
            Value::Str(s) => {
                w.u8(4);
                w.str(s);
            }
            Value::Array(a) => {
                w.u8(5);
                a.encode(w);
            }
            Value::Object(o) => {
                w.u8(6);
                w.usize(o.len());
                for (k, v) in o {
                    w.str(k);
                    v.encode(w);
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Value, CodecError> {
        Ok(match r.u8()? {
            0 => Value::Null,
            1 => Value::Bool(r.bool()?),
            2 => Value::Int(r.i64()?),
            3 => Value::Float(r.f64()?),
            4 => Value::Str(r.str()?.into()),
            5 => Value::Array(Snapshot::decode(r)?),
            6 => {
                // Encoded maps are already in key order, so each insert
                // takes FieldMap's O(1) append fast path.
                let n = r.usize()?;
                let mut o = FieldMap::with_capacity(n);
                for _ in 0..n {
                    let k = r.str()?;
                    o.insert(intern(&k), Value::decode(r)?);
                }
                Value::Object(o)
            }
            tag => return Err(CodecError::BadTag { what: "Value", tag }),
        })
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s.into())
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Value {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Value {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Value {
        Value::Float(f)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// A record: a top-level JSON object.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Record(pub FieldMap);

impl Default for Record {
    fn default() -> Self {
        Record::new()
    }
}

impl Record {
    pub fn new() -> Record {
        Record(FieldMap::new())
    }

    /// Builds a record from (key, value) pairs.
    pub fn from_pairs<const N: usize>(pairs: [(&str, Value); N]) -> Record {
        Record(pairs.into_iter().map(|(k, v)| (intern(k), v)).collect())
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.0.get(key)
    }

    pub fn set(&mut self, key: &str, value: impl Into<Value>) -> &mut Record {
        self.0.insert(intern(key), value.into());
        self
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.0.remove(key)
    }

    pub fn contains(&self, key: &str) -> bool {
        self.0.contains_key(key)
    }

    /// The document text field, the field nearly every IE operator reads.
    pub fn text(&self) -> Option<&str> {
        self.get("text").and_then(Value::as_str)
    }

    /// The text field as a shared handle: a refcount bump instead of the
    /// full-text copy operators used to make so they could keep reading
    /// the text while mutating the record.
    pub fn text_shared(&self) -> Option<std::sync::Arc<str>> {
        match self.get("text") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// Same size model as `Value::Object(..).approx_bytes()` without
    /// cloning the field map — this runs once per record per operator in
    /// the executor's byte accounting.
    pub fn approx_bytes(&self) -> u64 {
        2 + self
            .0
            .iter()
            .map(|(k, v)| k.len() as u64 + 3 + v.approx_bytes())
            .sum::<u64>()
    }

    /// Pushes a value onto an array field, creating it if missing.
    pub fn push_to(&mut self, key: &str, value: Value) {
        match self.0.get_mut(key) {
            Some(Value::Array(a)) => a.push(value),
            _ => {
                self.0.insert(intern(key), Value::Array(vec![value]));
            }
        }
    }
}

impl Snapshot for Record {
    fn encode(&self, w: &mut Writer) {
        // Byte-identical to `Value::Object(self.0.clone()).encode(w)`
        // without cloning the field map.
        w.u8(6);
        w.usize(self.0.len());
        for (k, v) in &self.0 {
            w.str(k);
            v.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Record, CodecError> {
        match Value::decode(r)? {
            Value::Object(o) => Ok(Record(o)),
            _ => Err(CodecError::BadTag { what: "Record", tag: 255 }),
        }
    }
}

/// Recurring field keys across the workspace's flows, sorted for binary
/// search. Hits in [`intern`] clone a pooled `Arc<str>` (a refcount bump);
/// the list is an optimization only — unknown keys still work, they just
/// pay one allocation.
static COMMON_KEYS: &[&str] = &[
    "annotations",
    "class",
    "corpus",
    "count",
    "end",
    "entities",
    "has_markup",
    "id",
    "key",
    "links",
    "mentions",
    "method",
    "name",
    "negation",
    "page",
    "parentheses",
    "pos",
    "pronouns",
    "round",
    "score",
    "sentence",
    "sentences",
    "start",
    "tags",
    "text",
    "token",
    "tokens",
    "transcodable",
    "type",
    "url",
];

/// A shared handle for a field key: pooled for the workspace's recurring
/// names, freshly allocated otherwise. The annotation operators build
/// millions of small objects per run, and this is what keeps their key
/// strings from being individually heap-allocated and freed.
pub fn intern(key: &str) -> Arc<str> {
    static POOL: std::sync::OnceLock<Vec<Arc<str>>> = std::sync::OnceLock::new();
    let pool = POOL.get_or_init(|| COMMON_KEYS.iter().map(|&k| Arc::from(k)).collect());
    match COMMON_KEYS.binary_search(&key) {
        Ok(i) => pool[i].clone(),
        Err(_) => Arc::from(key),
    }
}

/// Builds an annotation object `{start, end, ...extra}` — the common shape
/// for sentence/token/mention annotations.
pub fn span_annotation(start: usize, end: usize, extra: &[(&str, Value)]) -> Value {
    // "end" sorts before "start", so both inserts take the append path
    // and the map is one exact-sized allocation for the common no-extra
    // case.
    let mut obj = FieldMap::with_capacity(2 + extra.len());
    obj.insert(intern("end"), Value::Int(end as i64));
    obj.insert(intern("start"), Value::Int(start as i64));
    for (k, v) in extra {
        obj.insert(intern(k), v.clone());
    }
    Value::Object(obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let mut r = Record::new();
        r.set("id", 7i64).set("text", "hello");
        assert_eq!(r.get("id").unwrap().as_int(), Some(7));
        assert_eq!(r.text(), Some("hello"));
        assert!(r.contains("text"));
        assert!(!r.contains("missing"));
        assert_eq!(r.remove("id"), Some(Value::Int(7)));
    }

    #[test]
    fn size_grows_with_annotations() {
        let mut r = Record::from_pairs([("text", Value::from("some document text"))]);
        let before = r.approx_bytes();
        for i in 0..50 {
            r.push_to("entities", span_annotation(i, i + 5, &[("type", "gene".into())]));
        }
        let after = r.approx_bytes();
        assert!(after > before * 5, "annotations must inflate records: {before} -> {after}");
    }

    #[test]
    fn push_to_creates_and_appends() {
        let mut r = Record::new();
        r.push_to("xs", Value::Int(1));
        r.push_to("xs", Value::Int(2));
        assert_eq!(r.get("xs").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        let arr: Value = vec![1i64, 2, 3].into();
        assert_eq!(arr.as_array().unwrap().len(), 3);
    }

    #[test]
    fn span_annotation_shape() {
        let a = span_annotation(3, 9, &[("kind", "neg".into())]);
        let o = a.as_object().unwrap();
        assert_eq!(o["start"].as_int(), Some(3));
        assert_eq!(o["end"].as_int(), Some(9));
        assert_eq!(o["kind"].as_str(), Some("neg"));
    }

    #[test]
    fn record_codec_and_bytes_match_value_object() {
        // The non-cloning Record fast paths must stay byte-identical to
        // the generic Value::Object encoding and size model.
        let mut r = Record::from_pairs([("text", Value::from("some text")), ("id", 9i64.into())]);
        r.push_to("entities", span_annotation(0, 4, &[("type", "gene".into())]));
        let as_value = Value::Object(r.0.clone());
        assert_eq!(r.approx_bytes(), as_value.approx_bytes());
        let mut w1 = Writer::new();
        r.encode(&mut w1);
        let mut w2 = Writer::new();
        as_value.encode(&mut w2);
        assert_eq!(w1.into_bytes(), w2.into_bytes());
    }

    #[test]
    fn str_values_clone_cheaply() {
        let s: Arc<str> = Arc::from("shared text");
        let v = Value::Str(s.clone());
        let v2 = v.clone();
        match (&v, &v2) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
        assert_eq!(Arc::strong_count(&s), 3);
    }

    #[test]
    fn approx_bytes_sane() {
        assert!(Value::Null.approx_bytes() < 10);
        assert_eq!(Value::Str("abcd".into()).approx_bytes(), 6);
        let obj = Value::Object(
            [(intern("k"), Value::Int(1))].into_iter().collect(),
        );
        assert!(obj.approx_bytes() > 8);
    }
}
