//! The operator model: UDF-bearing operators with semantic and resource
//! annotations.
//!
//! Stratosphere organizes its ~60 operators into four packages (BASE, IE,
//! WA, DC) and optimizes UDF-heavy flows using *semantic annotations* —
//! which record fields an operator reads and writes (the SOFA optimizer the
//! authors cite is built on exactly that idea). Each operator here carries:
//!
//! - its **package** and **kind** (map / flat-map / filter / reduce);
//! - **reads/writes field sets** driving the reordering rules;
//! - a **cost model** (startup seconds, per-worker memory at paper scale,
//!   per-character processing cost, optional quadratic blow-up) that the
//!   simulated cluster uses for admission control and for the scale-out /
//!   scale-up experiments;
//! - an optional **library dependency** `(name, major version)` — the
//!   ingredient of the paper's OpenNLP 1.4-vs-1.5 class-loader war story.

use crate::record::Record;
use serde::Serialize;
use std::sync::Arc;

/// Operator package, per the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Package {
    /// Relational/general-purpose operators.
    Base,
    /// Information extraction (NLP + NER).
    Ie,
    /// Web analytics (markup handling, link extraction).
    Wa,
    /// Data cleansing.
    Dc,
}

/// Execution kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Kind {
    /// 1:1 record transform.
    Map,
    /// 1:N record transform.
    FlatMap,
    /// Predicate.
    Filter,
    /// Keyed aggregation (forces a shuffle).
    Reduce,
}

/// Resource/cost annotations at paper scale, consumed by the simulated
/// cluster (admission control, Figs. 4/5) — not by the real executor,
/// which measures wall time directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostModel {
    /// One-time per-worker startup in simulated seconds (dictionary loads).
    pub startup_secs: f64,
    /// Resident memory per worker thread in bytes at paper scale.
    pub memory_bytes: u64,
    /// Per-character processing cost in simulated microseconds.
    pub us_per_char: f64,
    /// If set, cost grows quadratically: multiplied by `chars / quad_ref`.
    pub quadratic_ref: Option<f64>,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            startup_secs: 0.0,
            memory_bytes: 64 << 20, // 64 MB baseline per worker
            us_per_char: 0.01,
            quadratic_ref: None,
        }
    }
}

impl CostModel {
    /// Simulated processing cost of one record with `chars` characters of
    /// text, in seconds.
    pub fn record_cost_secs(&self, chars: usize) -> f64 {
        let mut us = self.us_per_char * chars as f64;
        if let Some(reference) = self.quadratic_ref {
            us *= 1.0 + chars as f64 / reference;
        }
        us / 1e6
    }
}

/// A reduce operator's aggregation function: key plus that key's records.
pub type AggregateFn = Arc<dyn Fn(&str, Vec<Record>) -> Vec<Record> + Send + Sync>;

/// The UDF payload.
#[derive(Clone)]
pub enum OpFunc {
    Map(Arc<dyn Fn(Record) -> Record + Send + Sync>),
    FlatMap(Arc<dyn Fn(Record) -> Vec<Record> + Send + Sync>),
    Filter(Arc<dyn Fn(&Record) -> bool + Send + Sync>),
    Reduce {
        key: Arc<dyn Fn(&Record) -> String + Send + Sync>,
        aggregate: AggregateFn,
    },
}

/// An operator instance.
#[derive(Clone)]
pub struct Operator {
    pub name: String,
    pub package: Package,
    pub kind: Kind,
    /// Record fields the UDF reads (semantic annotation).
    pub reads: Vec<String>,
    /// Record fields the UDF writes (semantic annotation).
    pub writes: Vec<String>,
    pub cost: CostModel,
    /// External library dependency `(name, major version)`.
    pub library: Option<(String, u32)>,
    func: OpFunc,
}

impl std::fmt::Debug for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Operator")
            .field("name", &self.name)
            .field("package", &self.package)
            .field("kind", &self.kind)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl Operator {
    pub fn map(
        name: &str,
        package: Package,
        f: impl Fn(Record) -> Record + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            name: name.to_string(),
            package,
            kind: Kind::Map,
            reads: Vec::new(),
            writes: Vec::new(),
            cost: CostModel::default(),
            library: None,
            func: OpFunc::Map(Arc::new(f)),
        }
    }

    pub fn flat_map(
        name: &str,
        package: Package,
        f: impl Fn(Record) -> Vec<Record> + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            kind: Kind::FlatMap,
            func: OpFunc::FlatMap(Arc::new(f)),
            ..Operator::map(name, package, |r| r)
        }
    }

    pub fn filter(
        name: &str,
        package: Package,
        f: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            kind: Kind::Filter,
            func: OpFunc::Filter(Arc::new(f)),
            ..Operator::map(name, package, |r| r)
        }
    }

    pub fn reduce(
        name: &str,
        package: Package,
        key: impl Fn(&Record) -> String + Send + Sync + 'static,
        aggregate: impl Fn(&str, Vec<Record>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            kind: Kind::Reduce,
            func: OpFunc::Reduce {
                key: Arc::new(key),
                aggregate: Arc::new(aggregate),
            },
            ..Operator::map(name, package, |r| r)
        }
    }

    /// Declares the fields read (builder style).
    pub fn with_reads(mut self, fields: &[&str]) -> Operator {
        self.reads = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declares the fields written.
    pub fn with_writes(mut self, fields: &[&str]) -> Operator {
        self.writes = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Operator {
        self.cost = cost;
        self
    }

    pub fn with_library(mut self, name: &str, major: u32) -> Operator {
        self.library = Some((name.to_string(), major));
        self
    }

    pub fn func(&self) -> &OpFunc {
        &self.func
    }

    /// Can this operator be chained into a pipeline stage (no shuffle)?
    pub fn is_pipelineable(&self) -> bool {
        self.kind != Kind::Reduce
    }

    /// Applies the operator to a batch sequentially (the executor handles
    /// parallelism; this is also the unit-test entry point).
    pub fn apply(&self, input: Vec<Record>) -> Vec<Record> {
        match &self.func {
            OpFunc::Map(f) => input.into_iter().map(|r| f(r)).collect(),
            OpFunc::FlatMap(f) => input.into_iter().flat_map(|r| f(r)).collect(),
            OpFunc::Filter(f) => input.into_iter().filter(|r| f(r)).collect(),
            OpFunc::Reduce { key, aggregate } => {
                use std::collections::BTreeMap;
                let mut groups: BTreeMap<String, Vec<Record>> = BTreeMap::new();
                for r in input {
                    groups.entry(key(&r)).or_default().push(r);
                }
                groups
                    .into_iter()
                    .flat_map(|(k, rs)| aggregate(&k, rs))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Value;

    fn rec(id: i64) -> Record {
        let mut r = Record::new();
        r.set("id", id).set("text", format!("doc {id}"));
        r
    }

    #[test]
    fn map_applies_to_each_record() {
        let op = Operator::map("bump", Package::Base, |mut r| {
            let id = r.get("id").unwrap().as_int().unwrap();
            r.set("id", id + 1);
            r
        });
        let out = op.apply(vec![rec(1), rec(2)]);
        assert_eq!(out[0].get("id").unwrap().as_int(), Some(2));
        assert_eq!(out[1].get("id").unwrap().as_int(), Some(3));
    }

    #[test]
    fn flat_map_changes_cardinality() {
        let op = Operator::flat_map("dup", Package::Base, |r| vec![r.clone(), r]);
        assert_eq!(op.apply(vec![rec(1)]).len(), 2);
    }

    #[test]
    fn filter_drops_records() {
        let op = Operator::filter("odd", Package::Base, |r| {
            r.get("id").unwrap().as_int().unwrap() % 2 == 1
        });
        let out = op.apply(vec![rec(1), rec(2), rec(3)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn reduce_groups_by_key() {
        let op = Operator::reduce(
            "count-by-parity",
            Package::Base,
            |r| (r.get("id").unwrap().as_int().unwrap() % 2).to_string(),
            |k, rs| {
                let mut out = Record::new();
                out.set("key", k).set("count", rs.len());
                vec![out]
            },
        );
        let out = op.apply(vec![rec(1), rec(2), rec(3), rec(4), rec(5)]);
        assert_eq!(out.len(), 2);
        // BTreeMap ordering: "0" then "1"
        assert_eq!(out[0].get("count").unwrap().as_int(), Some(2));
        assert_eq!(out[1].get("count").unwrap().as_int(), Some(3));
    }

    #[test]
    fn cost_model_linear_and_quadratic() {
        let lin = CostModel {
            us_per_char: 1.0,
            ..CostModel::default()
        };
        assert!((lin.record_cost_secs(1000) - 1e-3).abs() < 1e-12);
        let quad = CostModel {
            us_per_char: 1.0,
            quadratic_ref: Some(100.0),
            ..CostModel::default()
        };
        // 1000 chars: 1000us * (1 + 10) = 11ms
        assert!((quad.record_cost_secs(1000) - 11e-3).abs() < 1e-9);
        assert!(quad.record_cost_secs(2000) > 3.0 * quad.record_cost_secs(1000));
    }

    #[test]
    fn annotations_and_builders() {
        let op = Operator::map("x", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["pos"])
            .with_library("opennlp", 15)
            .with_cost(CostModel {
                memory_bytes: 123,
                ..CostModel::default()
            });
        assert_eq!(op.reads, vec!["text"]);
        assert_eq!(op.writes, vec!["pos"]);
        assert_eq!(op.library, Some(("opennlp".to_string(), 15)));
        assert_eq!(op.cost.memory_bytes, 123);
        assert!(op.is_pipelineable());
    }

    #[test]
    fn value_untouched_by_identity() {
        let op = Operator::map("id", Package::Base, |r| r);
        let input = vec![rec(9)];
        let out = op.apply(input.clone());
        assert_eq!(out[0].get("text"), Some(&Value::Str("doc 9".into())));
        assert_eq!(out, input);
    }
}
