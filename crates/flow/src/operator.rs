//! The operator model: UDF-bearing operators with semantic and resource
//! annotations.
//!
//! Stratosphere organizes its ~60 operators into four packages (BASE, IE,
//! WA, DC) and optimizes UDF-heavy flows using *semantic annotations* —
//! which record fields an operator reads and writes (the SOFA optimizer the
//! authors cite is built on exactly that idea). Each operator here carries:
//!
//! - its **package** and **kind** (map / flat-map / filter / reduce);
//! - **reads/writes field sets** driving the reordering rules;
//! - a **cost model** (startup seconds, per-worker memory at paper scale,
//!   per-character processing cost, optional quadratic blow-up) that the
//!   simulated cluster uses for admission control and for the scale-out /
//!   scale-up experiments;
//! - an optional **library dependency** `(name, major version)` — the
//!   ingredient of the paper's OpenNLP 1.4-vs-1.5 class-loader war story.

use crate::record::{Record, Value};
use serde::Serialize;
use std::cmp::Ordering;
use std::sync::Arc;
use websift_analyze::lattice::FieldType;
use websift_resilience::{CodecError, Reader, Snapshot, Writer};

/// Operator package, per the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Package {
    /// Relational/general-purpose operators.
    Base,
    /// Information extraction (NLP + NER).
    Ie,
    /// Web analytics (markup handling, link extraction).
    Wa,
    /// Data cleansing.
    Dc,
}

/// Execution kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Kind {
    /// 1:1 record transform.
    Map,
    /// 1:N record transform.
    FlatMap,
    /// Predicate.
    Filter,
    /// Keyed aggregation (forces a shuffle).
    Reduce,
}

/// Resource/cost annotations at paper scale, consumed by the simulated
/// cluster (admission control, Figs. 4/5) — not by the real executor,
/// which measures wall time directly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostModel {
    /// One-time per-worker startup in simulated seconds (dictionary loads).
    pub startup_secs: f64,
    /// Resident memory per worker thread in bytes at paper scale.
    pub memory_bytes: u64,
    /// Per-character processing cost in simulated microseconds.
    pub us_per_char: f64,
    /// If set, cost grows quadratically: multiplied by `chars / quad_ref`.
    pub quadratic_ref: Option<f64>,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            startup_secs: 0.0,
            memory_bytes: 64 << 20, // 64 MB baseline per worker
            us_per_char: 0.01,
            quadratic_ref: None,
        }
    }
}

impl CostModel {
    /// Simulated processing cost of one record with `chars` characters of
    /// text, in seconds.
    pub fn record_cost_secs(&self, chars: usize) -> f64 {
        let mut us = self.us_per_char * chars as f64;
        if let Some(reference) = self.quadratic_ref {
            us *= 1.0 + chars as f64 / reference;
        }
        us / 1e6
    }
}

/// A reduce operator's aggregation function: key plus that key's records.
pub type AggregateFn = Arc<dyn Fn(&str, Vec<Record>) -> Vec<Record> + Send + Sync>;

/// A reduce operator's grouping-key function.
pub type KeyFn = Arc<dyn Fn(&Record) -> String + Send + Sync>;

/// The explicit merge contract that opts a user-defined aggregate back
/// into partial aggregation ([`Aggregate::CustomCombinable`]). The
/// per-key state is a [`Value`] so it rides the snapshot codec through
/// combiner shuffles and checkpoint frames unchanged.
///
/// **Contract** (the caller's obligation — the executor cannot check
/// closures): for all record splits,
/// `merge(fold(seed(), xs), fold(seed(), ys)) == fold(seed(), xs ++ ys)`
/// value-for-value, where `fold(st, rs)` folds each record in order.
/// Under that law the combined plan (per-worker folds merged in input
/// order at the stage boundary) finishes from exactly the state the
/// serial fold would have reached, so outputs are bit-identical with
/// combining on or off — the property `tests/partial_agg.rs` pins for
/// the built-ins and for a custom contract.
#[derive(Clone)]
pub struct CustomCombine {
    /// Fresh per-key state.
    pub seed: Arc<dyn Fn() -> Value + Send + Sync>,
    /// Folds one record into the state.
    pub fold: CombineFold,
    /// Merges a later partial state into an earlier one.
    pub merge: CombineMerge,
    /// Emits the final records for one key.
    pub finish: CombineFinish,
}

/// Fold closure of a [`CustomCombine`]: state + one record → state.
pub type CombineFold = Arc<dyn Fn(Value, &Record) -> Value + Send + Sync>;
/// Merge closure of a [`CustomCombine`]: earlier partial + later → merged.
pub type CombineMerge = Arc<dyn Fn(Value, Value) -> Value + Send + Sync>;
/// Finish closure of a [`CustomCombine`]: key + final state → records.
pub type CombineFinish = Arc<dyn Fn(&str, Value) -> Vec<Record> + Send + Sync>;

/// A total order over [`Value`]s, used by `Min`/`Max`/`TopK` aggregates.
/// Values of different types order by type tag (Null < Bool < Int < Float
/// < Str < Array < Object); floats use IEEE `total_cmp` so NaN has a
/// stable place. Crucially, `Equal` implies the two values are
/// structurally identical, which is what makes tie-breaks in partial
/// aggregation interchangeable with the serial path.
pub fn value_cmp(a: &Value, b: &Value) -> Ordering {
    fn rank(v: &Value) -> u8 {
        match v {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Array(_) => 5,
            Value::Object(_) => 6,
        }
    }
    match (a, b) {
        (Value::Null, Value::Null) => Ordering::Equal,
        (Value::Bool(x), Value::Bool(y)) => x.cmp(y),
        (Value::Int(x), Value::Int(y)) => x.cmp(y),
        (Value::Float(x), Value::Float(y)) => x.total_cmp(y),
        (Value::Str(x), Value::Str(y)) => x.as_ref().cmp(y.as_ref()),
        (Value::Array(x), Value::Array(y)) => {
            for (xv, yv) in x.iter().zip(y.iter()) {
                match value_cmp(xv, yv) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        (Value::Object(x), Value::Object(y)) => {
            for ((xk, xv), (yk, yv)) in x.iter().zip(y.iter()) {
                match xk.cmp(yk).then_with(|| value_cmp(xv, yv)) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            x.len().cmp(&y.len())
        }
        _ => rank(a).cmp(&rank(b)),
    }
}

/// A typed reduce aggregation. The built-in variants are associative and
/// have an exact merge, so the executor may pre-aggregate partial results
/// inside fused workers and merge at the stage boundary without changing
/// any output byte. `Custom` is the escape hatch for arbitrary group
/// functions; it opts the reduce out of combining (the optimizer flags
/// this as WS010).
#[derive(Clone)]
pub enum Aggregate {
    /// Group size, emitted as `Int` under `into`.
    Count { into: String },
    /// Wrapping sum of the `Int` values of `field` (non-`Int` values count
    /// as 0), emitted under `into`.
    Sum { field: String, into: String },
    /// Smallest value of `field` under [`value_cmp`]; records without the
    /// field contribute nothing. `Null` if no record carried the field.
    Min { field: String, into: String },
    /// Largest value of `field` under [`value_cmp`], same conventions.
    Max { field: String, into: String },
    /// String values of `field` joined with `sep` in record order.
    Concat { field: String, sep: String, into: String },
    /// The `k` largest values of `field` under [`value_cmp`], descending,
    /// emitted as an `Array` under `into`.
    TopK { field: String, k: usize, into: String },
    /// Arbitrary group function — not combinable.
    Custom(AggregateFn),
    /// User-defined aggregate with an explicit seed/fold/merge/finish
    /// contract ([`CustomCombine`]) — combinable, on the caller's word
    /// that merge is exact. Build via
    /// [`Operator::reduce_custom_combinable`].
    CustomCombinable(CustomCombine),
}

/// Partial-aggregate state for one key, accumulated per fused worker and
/// merged at the stage boundary. Byte-deterministic via [`Snapshot`] so
/// checkpoint barriers can cut through a fused Reduce stage.
#[derive(Clone, Debug, PartialEq)]
pub enum AggState {
    Count(i64),
    Sum(i64),
    MinMax(Option<Value>),
    Concat(Option<String>),
    TopK(Vec<Value>),
    /// State of a [`Aggregate::CustomCombinable`] contract.
    Custom(Value),
}

impl Snapshot for AggState {
    fn encode(&self, w: &mut Writer) {
        match self {
            AggState::Count(n) => {
                w.u8(0);
                w.i64(*n);
            }
            AggState::Sum(n) => {
                w.u8(1);
                w.i64(*n);
            }
            AggState::MinMax(v) => {
                w.u8(2);
                w.bool(v.is_some());
                if let Some(v) = v {
                    v.encode(w);
                }
            }
            AggState::Concat(s) => {
                w.u8(3);
                w.bool(s.is_some());
                if let Some(s) = s {
                    w.str(s);
                }
            }
            AggState::TopK(vs) => {
                w.u8(4);
                vs.encode(w);
            }
            AggState::Custom(v) => {
                w.u8(5);
                v.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<AggState, CodecError> {
        Ok(match r.u8()? {
            0 => AggState::Count(r.i64()?),
            1 => AggState::Sum(r.i64()?),
            2 => AggState::MinMax(if r.bool()? { Some(Value::decode(r)?) } else { None }),
            3 => AggState::Concat(if r.bool()? { Some(r.str()?) } else { None }),
            4 => AggState::TopK(Snapshot::decode(r)?),
            5 => AggState::Custom(Value::decode(r)?),
            tag => return Err(CodecError::BadTag { what: "AggState", tag }),
        })
    }
}

impl Aggregate {
    /// Can partial results from independent workers be merged exactly?
    pub fn is_combinable(&self) -> bool {
        !matches!(self, Aggregate::Custom(_))
    }

    /// Fresh per-key state. Panics on `Custom` (callers must check
    /// [`Aggregate::is_combinable`] first).
    pub fn seed(&self) -> AggState {
        match self {
            Aggregate::Count { .. } => AggState::Count(0),
            Aggregate::Sum { .. } => AggState::Sum(0),
            Aggregate::Min { .. } | Aggregate::Max { .. } => AggState::MinMax(None),
            Aggregate::Concat { .. } => AggState::Concat(None),
            Aggregate::TopK { .. } => AggState::TopK(Vec::new()),
            Aggregate::CustomCombinable(cc) => AggState::Custom((cc.seed)()),
            Aggregate::Custom(_) => unreachable!("custom aggregates are not combinable"),
        }
    }

    /// Folds one record into a partial state.
    pub fn fold(&self, state: &mut AggState, r: &Record) {
        match (self, state) {
            (Aggregate::Count { .. }, AggState::Count(n)) => *n = n.wrapping_add(1),
            (Aggregate::Sum { field, .. }, AggState::Sum(n)) => {
                *n = n.wrapping_add(r.get(field).and_then(Value::as_int).unwrap_or(0));
            }
            (Aggregate::Min { field, .. }, AggState::MinMax(cur)) => {
                if let Some(v) = r.get(field) {
                    let replace =
                        cur.as_ref().is_none_or(|c| value_cmp(v, c) == Ordering::Less);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            (Aggregate::Max { field, .. }, AggState::MinMax(cur)) => {
                if let Some(v) = r.get(field) {
                    let replace =
                        cur.as_ref().is_none_or(|c| value_cmp(v, c) == Ordering::Greater);
                    if replace {
                        *cur = Some(v.clone());
                    }
                }
            }
            (Aggregate::Concat { field, sep, .. }, AggState::Concat(acc)) => {
                if let Some(s) = r.get(field).and_then(Value::as_str) {
                    match acc {
                        Some(joined) => {
                            joined.push_str(sep);
                            joined.push_str(s);
                        }
                        None => *acc = Some(s.to_string()),
                    }
                }
            }
            (Aggregate::TopK { field, k, .. }, AggState::TopK(vs)) => {
                if let Some(v) = r.get(field) {
                    // Sorted descending; equal values keep arrival order
                    // (ties compare Equal only when structurally identical,
                    // so the choice cannot show in the output).
                    let at = vs.partition_point(|x| value_cmp(x, v) != Ordering::Less);
                    vs.insert(at, v.clone());
                    vs.truncate(*k);
                }
            }
            (Aggregate::CustomCombinable(cc), AggState::Custom(v)) => {
                let cur = std::mem::replace(v, Value::Null);
                *v = (cc.fold)(cur, r);
            }
            _ => unreachable!("aggregate/state variant mismatch"),
        }
    }

    /// Merges a later partial into an earlier one. Exactness: for every
    /// built-in, `merge(fold(xs), fold(ys)) == fold(xs ++ ys)` — the
    /// property the differential suite exercises.
    pub fn merge(&self, left: &mut AggState, right: AggState) {
        match (left, right) {
            (AggState::Count(l), AggState::Count(r)) => *l = l.wrapping_add(r),
            (AggState::Sum(l), AggState::Sum(r)) => *l = l.wrapping_add(r),
            (AggState::MinMax(l), AggState::MinMax(r)) => {
                let keep_right = match (&l, &r) {
                    (Some(lv), Some(rv)) => {
                        let want = match self {
                            Aggregate::Min { .. } => Ordering::Less,
                            _ => Ordering::Greater,
                        };
                        value_cmp(rv, lv) == want
                    }
                    (None, Some(_)) => true,
                    _ => false,
                };
                if keep_right {
                    *l = r;
                }
            }
            (AggState::Concat(l), AggState::Concat(r)) => {
                let sep = match self {
                    Aggregate::Concat { sep, .. } => sep.as_str(),
                    _ => "",
                };
                match (l.as_mut(), r) {
                    (Some(joined), Some(r)) => {
                        joined.push_str(sep);
                        joined.push_str(&r);
                    }
                    (None, Some(r)) => *l = Some(r),
                    _ => {}
                }
            }
            (AggState::Custom(l), AggState::Custom(r)) => {
                let cc = match self {
                    Aggregate::CustomCombinable(cc) => cc,
                    _ => unreachable!("custom state implies a custom-combinable aggregate"),
                };
                let cur = std::mem::replace(l, Value::Null);
                *l = (cc.merge)(cur, r);
            }
            (AggState::TopK(l), AggState::TopK(r)) => {
                let k = match self {
                    Aggregate::TopK { k, .. } => *k,
                    _ => usize::MAX,
                };
                let mut merged = Vec::with_capacity((l.len() + r.len()).min(k));
                let (mut li, mut ri) = (0, 0);
                while merged.len() < k && (li < l.len() || ri < r.len()) {
                    let take_left = li < l.len()
                        && (ri >= r.len() || value_cmp(&l[li], &r[ri]) != Ordering::Less);
                    if take_left {
                        merged.push(l[li].clone());
                        li += 1;
                    } else {
                        merged.push(r[ri].clone());
                        ri += 1;
                    }
                }
                *l = merged;
            }
            _ => unreachable!("aggregate state variant mismatch in merge"),
        }
    }

    /// Emits the final record for one key.
    pub fn finish(&self, key: &str, state: AggState) -> Vec<Record> {
        if let AggState::Custom(v) = state {
            let Aggregate::CustomCombinable(cc) = self else {
                unreachable!("custom state implies a custom-combinable aggregate")
            };
            return (cc.finish)(key, v);
        }
        let (into, value) = match (self, state) {
            (Aggregate::Count { into }, AggState::Count(n)) => (into, Value::Int(n)),
            (Aggregate::Sum { into, .. }, AggState::Sum(n)) => (into, Value::Int(n)),
            (Aggregate::Min { into, .. } | Aggregate::Max { into, .. }, AggState::MinMax(v)) => {
                (into, v.unwrap_or(Value::Null))
            }
            (Aggregate::Concat { into, .. }, AggState::Concat(s)) => {
                (into, s.map(Value::from).unwrap_or(Value::Null))
            }
            (Aggregate::TopK { into, .. }, AggState::TopK(vs)) => (into, Value::Array(vs)),
            _ => unreachable!("aggregate/state variant mismatch in finish"),
        };
        let mut out = Record::new();
        out.set("key", key).set(into, value);
        vec![out]
    }

    /// The output field a typed aggregate writes and the type it carries,
    /// for the field-flow schema inference. `None` for `Custom` closures
    /// (opaque output shape).
    pub fn output_field(&self) -> Option<(&str, FieldType)> {
        match self {
            Aggregate::Count { into } | Aggregate::Sum { into, .. } => {
                Some((into, FieldType::Int))
            }
            // Min/Max carry whatever type the source field had — and Null
            // for empty groups — so the output type stays Unknown.
            Aggregate::Min { into, .. } | Aggregate::Max { into, .. } => {
                Some((into, FieldType::Unknown))
            }
            // Concat emits Null when no record carried the field.
            Aggregate::Concat { into, .. } => Some((into, FieldType::Unknown)),
            Aggregate::TopK { into, .. } => Some((into, FieldType::Array)),
            // Custom closures (combinable or not) have opaque output shape.
            Aggregate::Custom(_) | Aggregate::CustomCombinable(_) => None,
        }
    }

    /// Applies the aggregate to one complete group — the serial (and
    /// `Custom`) path. For built-ins this is seed → fold each record in
    /// order → finish, so it agrees with any fold/merge split by
    /// construction.
    pub fn apply_group(&self, key: &str, records: Vec<Record>) -> Vec<Record> {
        match self {
            Aggregate::Custom(f) => f(key, records),
            // CustomCombinable takes the same seed → fold-in-order →
            // finish path as the built-ins, so the serial result is the
            // contract's own fold — the baseline combining must match.
            _ => {
                let mut state = self.seed();
                for r in &records {
                    self.fold(&mut state, r);
                }
                self.finish(key, state)
            }
        }
    }
}

/// The UDF payload.
#[derive(Clone)]
pub enum OpFunc {
    Map(Arc<dyn Fn(Record) -> Record + Send + Sync>),
    FlatMap(Arc<dyn Fn(Record) -> Vec<Record> + Send + Sync>),
    Filter(Arc<dyn Fn(&Record) -> bool + Send + Sync>),
    Reduce {
        key: KeyFn,
        aggregate: Aggregate,
    },
}

/// An operator instance.
#[derive(Clone)]
pub struct Operator {
    pub name: String,
    pub package: Package,
    pub kind: Kind,
    /// Record fields the UDF reads (semantic annotation).
    pub reads: Vec<String>,
    /// Record fields the UDF writes (semantic annotation).
    pub writes: Vec<String>,
    /// Fields the UDF writes only on *some* records (e.g. an annotator
    /// that tags matches and passes non-matches through untouched).
    /// Downstream these are possibly-present, never definite.
    pub maybe_writes: Vec<String>,
    /// Declared value types for read fields; the field-flow analysis
    /// checks them against what upstream writers declared (WS013).
    pub read_types: Vec<(String, FieldType)>,
    /// Declared value types for written fields, consumed by the field-flow
    /// schema inference.
    pub write_types: Vec<(String, FieldType)>,
    /// Output-records-per-input-record range, overriding the per-kind
    /// default selectivity in the cost-envelope propagation.
    pub selectivity: Option<(f64, f64)>,
    pub cost: CostModel,
    /// External library dependency `(name, major version)`.
    pub library: Option<(String, u32)>,
    /// The serializable recipe this operator was built from, when it
    /// came from the [`crate::shuffle::OpSpec`] algebra. Stages whose
    /// operators all carry specs can run on worker shards in separate
    /// processes; closure-built operators (`spec == None`) pin their
    /// stage to the in-process path.
    pub spec: Option<crate::shuffle::OpSpec>,
    func: OpFunc,
}

impl std::fmt::Debug for Operator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Operator")
            .field("name", &self.name)
            .field("package", &self.package)
            .field("kind", &self.kind)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

impl Operator {
    pub fn map(
        name: &str,
        package: Package,
        f: impl Fn(Record) -> Record + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            name: name.to_string(),
            package,
            kind: Kind::Map,
            reads: Vec::new(),
            writes: Vec::new(),
            maybe_writes: Vec::new(),
            read_types: Vec::new(),
            write_types: Vec::new(),
            selectivity: None,
            cost: CostModel::default(),
            library: None,
            spec: None,
            func: OpFunc::Map(Arc::new(f)),
        }
    }

    pub fn flat_map(
        name: &str,
        package: Package,
        f: impl Fn(Record) -> Vec<Record> + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            kind: Kind::FlatMap,
            func: OpFunc::FlatMap(Arc::new(f)),
            ..Operator::map(name, package, |r| r)
        }
    }

    pub fn filter(
        name: &str,
        package: Package,
        f: impl Fn(&Record) -> bool + Send + Sync + 'static,
    ) -> Operator {
        Operator {
            kind: Kind::Filter,
            func: OpFunc::Filter(Arc::new(f)),
            ..Operator::map(name, package, |r| r)
        }
    }

    /// A reduce with an arbitrary group function. The closure is opaque to
    /// the optimizer, so this reduce never combines ([`Aggregate::Custom`]);
    /// prefer [`Operator::reduce_agg`] when a typed aggregate fits.
    pub fn reduce(
        name: &str,
        package: Package,
        key: impl Fn(&Record) -> String + Send + Sync + 'static,
        aggregate: impl Fn(&str, Vec<Record>) -> Vec<Record> + Send + Sync + 'static,
    ) -> Operator {
        Operator::reduce_agg(name, package, key, Aggregate::Custom(Arc::new(aggregate)))
    }

    /// A reduce with a user-defined aggregate that carries an explicit
    /// seed/fold/merge/finish contract ([`CustomCombine`]) — eligible for
    /// partial aggregation inside fused stages, unlike
    /// [`Operator::reduce`]'s opaque group closure. The caller warrants
    /// the merge law documented on [`CustomCombine`]; the differential
    /// suite in `tests/partial_agg.rs` shows how to pin it.
    pub fn reduce_custom_combinable(
        name: &str,
        package: Package,
        key: impl Fn(&Record) -> String + Send + Sync + 'static,
        seed: impl Fn() -> Value + Send + Sync + 'static,
        fold: impl Fn(Value, &Record) -> Value + Send + Sync + 'static,
        merge: impl Fn(Value, Value) -> Value + Send + Sync + 'static,
        finish: impl Fn(&str, Value) -> Vec<Record> + Send + Sync + 'static,
    ) -> Operator {
        Operator::reduce_agg(
            name,
            package,
            key,
            Aggregate::CustomCombinable(CustomCombine {
                seed: Arc::new(seed),
                fold: Arc::new(fold),
                merge: Arc::new(merge),
                finish: Arc::new(finish),
            }),
        )
    }

    /// A reduce with a typed, combinable aggregate — eligible for partial
    /// aggregation inside fused stages.
    pub fn reduce_agg(
        name: &str,
        package: Package,
        key: impl Fn(&Record) -> String + Send + Sync + 'static,
        aggregate: Aggregate,
    ) -> Operator {
        Operator {
            kind: Kind::Reduce,
            func: OpFunc::Reduce { key: Arc::new(key), aggregate },
            ..Operator::map(name, package, |r| r)
        }
    }

    /// Declares the fields read (builder style).
    pub fn with_reads(mut self, fields: &[&str]) -> Operator {
        self.reads = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declares the fields written.
    pub fn with_writes(mut self, fields: &[&str]) -> Operator {
        self.writes = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declares fields written only on some records (conditionally
    /// present downstream).
    pub fn with_maybe_writes(mut self, fields: &[&str]) -> Operator {
        self.maybe_writes = fields.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Declares the value types this operator expects on fields it reads.
    pub fn with_read_types(mut self, types: &[(&str, FieldType)]) -> Operator {
        self.read_types = types.iter().map(|(f, t)| (f.to_string(), *t)).collect();
        // A typed read is a read: keeping `read_types ⊆ reads` is what lets
        // the optimizer's disjointness rules guarantee no rewrite moves a
        // typed reader past the writer it was checked against (the WS013
        // verdict-invariance the analyze proptest pins).
        for (f, _) in &self.read_types {
            if !self.reads.contains(f) {
                self.reads.push(f.clone());
            }
        }
        self
    }

    /// Declares the value types this operator writes.
    pub fn with_write_types(mut self, types: &[(&str, FieldType)]) -> Operator {
        self.write_types = types.iter().map(|(f, t)| (f.to_string(), *t)).collect();
        self
    }

    /// Declares the output-records-per-input-record range, overriding the
    /// per-kind default in cost-envelope propagation (e.g. a calibrated
    /// sentence splitter averaging 4–6 sentences per document).
    pub fn with_selectivity(mut self, lo: f64, hi: f64) -> Operator {
        self.selectivity = Some((lo.min(hi), lo.max(hi)));
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Operator {
        self.cost = cost;
        self
    }

    pub fn with_library(mut self, name: &str, major: u32) -> Operator {
        self.library = Some((name.to_string(), major));
        self
    }

    /// Attaches the serializable recipe this operator was built from
    /// (set by [`crate::shuffle::OpSpec::build`]).
    pub fn with_spec(mut self, spec: crate::shuffle::OpSpec) -> Operator {
        self.spec = Some(spec);
        self
    }

    pub fn spec(&self) -> Option<&crate::shuffle::OpSpec> {
        self.spec.as_ref()
    }

    pub fn func(&self) -> &OpFunc {
        &self.func
    }

    /// Can this operator be chained into a pipeline stage (no shuffle)?
    pub fn is_pipelineable(&self) -> bool {
        self.kind != Kind::Reduce
    }

    /// Is this a reduce whose aggregate supports exact partial
    /// aggregation?
    pub fn combinable_reduce(&self) -> bool {
        matches!(&self.func, OpFunc::Reduce { aggregate, .. } if aggregate.is_combinable())
    }

    /// Applies the operator to a batch sequentially (the executor handles
    /// parallelism; this is also the unit-test entry point).
    pub fn apply(&self, input: Vec<Record>) -> Vec<Record> {
        match &self.func {
            OpFunc::Map(f) => input.into_iter().map(|r| f(r)).collect(),
            OpFunc::FlatMap(f) => input.into_iter().flat_map(|r| f(r)).collect(),
            OpFunc::Filter(f) => input.into_iter().filter(|r| f(r)).collect(),
            OpFunc::Reduce { key, aggregate } => {
                use std::collections::BTreeMap;
                let mut groups: BTreeMap<String, Vec<Record>> = BTreeMap::new();
                for r in input {
                    groups.entry(key(&r)).or_default().push(r);
                }
                groups
                    .into_iter()
                    .flat_map(|(k, rs)| aggregate.apply_group(&k, rs))
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{intern, Value};

    fn rec(id: i64) -> Record {
        let mut r = Record::new();
        r.set("id", id).set("text", format!("doc {id}"));
        r
    }

    #[test]
    fn map_applies_to_each_record() {
        let op = Operator::map("bump", Package::Base, |mut r| {
            let id = r.get("id").unwrap().as_int().unwrap();
            r.set("id", id + 1);
            r
        });
        let out = op.apply(vec![rec(1), rec(2)]);
        assert_eq!(out[0].get("id").unwrap().as_int(), Some(2));
        assert_eq!(out[1].get("id").unwrap().as_int(), Some(3));
    }

    #[test]
    fn flat_map_changes_cardinality() {
        let op = Operator::flat_map("dup", Package::Base, |r| vec![r.clone(), r]);
        assert_eq!(op.apply(vec![rec(1)]).len(), 2);
    }

    #[test]
    fn filter_drops_records() {
        let op = Operator::filter("odd", Package::Base, |r| {
            r.get("id").unwrap().as_int().unwrap() % 2 == 1
        });
        let out = op.apply(vec![rec(1), rec(2), rec(3)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn reduce_groups_by_key() {
        let op = Operator::reduce(
            "count-by-parity",
            Package::Base,
            |r| (r.get("id").unwrap().as_int().unwrap() % 2).to_string(),
            |k, rs| {
                let mut out = Record::new();
                out.set("key", k).set("count", rs.len());
                vec![out]
            },
        );
        let out = op.apply(vec![rec(1), rec(2), rec(3), rec(4), rec(5)]);
        assert_eq!(out.len(), 2);
        // BTreeMap ordering: "0" then "1"
        assert_eq!(out[0].get("count").unwrap().as_int(), Some(2));
        assert_eq!(out[1].get("count").unwrap().as_int(), Some(3));
    }

    #[test]
    fn cost_model_linear_and_quadratic() {
        let lin = CostModel {
            us_per_char: 1.0,
            ..CostModel::default()
        };
        assert!((lin.record_cost_secs(1000) - 1e-3).abs() < 1e-12);
        let quad = CostModel {
            us_per_char: 1.0,
            quadratic_ref: Some(100.0),
            ..CostModel::default()
        };
        // 1000 chars: 1000us * (1 + 10) = 11ms
        assert!((quad.record_cost_secs(1000) - 11e-3).abs() < 1e-9);
        assert!(quad.record_cost_secs(2000) > 3.0 * quad.record_cost_secs(1000));
    }

    #[test]
    fn annotations_and_builders() {
        let op = Operator::map("x", Package::Ie, |r| r)
            .with_reads(&["text"])
            .with_writes(&["pos"])
            .with_library("opennlp", 15)
            .with_cost(CostModel {
                memory_bytes: 123,
                ..CostModel::default()
            });
        assert_eq!(op.reads, vec!["text"]);
        assert_eq!(op.writes, vec!["pos"]);
        assert_eq!(op.library, Some(("opennlp".to_string(), 15)));
        assert_eq!(op.cost.memory_bytes, 123);
        assert!(op.is_pipelineable());
    }

    #[test]
    fn field_flow_annotations() {
        let op = Operator::map("x", Package::Ie, |r| r)
            .with_read_types(&[("text", FieldType::Str)])
            .with_write_types(&[("pos", FieldType::Array)])
            .with_maybe_writes(&["negation"])
            .with_selectivity(6.0, 4.0); // flipped bounds normalize
        assert_eq!(op.read_types, vec![("text".to_string(), FieldType::Str)]);
        assert_eq!(op.reads, vec!["text"], "a typed read implies a read");
        assert_eq!(op.write_types, vec![("pos".to_string(), FieldType::Array)]);
        assert_eq!(op.maybe_writes, vec!["negation"]);
        assert_eq!(op.selectivity, Some((4.0, 6.0)));
    }

    #[test]
    fn aggregate_output_fields_typed() {
        assert_eq!(
            Aggregate::Count { into: "n".into() }.output_field(),
            Some(("n", FieldType::Int))
        );
        assert_eq!(
            Aggregate::TopK { field: "x".into(), k: 3, into: "top".into() }.output_field(),
            Some(("top", FieldType::Array))
        );
        assert_eq!(
            Aggregate::Min { field: "x".into(), into: "min".into() }.output_field(),
            Some(("min", FieldType::Unknown))
        );
        assert_eq!(Aggregate::Custom(Arc::new(|_: &str, rs| rs)).output_field(), None);
    }

    #[test]
    fn value_untouched_by_identity() {
        let op = Operator::map("id", Package::Base, |r| r);
        let input = vec![rec(9)];
        let out = op.apply(input.clone());
        assert_eq!(out[0].get("text"), Some(&Value::Str("doc 9".into())));
        assert_eq!(out, input);
    }

    /// Every typed aggregate under test, with a field mix that exercises
    /// missing fields, wrong types, ties, and NaN.
    fn agg_pool() -> Vec<Aggregate> {
        vec![
            Aggregate::Count { into: "n".into() },
            Aggregate::Sum { field: "x".into(), into: "sum".into() },
            Aggregate::Min { field: "x".into(), into: "min".into() },
            Aggregate::Max { field: "x".into(), into: "max".into() },
            Aggregate::Concat { field: "text".into(), sep: "|".into(), into: "cat".into() },
            Aggregate::TopK { field: "x".into(), k: 3, into: "top".into() },
        ]
    }

    fn agg_records() -> Vec<Record> {
        let mut rs: Vec<Record> = (0..7i64).map(|i| rec(i % 3)).collect();
        rs[0].set("x", 5i64);
        rs[1].set("x", Value::Float(f64::NAN));
        rs[2].set("x", 5i64); // tie with rs[0]
        rs[3].set("x", Value::Float(-0.0));
        rs[4].remove("text"); // Concat skips this one
        rs[5].set("x", "str-typed"); // Sum treats as 0, Min/Max by value_cmp
        rs
    }

    /// Byte-exact comparison key: `PartialEq` on records sees
    /// `NaN != NaN`, but the equivalence contract is codec-byte identity.
    fn records_bytes(rs: &[Record]) -> Vec<u8> {
        let mut w = Writer::new();
        for r in rs {
            r.encode(&mut w);
        }
        w.into_bytes()
    }

    #[test]
    fn fold_merge_agrees_with_serial_apply_group_at_every_split() {
        let records = agg_records();
        for agg in agg_pool() {
            let serial = records_bytes(&agg.apply_group("k", records.clone()));
            for split in 0..=records.len() {
                let (a, b) = records.split_at(split);
                let mut left = agg.seed();
                for r in a {
                    agg.fold(&mut left, r);
                }
                let mut right = agg.seed();
                for r in b {
                    agg.fold(&mut right, r);
                }
                agg.merge(&mut left, right);
                assert_eq!(
                    records_bytes(&agg.finish("k", left)),
                    serial,
                    "split {split} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn agg_state_codec_roundtrips() {
        let states = vec![
            AggState::Count(42),
            AggState::Sum(-7),
            AggState::MinMax(None),
            AggState::MinMax(Some(Value::Float(f64::NAN))),
            AggState::Concat(None),
            AggState::Concat(Some("a|b".into())),
            AggState::TopK(vec![Value::Int(3), Value::Int(1)]),
            AggState::Custom(Value::Null),
            AggState::Custom(Value::Array(vec![
                Value::Int(7),
                Value::Float(f64::NAN),
                Value::from("partial"),
            ])),
        ];
        for s in states {
            let mut w = Writer::new();
            s.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = AggState::decode(&mut r).unwrap();
            // compare re-encoded bytes, not PartialEq: NaN != NaN but the
            // roundtrip must preserve the exact bits
            let mut w2 = Writer::new();
            back.encode(&mut w2);
            assert_eq!(w2.into_bytes(), bytes, "{s:?} did not roundtrip");
        }
    }

    #[test]
    fn value_cmp_is_a_total_order_with_identity_ties() {
        let vals = [
            Value::Null,
            Value::Bool(false),
            Value::Int(-1),
            Value::Int(2),
            Value::Float(f64::NEG_INFINITY),
            Value::Float(-0.0),
            Value::Float(0.0),
            Value::Float(f64::NAN),
            Value::from("a"),
            Value::from("b"),
            Value::Array(vec![Value::Int(1)]),
            Value::Object([(intern("k"), Value::Int(1))].into_iter().collect()),
        ];
        for a in &vals {
            assert_eq!(value_cmp(a, a), Ordering::Equal);
            for b in &vals {
                assert_eq!(value_cmp(a, b), value_cmp(b, a).reverse());
            }
        }
        // Equal only for bit-identical floats: -0.0 < +0.0 under total_cmp.
        assert_eq!(value_cmp(&Value::Float(-0.0), &Value::Float(0.0)), Ordering::Less);
        // Cross-type ordering is by tag rank.
        assert_eq!(value_cmp(&Value::Int(999), &Value::Float(-1.0)), Ordering::Less);
    }

    #[test]
    fn reduce_agg_count_matches_custom_closure() {
        let key = |r: &Record| (r.get("id").unwrap().as_int().unwrap() % 2).to_string();
        let typed = Operator::reduce_agg(
            "count",
            Package::Base,
            key,
            Aggregate::Count { into: "count".into() },
        );
        let custom = Operator::reduce("count", Package::Base, key, |k, rs| {
            let mut out = Record::new();
            out.set("key", k).set("count", rs.len());
            vec![out]
        });
        let input: Vec<Record> = (0..9i64).map(rec).collect();
        assert_eq!(typed.apply(input.clone()), custom.apply(input));
        assert!(typed.combinable_reduce());
        assert!(!custom.combinable_reduce());
    }

    /// A count+sum pair aggregate carried as `Value::Array([count, sum])`
    /// — the explicit seed/fold/merge/finish contract under test.
    fn count_sum_combine() -> CustomCombine {
        let unpack = |v: Value| match v {
            Value::Array(parts) => {
                let mut it = parts.into_iter();
                let n = it.next().and_then(|v| v.as_int()).unwrap_or(0);
                let sum = it.next().and_then(|v| v.as_int()).unwrap_or(0);
                (n, sum)
            }
            _ => (0, 0),
        };
        CustomCombine {
            seed: Arc::new(|| Value::Array(vec![Value::Int(0), Value::Int(0)])),
            fold: Arc::new(move |acc, r: &Record| {
                let (n, sum) = unpack(acc);
                let x = r.get("x").and_then(Value::as_int).unwrap_or(0);
                Value::Array(vec![Value::Int(n + 1), Value::Int(sum + x)])
            }),
            merge: Arc::new(move |l, r| {
                let (ln, lsum) = unpack(l);
                let (rn, rsum) = unpack(r);
                Value::Array(vec![Value::Int(ln + rn), Value::Int(lsum + rsum)])
            }),
            finish: Arc::new(move |key: &str, v| {
                let (n, sum) = unpack(v);
                let mut out = Record::new();
                out.set("key", key).set("n", n).set("sum", sum);
                vec![out]
            }),
        }
    }

    #[test]
    fn custom_combinable_fold_merge_agrees_with_serial_at_every_split() {
        let agg = Aggregate::CustomCombinable(count_sum_combine());
        let records = agg_records();
        let serial = records_bytes(&agg.apply_group("k", records.clone()));
        for split in 0..=records.len() {
            let (a, b) = records.split_at(split);
            let mut left = agg.seed();
            for r in a {
                agg.fold(&mut left, r);
            }
            let mut right = agg.seed();
            for r in b {
                agg.fold(&mut right, r);
            }
            agg.merge(&mut left, right);
            assert_eq!(
                records_bytes(&agg.finish("k", left)),
                serial,
                "split {split} diverged from serial"
            );
        }
    }

    #[test]
    fn reduce_custom_combinable_is_combinable_and_matches_opaque_reduce() {
        let key = |r: &Record| (r.get("id").unwrap().as_int().unwrap() % 2).to_string();
        let cc = count_sum_combine();
        let combinable = Operator::reduce_agg(
            "pair",
            Package::Base,
            key,
            Aggregate::CustomCombinable(cc),
        );
        let opaque = Operator::reduce("pair", Package::Base, key, |k, rs: Vec<Record>| {
            let sum: i64 =
                rs.iter().map(|r| r.get("x").and_then(Value::as_int).unwrap_or(0)).sum();
            let mut out = Record::new();
            out.set("key", k).set("n", rs.len() as i64).set("sum", sum);
            vec![out]
        });
        let mut input: Vec<Record> = (0..9i64).map(rec).collect();
        for (i, r) in input.iter_mut().enumerate() {
            r.set("x", (i as i64) * 3 - 4);
        }
        assert_eq!(combinable.apply(input.clone()), opaque.apply(input));
        assert!(combinable.combinable_reduce(), "explicit merge contract opts into combining");
        assert!(!opaque.combinable_reduce());
    }
}
