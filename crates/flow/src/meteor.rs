//! A Meteor-like declarative script front end.
//!
//! Stratosphere's flows "are specified in a declarative scripting language
//! called Meteor ... composed of primitive operators, which are defined in
//! domain-specific packages". This module implements a compact dialect
//! sufficient to express the paper's analysis flows:
//!
//! ```text
//! # comments start with '#'
//! $pages    = read 'crawl';
//! $bounded  = apply base.filter_length $pages;
//! $net      = apply wa.extract_net_text $bounded;
//! $sents    = apply ie.annotate_sentences $net;
//! $neg      = apply ie.annotate_negation $sents;
//! write $neg 'negation';
//! write $sents 'sentences';
//! ```
//!
//! Scripts compile against an [`OperatorRegistry`] into a [`LogicalPlan`],
//! which then flows through the standard optimize → execute path.

use crate::logical::{LogicalPlan, NodeId};
use crate::packages::OperatorRegistry;
use std::collections::HashMap;

/// Script compilation errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeteorError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for MeteorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "meteor script error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MeteorError {}

/// Compiles a script into a logical plan.
pub fn compile(script: &str, registry: &OperatorRegistry) -> Result<LogicalPlan, MeteorError> {
    let mut plan = LogicalPlan::new();
    let mut vars: HashMap<String, NodeId> = HashMap::new();

    for (lineno, raw_line) in script.lines().enumerate() {
        let line = raw_line.trim();
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |message: String| MeteorError {
            line: lineno + 1,
            message,
        };
        let stmt = line.strip_suffix(';').ok_or_else(|| err("missing ';'".into()))?.trim();

        if let Some(rest) = stmt.strip_prefix("write ") {
            // write $var 'name'
            let mut parts = rest.split_whitespace();
            let var = parts
                .next()
                .and_then(|v| v.strip_prefix('$'))
                .ok_or_else(|| err("write expects $variable".into()))?;
            let name = parts
                .next()
                .and_then(parse_quoted)
                .ok_or_else(|| err("write expects a quoted sink name".into()))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens after write".into()));
            }
            let node = *vars
                .get(var)
                .ok_or_else(|| err(format!("unknown variable ${var}")))?;
            plan.sink(node, &name);
            continue;
        }

        // $var = read 'name'   |   $var = apply op $input
        let (lhs, rhs) = stmt
            .split_once('=')
            .ok_or_else(|| err("expected assignment or write".into()))?;
        let var = lhs
            .trim()
            .strip_prefix('$')
            .ok_or_else(|| err("assignment target must be $variable".into()))?
            .to_string();
        let rhs = rhs.trim();

        let node = if let Some(rest) = rhs.strip_prefix("read ") {
            let name = parse_quoted(rest.trim())
                .ok_or_else(|| err("read expects a quoted source name".into()))?;
            plan.source(&name)
        } else if let Some(rest) = rhs.strip_prefix("apply ") {
            let mut parts = rest.split_whitespace();
            let op_name = parts.next().ok_or_else(|| err("apply expects an operator".into()))?;
            let input = parts
                .next()
                .and_then(|v| v.strip_prefix('$'))
                .ok_or_else(|| err("apply expects $input".into()))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens after apply".into()));
            }
            let input_node = *vars
                .get(input)
                .ok_or_else(|| err(format!("unknown variable ${input}")))?;
            let op = registry
                .create(op_name)
                .ok_or_else(|| err(format!("unknown operator {op_name}")))?;
            plan.add(input_node, op)
        } else {
            return Err(err(format!("unrecognized expression: {rhs}")));
        };
        vars.insert(var, node);
    }

    plan.validate().map_err(|e| MeteorError {
        line: 0,
        message: format!("invalid plan: {e}"),
    })?;
    Ok(plan)
}

fn parse_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    let inner = s.strip_prefix('\'')?.strip_suffix('\'')?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Operator, Package};

    fn registry() -> OperatorRegistry {
        let mut reg = OperatorRegistry::new();
        reg.register("base.identity", || {
            Operator::map("identity", Package::Base, |r| r)
        });
        reg.register("base.keep_all", || {
            Operator::filter("keep_all", Package::Base, |_| true)
        });
        reg
    }

    #[test]
    fn compiles_linear_script() {
        let script = "
            # a comment
            $a = read 'docs';
            $b = apply base.identity $a;
            $c = apply base.keep_all $b;
            write $c 'out';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.sources(), vec!["docs"]);
        assert_eq!(plan.sinks(), vec!["out"]);
        assert_eq!(plan.operator_count(), 2);
    }

    #[test]
    fn compiles_branching_script() {
        let script = "
            $a = read 'docs';
            $b = apply base.identity $a;
            $c = apply base.keep_all $b;
            $d = apply base.keep_all $b;
            write $c 'left';
            write $d 'right';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.sinks().len(), 2);
    }

    #[test]
    fn error_on_unknown_operator() {
        let err = compile("$a = read 'x';\n$b = apply nope.op $a;\nwrite $b 'o';", &registry())
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown operator"));
    }

    #[test]
    fn error_on_unknown_variable() {
        let err = compile("$a = read 'x';\nwrite $zzz 'o';", &registry()).unwrap_err();
        assert!(err.message.contains("unknown variable"));
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = compile("$a = read 'x'", &registry()).unwrap_err();
        assert!(err.message.contains("missing ';'"));
    }

    #[test]
    fn error_on_planless_script() {
        let err = compile("$a = read 'x';", &registry()).unwrap_err();
        assert!(err.message.contains("no sink"));
    }

    #[test]
    fn variables_can_be_rebound() {
        let script = "
            $a = read 'docs';
            $a = apply base.identity $a;
            write $a 'out';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.operator_count(), 1);
    }
}
