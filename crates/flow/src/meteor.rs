//! A Meteor-like declarative script front end.
//!
//! Stratosphere's flows "are specified in a declarative scripting language
//! called Meteor ... composed of primitive operators, which are defined in
//! domain-specific packages". This module implements a compact dialect
//! sufficient to express the paper's analysis flows:
//!
//! ```text
//! # comments start with '#'
//! $pages    = read 'crawl';
//! $bounded  = apply base.filter_length $pages;
//! $net      = apply wa.extract_net_text $bounded;
//! $sents    = apply ie.annotate_sentences $net;
//! $neg      = apply ie.annotate_negation $sents;
//! write $neg 'negation';
//! write $sents 'sentences';
//! ```
//!
//! Scripts compile against an [`OperatorRegistry`] into a [`LogicalPlan`],
//! which then flows through the standard analyze → optimize → execute
//! path. [`compile_traced`] additionally returns the node→line map the
//! static analyzer uses to anchor plan diagnostics back to script lines.

use crate::logical::{LogicalPlan, NodeId};
use crate::packages::OperatorRegistry;
use std::collections::BTreeMap;

/// Script compilation errors, with 1-based line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeteorError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for MeteorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "meteor script error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for MeteorError {}

/// A compiled script plus the provenance the analyzer needs to map plan
/// diagnostics back to script positions.
#[derive(Debug, Clone)]
pub struct ScriptInfo {
    pub plan: LogicalPlan,
    /// 1-based script line that created each plan node, indexed by
    /// [`NodeId`].
    pub node_lines: Vec<usize>,
    /// Variables assigned but never consumed by `apply`/`write` (nor
    /// shadowed-after-use), as `(name, definition line)` sorted by line
    /// then name.
    pub unused_vars: Vec<(String, usize)>,
}

struct VarState {
    node: NodeId,
    def_line: usize,
    used: bool,
}

/// Compiles a script into a logical plan.
pub fn compile(script: &str, registry: &OperatorRegistry) -> Result<LogicalPlan, MeteorError> {
    compile_traced(script, registry).map(|info| info.plan)
}

/// Compiles a script, keeping node→line provenance and unused-variable
/// bookkeeping for the static analyzer.
pub fn compile_traced(
    script: &str,
    registry: &OperatorRegistry,
) -> Result<ScriptInfo, MeteorError> {
    let mut plan = LogicalPlan::new();
    let mut node_lines: Vec<usize> = Vec::new();
    // BTreeMap so the unused-variable sweep below is deterministic.
    let mut vars: BTreeMap<String, VarState> = BTreeMap::new();
    let mut unused: Vec<(String, usize)> = Vec::new();

    for (lineno, raw_line) in script.lines().enumerate() {
        let line = raw_line.trim();
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let err = |message: String| MeteorError { line: lineno, message };
        let stmt = line.strip_suffix(';').ok_or_else(|| err("missing ';'".into()))?.trim();

        if let Some(rest) = stmt.strip_prefix("write ") {
            // write $var 'name'
            let mut parts = rest.split_whitespace();
            let var = parts
                .next()
                .and_then(|v| v.strip_prefix('$'))
                .ok_or_else(|| err("write expects $variable".into()))?;
            let name = parts
                .next()
                .and_then(parse_quoted)
                .ok_or_else(|| err("write expects a quoted sink name".into()))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens after write".into()));
            }
            let state = vars
                .get_mut(var)
                .ok_or_else(|| err(format!("unknown variable ${var}")))?;
            state.used = true;
            let node = state.node;
            let sink = plan.sink(node, &name).map_err(|e| err(e.to_string()))?;
            record_line(&mut node_lines, sink, lineno);
            continue;
        }

        // $var = read 'name'   |   $var = apply op $input
        let (lhs, rhs) = stmt
            .split_once('=')
            .ok_or_else(|| err("expected assignment or write".into()))?;
        let var = lhs
            .trim()
            .strip_prefix('$')
            .ok_or_else(|| err("assignment target must be $variable".into()))?
            .to_string();
        let rhs = rhs.trim();

        let node = if let Some(rest) = rhs.strip_prefix("read ") {
            let name = parse_quoted(rest.trim())
                .ok_or_else(|| err("read expects a quoted source name".into()))?;
            plan.source(&name)
        } else if let Some(rest) = rhs.strip_prefix("apply ") {
            let mut parts = rest.split_whitespace();
            let op_name = parts.next().ok_or_else(|| err("apply expects an operator".into()))?;
            let input = parts
                .next()
                .and_then(|v| v.strip_prefix('$'))
                .ok_or_else(|| err("apply expects $input".into()))?;
            if parts.next().is_some() {
                return Err(err("trailing tokens after apply".into()));
            }
            let input_state = vars
                .get_mut(input)
                .ok_or_else(|| err(format!("unknown variable ${input}")))?;
            input_state.used = true;
            let input_node = input_state.node;
            let op = registry
                .create(op_name)
                .ok_or_else(|| err(format!("unknown operator {op_name}")))?;
            plan.add(input_node, op).map_err(|e| err(e.to_string()))?
        } else {
            return Err(err(format!("unrecognized expression: {rhs}")));
        };
        record_line(&mut node_lines, node, lineno);
        if let Some(prev) = vars.insert(var.clone(), VarState { node, def_line: lineno, used: false })
        {
            if !prev.used {
                unused.push((var, prev.def_line));
            }
        }
    }

    unused.extend(
        vars.into_iter()
            .filter(|(_, s)| !s.used)
            .map(|(name, s)| (name, s.def_line)),
    );
    unused.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

    plan.validate().map_err(|e| MeteorError {
        line: 0,
        message: format!("invalid plan: {e}"),
    })?;
    Ok(ScriptInfo { plan, node_lines, unused_vars: unused })
}

fn record_line(node_lines: &mut Vec<usize>, node: NodeId, line: usize) {
    debug_assert_eq!(node_lines.len(), node);
    node_lines.resize(node + 1, 0);
    node_lines[node] = line;
}

fn parse_quoted(s: &str) -> Option<String> {
    let s = s.trim();
    let inner = s.strip_prefix('\'')?.strip_suffix('\'')?;
    Some(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{Operator, Package};

    fn registry() -> OperatorRegistry {
        let mut reg = OperatorRegistry::new();
        reg.register("base.identity", || {
            Operator::map("identity", Package::Base, |r| r)
        });
        reg.register("base.keep_all", || {
            Operator::filter("keep_all", Package::Base, |_| true)
        });
        reg
    }

    #[test]
    fn compiles_linear_script() {
        let script = "
            # a comment
            $a = read 'docs';
            $b = apply base.identity $a;
            $c = apply base.keep_all $b;
            write $c 'out';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.sources(), vec!["docs"]);
        assert_eq!(plan.sinks(), vec!["out"]);
        assert_eq!(plan.operator_count(), 2);
    }

    #[test]
    fn compiles_branching_script() {
        let script = "
            $a = read 'docs';
            $b = apply base.identity $a;
            $c = apply base.keep_all $b;
            $d = apply base.keep_all $b;
            write $c 'left';
            write $d 'right';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.sinks().len(), 2);
    }

    #[test]
    fn traced_compile_maps_nodes_to_lines() {
        let script = "$a = read 'docs';\n$b = apply base.identity $a;\nwrite $b 'out';";
        let info = compile_traced(script, &registry()).unwrap();
        assert_eq!(info.node_lines, vec![1, 2, 3]);
        assert!(info.unused_vars.is_empty());
    }

    #[test]
    fn traced_compile_reports_unused_vars() {
        let script = "
            $a = read 'docs';
            $b = apply base.identity $a;
            $dead = apply base.keep_all $a;
            write $b 'out';
        ";
        let info = compile_traced(script, &registry()).unwrap();
        assert_eq!(info.unused_vars, vec![("dead".to_string(), 4)]);
    }

    #[test]
    fn rebinding_an_unused_var_counts_as_unused() {
        let script = "
            $a = read 'docs';
            $b = apply base.identity $a;
            $b = apply base.keep_all $a;
            write $b 'out';
        ";
        let info = compile_traced(script, &registry()).unwrap();
        assert_eq!(info.unused_vars, vec![("b".to_string(), 3)]);
    }

    #[test]
    fn error_on_unknown_operator() {
        let err = compile("$a = read 'x';\n$b = apply nope.op $a;\nwrite $b 'o';", &registry())
            .unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.message, "unknown operator nope.op");
    }

    #[test]
    fn error_on_unknown_variable() {
        let err = compile("$a = read 'x';\nwrite $zzz 'o';", &registry()).unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.message, "unknown variable $zzz");
    }

    #[test]
    fn error_on_missing_semicolon() {
        let err = compile("$a = read 'x'", &registry()).unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.message, "missing ';'");
    }

    #[test]
    fn error_on_duplicate_sink_name() {
        let script = "$a = read 'x';\nwrite $a 'out';\nwrite $a 'out';";
        let err = compile(script, &registry()).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.message, "duplicate sink name 'out'");
    }

    #[test]
    fn error_on_planless_script() {
        let err = compile("$a = read 'x';", &registry()).unwrap_err();
        assert!(err.message.contains("no sink"));
    }

    #[test]
    fn variables_can_be_rebound() {
        let script = "
            $a = read 'docs';
            $a = apply base.identity $a;
            write $a 'out';
        ";
        let plan = compile(script, &registry()).unwrap();
        assert_eq!(plan.operator_count(), 1);
    }
}
