//! The parallel executor: runs a logical plan for real on local threads
//! while accounting simulated cluster time.
//!
//! Execution is node-at-a-time over the (topologically ordered) plan DAG;
//! each operator is data-parallel across `DoP` partitions. Two clocks are
//! kept:
//!
//! - **wall time** — real elapsed time of this process (what Criterion
//!   benches measure);
//! - **simulated time** — paper-scale time from the operators' cost models
//!   plus the cluster's network model: per-worker startup (the 20-minute
//!   dictionary load that floors the entity flow's runtime in Fig. 5),
//!   per-partition work `max_p Σ cost(record)`, and shuffle/store traffic.
//!
//! The simulated clock is what reproduces the shapes of Figs. 4 and 5
//! without the authors' 28-node cluster.
//!
//! # Resilience
//!
//! With a [`FlowResilience`] configuration the executor additionally
//! survives the paper's infrastructure failures: panicked partitions are
//! re-launched (up to a retry budget) instead of aborting the flow,
//! simulated node losses reschedule remaining work onto the surviving
//! nodes (reporting the failed node id via
//! [`SchedulingError::NodeFailed`] only when nobody survives), source
//! reads retry through injected store faults, and completed plan nodes
//! can be checkpointed so [`Executor::resume_from`] continues a killed
//! flow instead of restarting it. All failure decisions are pure
//! functions of the fault-plan seed, so a killed-and-resumed flow
//! reproduces an uninterrupted run bit-for-bit (wall-clock fields aside).

use crate::analyze::{analyze_plan, AnalyzeOptions};
use crate::batch::{BatchArena, RecordBatch};
use crate::cluster::{admit_sharded, ClusterSpec, SchedulingError};
use crate::logical::{parse_store_sink, LogicalPlan, NodeOp, STORE_SINK_PREFIX};
use websift_analyze::{Diagnostic, Severity};
use crate::operator::{AggState, Aggregate, Kind, OpFunc, Operator};
use crate::optimizer::{fused_stage, FusedStage, StageDecision};
use crate::record::Record;
use crate::resilience::{FlowCheckpoint, FlowResilience};
use crate::shuffle::{
    run_reduce_sharded, run_stage_sharded, ChunkOut, OpSpec, ShardConfig, ShardPool,
    ShardRunError, SpecOp, StageTask,
};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use websift_observe::{Labels, Observer, RegistrySnapshot};
use websift_resilience::{CodecError, FaultKind, Reader, Snapshot, Writer};

#[cfg(test)]
use websift_resilience::FaultPlan;

/// Simulated seconds charged per partition re-launch (task setup on the
/// rescheduled worker).
const PARTITION_RETRY_SECS: f64 = 0.5;
/// Simulated seconds charged per retried source read.
const STORE_READ_RETRY_SECS: f64 = 1.0;
/// Simulated seconds to detect a dead node and rebalance its work.
const NODE_LOSS_RESCHEDULE_SECS: f64 = 5.0;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// Degree of parallelism (number of partitions / simulated workers).
    pub dop: usize,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Run admission control before executing (the paper's scheduler did
    /// not — setting this to false reproduces its behaviour and risks the
    /// same failures).
    pub admission: bool,
    /// Multiplier applied to observed byte volumes before the network
    /// model (lets small local datasets exercise paper-scale traffic).
    pub byte_scale: f64,
    /// If set, intermediate data is shipped in this many rounds ("we
    /// splitted the crawled data into chunks ... and executed the
    /// different flows separately on these chunks") — each round must fit
    /// under the overload threshold.
    pub chunk_rounds: Option<usize>,
    /// Multiplier on per-record simulated work (startup excluded): lets a
    /// small local corpus stand in for the paper's 20 GB scalability
    /// sample. Does not affect real computation or results.
    pub work_scale: f64,
    /// Run the static plan analyzer before executing; error-severity
    /// diagnostics reject the plan as [`ExecutionError::PlanRejected`].
    /// Set to false to reproduce the paper's fly-blind behaviour (the
    /// warstory runtime path does, to reach the simulated scheduler's
    /// runtime failure).
    pub analyze: bool,
    /// Fuse maximal single-consumer Map/FlatMap/Filter chains into one
    /// physical pass: one thread scope, one chunk queue, records moved by
    /// value from stage to stage. Fusion is physical only — every
    /// constituent operator is still charged and observed separately, so
    /// simulated numbers, metrics, traces, and checkpoint bytes are
    /// identical with fusion on or off.
    pub fusion: bool,
    /// Pre-aggregate combinable Reduces inside fused stages: each worker
    /// folds its chunk into per-key partial-aggregate states, ships the
    /// (much smaller) sorted-key partial maps across the shuffle
    /// boundary, and a final merge reproduces the serial grouping
    /// exactly. Combining is physical only — the analytic replay still
    /// charges the unfused Reduce cost model, so simulated numbers,
    /// metrics, traces, and checkpoint bytes are identical with
    /// combining on or off. Reduces with a `Custom` aggregate always run
    /// uncombined (the analyzer flags them as WS010).
    pub combining: bool,
    /// Cap on real worker threads per partitioned pass (the effective
    /// count is `min(dop_eff, chunks, max_workers)`). Physical only:
    /// worker count must never leak into simulated numbers (see
    /// `worker_count_never_affects_deterministic_outputs`).
    pub max_workers: usize,
    /// Physical batch size for fused stages: each simulated partition's
    /// records run through the stage chain in fixed-size
    /// [`RecordBatch`](crate::batch::RecordBatch)es, with one
    /// stage-closure dispatch per batch and per-batch scratch reclaimed
    /// from a worker-local [`BatchArena`](crate::batch::BatchArena)
    /// between batches. `None` picks
    /// [`DEFAULT_BATCH_SIZE`](crate::batch::DEFAULT_BATCH_SIZE).
    /// Physical only: batches never span simulated partition boundaries
    /// and results merge in batch order, so every deterministic surface
    /// is bit-identical across batch sizes (see the `batching`
    /// differential suite).
    pub batch_size: Option<usize>,
    /// Sharded physical execution: run fused stages on N worker shards
    /// (threads or real OS processes) over the frame protocol in
    /// [`crate::shuffle`] instead of the in-process thread pool.
    /// Physical only: chunk boundaries, per-record costs, and merge
    /// order are identical, so every deterministic surface is
    /// bit-identical across shard counts and worker kinds (see the
    /// `shuffle` differential suite). Stages containing operators
    /// without serializable specs silently fall back in-process.
    pub sharding: Option<ShardConfig>,
}

/// Default physical worker cap: the machine's available parallelism.
/// This is deliberately the only place real hardware parallelism enters
/// the executor, and it only ever throttles wall-clock execution.
fn default_max_workers() -> usize {
    // lint:allow(nondet_parallelism): physical worker cap only — never feeds simulated numbers
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
}

impl ExecutionConfig {
    /// Local config: given DoP, a permissive local cluster.
    pub fn local(dop: usize) -> ExecutionConfig {
        ExecutionConfig {
            dop,
            cluster: ClusterSpec::local(4, 64, 16),
            admission: false,
            byte_scale: 1.0,
            chunk_rounds: None,
            work_scale: 1.0,
            analyze: true,
            fusion: true,
            combining: true,
            max_workers: default_max_workers(),
            batch_size: None,
            sharding: None,
        }
    }
}

/// Per-operator metrics.
///
/// During a run these numbers live in the [`Observer`]'s metrics
/// registry (counters labelled by plan node and operator name); this
/// struct is the *view* the executor derives from those registry handles
/// so existing callers, checkpoints, and tests keep their shape.
#[derive(Debug, Clone, Serialize)]
pub struct OpMetrics {
    pub name: String,
    pub records_in: u64,
    pub records_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    /// Real elapsed milliseconds — runtime-only diagnostics. Excluded
    /// from the `Snapshot` codec (wall time inside checksummed frames
    /// would break byte-identical resume across machines) and from
    /// [`FlowOutput::deterministic_digest`]; decodes as `0.0`.
    pub wall_ms: f64,
    pub simulated_secs: f64,
}

impl Snapshot for OpMetrics {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.name);
        w.u64(self.records_in);
        w.u64(self.records_out);
        w.u64(self.bytes_in);
        w.u64(self.bytes_out);
        w.f64(self.simulated_secs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<OpMetrics, CodecError> {
        Ok(OpMetrics {
            name: r.str()?,
            records_in: r.u64()?,
            records_out: r.u64()?,
            bytes_in: r.u64()?,
            bytes_out: r.u64()?,
            wall_ms: 0.0,
            simulated_secs: r.f64()?,
        })
    }
}

/// Flow-level metrics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FlowMetrics {
    /// Real elapsed milliseconds — runtime-only; excluded from the
    /// `Snapshot` codec and determinism comparisons, decodes as `0.0`.
    pub wall_ms: f64,
    /// Critical-path simulated seconds (operators + network).
    pub simulated_secs: f64,
    /// Bytes crossing the network: shuffles plus replicated sink writes.
    pub network_bytes: u64,
    /// Peak intermediate data volume (largest single edge).
    pub peak_intermediate_bytes: u64,
    pub per_op: Vec<OpMetrics>,
    /// Panicked partitions that were re-launched.
    pub partition_retries: u64,
    /// Source reads retried through injected store faults.
    pub store_read_retries: u64,
    /// Simulated nodes lost mid-flow (work rescheduled onto survivors).
    pub nodes_lost: Vec<usize>,
    /// Checkpoints successfully taken.
    pub checkpoints_taken: u64,
    /// Checkpoint writes lost to injected store-write faults.
    pub store_write_failures: u64,
}

impl Snapshot for FlowMetrics {
    fn encode(&self, w: &mut Writer) {
        w.f64(self.simulated_secs);
        w.u64(self.network_bytes);
        w.u64(self.peak_intermediate_bytes);
        self.per_op.encode(w);
        w.u64(self.partition_retries);
        w.u64(self.store_read_retries);
        self.nodes_lost.encode(w);
        w.u64(self.checkpoints_taken);
        w.u64(self.store_write_failures);
    }

    fn decode(r: &mut Reader<'_>) -> Result<FlowMetrics, CodecError> {
        Ok(FlowMetrics {
            wall_ms: 0.0,
            simulated_secs: r.f64()?,
            network_bytes: r.u64()?,
            peak_intermediate_bytes: r.u64()?,
            per_op: Snapshot::decode(r)?,
            partition_retries: r.u64()?,
            store_read_retries: r.u64()?,
            nodes_lost: Snapshot::decode(r)?,
            checkpoints_taken: r.u64()?,
            store_write_failures: r.u64()?,
        })
    }
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionError {
    Scheduling(SchedulingError),
    /// The static analyzer found error-severity diagnostics; the plan was
    /// rejected before any operator ran.
    PlanRejected { diagnostics: Vec<Diagnostic> },
    /// The network model declared timeout-induced failure.
    NetworkOverload {
        intermediate_bytes: u64,
        capacity_bytes: u64,
    },
    MissingSource(String),
    /// A partition of `operator` panicked `attempts` times, exhausting
    /// its retry budget.
    OperatorPanicked {
        operator: String,
        partition: usize,
        attempts: u32,
    },
    /// A source read kept failing through every retry.
    StoreReadFailed { source: String },
    /// A checkpoint could not be decoded (corruption, version mismatch,
    /// or a plan that does not match the one it was taken from).
    BadCheckpoint(CodecError),
    /// A `store:` sink named a store the run was not given (or the name
    /// failed to parse as `store:<store>/<dataset>`). Extraction output
    /// must never silently fall on the floor, so [`Executor::run_into`]
    /// rejects the whole run instead of keeping the records in-memory.
    UnknownStore { sink: String, store: String },
    /// A worker shard died mid-run (crash or injected kill) with
    /// `respawn_lost` off. Carries every resilience checkpoint taken
    /// before the loss so the caller can [`Executor::resume_from`] the
    /// latest frame — at any shard count — and reproduce the
    /// uninterrupted run bit for bit.
    ShardLost {
        shard: usize,
        operator: String,
        checkpoints: Vec<FlowCheckpoint>,
    },
    /// A shard channel desynchronized (unexpected frame kind, corrupt
    /// payload, or a spawn failure).
    ShardProtocol { shard: usize, detail: String },
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::Scheduling(e) => write!(f, "scheduling failed: {e}"),
            ExecutionError::PlanRejected { diagnostics } => {
                write!(f, "plan rejected by static analysis:")?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            ExecutionError::NetworkOverload {
                intermediate_bytes,
                capacity_bytes,
            } => write!(
                f,
                "network overload: {intermediate_bytes} bytes in flight exceeds {capacity_bytes}"
            ),
            ExecutionError::MissingSource(s) => write!(f, "no input bound for source '{s}'"),
            ExecutionError::OperatorPanicked {
                operator,
                partition,
                attempts,
            } => write!(
                f,
                "operator '{operator}' partition {partition} panicked {attempts} times, retries exhausted"
            ),
            ExecutionError::StoreReadFailed { source } => {
                write!(f, "store read of source '{source}' failed through every retry")
            }
            ExecutionError::BadCheckpoint(e) => write!(f, "bad flow checkpoint: {e}"),
            ExecutionError::UnknownStore { sink, store } => write!(
                f,
                "sink '{sink}' targets store '{store}', which this run cannot reach"
            ),
            ExecutionError::ShardLost { shard, operator, checkpoints } => write!(
                f,
                "worker shard {shard} lost during '{operator}'; {} checkpoint(s) survive for resume",
                checkpoints.len()
            ),
            ExecutionError::ShardProtocol { shard, detail } => {
                write!(f, "shard {shard} channel desynchronized: {detail}")
            }
        }
    }
}

impl std::error::Error for ExecutionError {}

/// Physical-side observations of a run — facts about how the work was
/// really executed (as opposed to what the simulated cluster charged).
/// Deliberately excluded from checkpoints, metric codecs, and
/// [`FlowOutput::deterministic_digest`]: they vary with `combining` and
/// worker counts by design, the way `wall_ms` varies with hardware.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhysicalStats {
    /// Bytes actually serialized across Reduce shuffle boundaries: every
    /// input record for an uncombined Reduce, only the sorted-key
    /// partial-aggregate maps for a combined one. The combined-vs-
    /// uncombined reduction here is the combiner's bandwidth win.
    pub shuffle_bytes: u64,
    /// Worker shards the run actually spawned (0 for in-process runs).
    pub shards_used: u64,
    /// Frames carried over shard channels, both directions.
    pub shard_frames: u64,
    /// Frame payload bytes carried over shard channels.
    pub shard_wire_bytes: u64,
    /// Worker shards respawned after a loss (`respawn_lost`).
    pub shard_respawns: u64,
    /// Sorted disk runs written by over-memory Reduce group tables.
    pub spill_runs: u64,
    /// Bytes written to spill run files.
    pub spill_bytes: u64,
}

/// A destination for `store:`-prefixed sinks: anything that can accept a
/// pipeline's output records as a named dataset. Implemented by the
/// serving layer's extraction store; kept as a trait here so
/// `websift-flow` stays ignorant of its layout.
///
/// [`Executor::run_into`] drains matching sinks in sorted name order, so
/// an implementation that ingests deterministically sees a deterministic
/// call sequence.
pub trait StoreSink {
    /// The store name this sink answers to (the `<store>` part of a
    /// `store:<store>/<dataset>` sink name).
    fn store_name(&self) -> &str;
    /// Accepts all records routed to `dataset`.
    fn append(&mut self, dataset: &str, records: Vec<Record>);
}

/// The result of a successful run.
#[derive(Debug)]
pub struct FlowOutput {
    pub sinks: HashMap<String, Vec<Record>>,
    pub metrics: FlowMetrics,
    /// Physical-only facts (shuffle bytes); never part of determinism
    /// comparisons.
    pub physical: PhysicalStats,
    /// The fusion/combining decisions this run actually made, in
    /// execution order — ground truth for the static
    /// [`crate::optimizer::plan_stages`] prediction. A resumed run only
    /// records the stages it executed itself. Physical-only, like
    /// [`PhysicalStats`]: excluded from [`Self::deterministic_digest`].
    pub stages: Vec<StageDecision>,
}

impl FlowOutput {
    /// Digest over everything deterministic in the run — sink contents
    /// and the simulated-time accounting, excluding wall-clock fields —
    /// for asserting the kill/resume invariant.
    pub fn deterministic_digest(&self) -> u64 {
        let mut w = Writer::new();
        self.sinks.encode(&mut w);
        w.f64(self.metrics.simulated_secs);
        w.u64(self.metrics.network_bytes);
        w.u64(self.metrics.peak_intermediate_bytes);
        w.u64(self.metrics.partition_retries);
        w.u64(self.metrics.store_read_retries);
        self.metrics.nodes_lost.encode(&mut w);
        for m in &self.metrics.per_op {
            w.str(&m.name);
            w.u64(m.records_in);
            w.u64(m.records_out);
            w.u64(m.bytes_in);
            w.u64(m.bytes_out);
            w.f64(m.simulated_secs);
        }
        websift_resilience::codec::digest(&w.into_bytes())
    }
}

/// The outcome of a resilient run: the output when the flow completed,
/// plus every checkpoint taken along the way. `output` is `None` only
/// when the run was interrupted by `stop_after_nodes`.
#[derive(Debug)]
pub struct ResilientRun {
    pub output: Option<FlowOutput>,
    pub checkpoints: Vec<FlowCheckpoint>,
}

/// Mid-plan executor state — everything a checkpoint must capture.
struct ExecState {
    next_node: usize,
    outputs: Vec<Option<Vec<Record>>>,
    consumers_left: Vec<usize>,
    sinks: HashMap<String, Vec<Record>>,
    metrics: FlowMetrics,
    startup_charged: HashSet<String>,
    node_alive: Vec<bool>,
}

impl ExecState {
    fn fresh(plan: &LogicalPlan, cluster_nodes: usize) -> ExecState {
        ExecState {
            next_node: 0,
            outputs: vec![None; plan.len()],
            consumers_left: (0..plan.len()).map(|id| plan.children(id).len()).collect(),
            sinks: HashMap::new(),
            metrics: FlowMetrics::default(),
            startup_charged: HashSet::new(),
            node_alive: vec![true; cluster_nodes],
        }
    }
}

impl Snapshot for ExecState {
    fn encode(&self, w: &mut Writer) {
        w.usize(self.next_node);
        self.outputs.encode(w);
        self.consumers_left.encode(w);
        self.sinks.encode(w);
        self.metrics.encode(w);
        self.startup_charged.encode(w);
        self.node_alive.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<ExecState, CodecError> {
        Ok(ExecState {
            next_node: r.usize()?,
            outputs: Snapshot::decode(r)?,
            consumers_left: Snapshot::decode(r)?,
            sinks: Snapshot::decode(r)?,
            metrics: Snapshot::decode(r)?,
            startup_charged: Snapshot::decode(r)?,
            node_alive: Snapshot::decode(r)?,
        })
    }
}

/// The executor.
pub struct Executor {
    config: ExecutionConfig,
}

/// Replication factor of sink writes (paper: HDFS with replication 3).
const SINK_REPLICATION: u64 = 3;

impl Executor {
    pub fn new(config: ExecutionConfig) -> Executor {
        assert!(config.dop > 0, "DoP must be positive");
        Executor { config }
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Runs `plan` against named source datasets.
    pub fn run(
        &self,
        plan: &LogicalPlan,
        inputs: HashMap<String, Vec<Record>>,
    ) -> Result<FlowOutput, ExecutionError> {
        let run = self.run_resilient(plan, inputs, &FlowResilience::default())?;
        Ok(run.output.expect("default resilience never interrupts"))
    }

    /// Runs `plan` and drains every `store:`-prefixed sink into `store`,
    /// so extraction output lands in a persistent store instead of dying
    /// with the returned [`FlowOutput`]. Plain sinks stay in
    /// [`FlowOutput::sinks`]; drained store sinks are removed from it.
    ///
    /// Fails with [`ExecutionError::UnknownStore`] if any store sink is
    /// malformed or names a store other than `store.store_name()` —
    /// records routed to a store must actually reach one.
    pub fn run_into(
        &self,
        plan: &LogicalPlan,
        inputs: HashMap<String, Vec<Record>>,
        store: &mut dyn StoreSink,
    ) -> Result<FlowOutput, ExecutionError> {
        let mut out = self.run(plan, inputs)?;
        let mut store_sinks: Vec<String> = out
            .sinks
            .keys()
            .filter(|name| name.starts_with(STORE_SINK_PREFIX))
            .cloned()
            .collect();
        // sorted so the store sees datasets in a plan-independent,
        // deterministic order
        store_sinks.sort();
        for name in store_sinks {
            let (target, dataset) = match parse_store_sink(&name) {
                Some(parts) => parts,
                None => {
                    let rest = name[STORE_SINK_PREFIX.len()..].to_string();
                    return Err(ExecutionError::UnknownStore { sink: name, store: rest });
                }
            };
            if target != store.store_name() {
                return Err(ExecutionError::UnknownStore {
                    sink: name.clone(),
                    store: target.to_string(),
                });
            }
            let dataset = dataset.to_string();
            let records = out.sinks.remove(&name).unwrap_or_default();
            store.append(&dataset, records);
        }
        Ok(out)
    }

    /// Runs `plan` with fault injection, partition retry, node-loss
    /// rescheduling, and operator-granular checkpointing per `res`. With
    /// default options this is exactly [`Executor::run`]. Observations go
    /// to a run-local [`Observer`]; use [`Executor::run_observed`] to
    /// keep them.
    pub fn run_resilient(
        &self,
        plan: &LogicalPlan,
        inputs: HashMap<String, Vec<Record>>,
        res: &FlowResilience,
    ) -> Result<ResilientRun, ExecutionError> {
        self.run_observed(plan, inputs, res, &Observer::new())
    }

    /// [`Executor::run_resilient`] reporting through the caller's
    /// [`Observer`]: per-plan-node spans on its tracer, per-operator
    /// counters/histograms in its registry, startup-vs-work cost in its
    /// profiler. All timestamps come from the simulated clock, so
    /// same-seed runs observe byte-identically.
    pub fn run_observed(
        &self,
        plan: &LogicalPlan,
        inputs: HashMap<String, Vec<Record>>,
        res: &FlowResilience,
        obs: &Observer,
    ) -> Result<ResilientRun, ExecutionError> {
        plan.validate().map_err(|e| {
            ExecutionError::Scheduling(SchedulingError::LibraryConflict {
                library: format!("invalid plan: {e}"),
                versions: vec![],
            })
        })?;
        let shards = self.config.sharding.as_ref().map(|s| s.shards);
        if self.config.analyze {
            let mut opts = AnalyzeOptions::default();
            if self.config.admission {
                opts = opts.with_admission(self.config.cluster.clone(), self.config.dop);
                if let Some(n) = shards {
                    opts = opts.with_shards(n);
                }
            }
            let errors: Vec<Diagnostic> = analyze_plan(plan, &opts)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            if !errors.is_empty() {
                return Err(ExecutionError::PlanRejected { diagnostics: errors });
            }
        }
        if self.config.admission {
            admit_sharded(plan, self.config.dop, &self.config.cluster, shards)
                .map_err(ExecutionError::Scheduling)?;
        }
        let state = ExecState::fresh(plan, self.config.cluster.nodes.len());
        self.drive(plan, inputs, state, res, obs)
    }

    /// Reconstructs mid-plan state from `checkpoint` and runs the flow to
    /// completion. `plan`, `inputs`, and `res` must match the original
    /// run's (the checkpoint stores executor state, not the plan or the
    /// fault schedule); `inputs` is only consulted for sources the
    /// checkpointed run had not yet read.
    pub fn resume_from(
        &self,
        plan: &LogicalPlan,
        checkpoint: &FlowCheckpoint,
        inputs: HashMap<String, Vec<Record>>,
        res: &FlowResilience,
    ) -> Result<ResilientRun, ExecutionError> {
        self.resume_observed(plan, checkpoint, inputs, res, &Observer::new())
    }

    /// [`Executor::resume_from`] reporting through the caller's
    /// [`Observer`]. The checkpoint's registry snapshot is restored into
    /// `obs` before execution continues, so counters and histograms pick
    /// up exactly where the killed run left them.
    pub fn resume_observed(
        &self,
        plan: &LogicalPlan,
        checkpoint: &FlowCheckpoint,
        inputs: HashMap<String, Vec<Record>>,
        res: &FlowResilience,
        obs: &Observer,
    ) -> Result<ResilientRun, ExecutionError> {
        let payload = checkpoint.payload().map_err(ExecutionError::BadCheckpoint)?;
        let mut r = Reader::new(payload);
        let state = ExecState::decode(&mut r).map_err(ExecutionError::BadCheckpoint)?;
        let registry = RegistrySnapshot::decode(&mut r).map_err(ExecutionError::BadCheckpoint)?;
        if !r.is_empty() || state.outputs.len() != plan.len() {
            return Err(ExecutionError::BadCheckpoint(CodecError::Truncated {
                what: "checkpoint does not match plan",
            }));
        }
        obs.registry().restore(&registry);
        self.drive(plan, inputs, state, res, obs)
    }

    /// Shared run loop behind `run_observed` and `resume_observed`.
    fn drive(
        &self,
        plan: &LogicalPlan,
        mut inputs: HashMap<String, Vec<Record>>,
        mut state: ExecState,
        res: &FlowResilience,
        obs: &Observer,
    ) -> Result<ResilientRun, ExecutionError> {
        // lint:allow(wall_clock): wall_ms is runtime-only diagnostics, never checkpointed
        let started = Instant::now();
        let mut checkpoints = Vec::new();
        let mut physical = PhysicalStats::default();
        let mut stages_run: Vec<StageDecision> = Vec::new();
        // The worker-shard pool, created lazily on the first sharded
        // stage and kept for the whole run (workers persist across
        // stages; kill counting is cumulative per channel).
        let mut pool: Option<ShardPool> = None;

        while state.next_node < plan.len() {
            if let Some(stop) = res.stop_after_nodes {
                if state.next_node >= stop {
                    state.metrics.wall_ms += started.elapsed().as_secs_f64() * 1000.0;
                    return Ok(ResilientRun {
                        output: None,
                        checkpoints,
                    });
                }
            }
            let node = &plan.nodes()[state.next_node];

            // Unreachable nodes (orphaned by the optimizer) with no
            // consumers and no sink role are skipped.
            let is_sink = matches!(node.op, NodeOp::Sink(_));
            if !is_sink && state.consumers_left[node.id] == 0 {
                state.next_node += 1;
                continue;
            }
            let input: Vec<Record> = match node.input {
                None => Vec::new(),
                Some(parent) => {
                    let take = {
                        state.consumers_left[parent] -= 1;
                        state.consumers_left[parent] == 0
                    };
                    let parent_out = state.outputs[parent]
                        .as_ref()
                        .expect("parent executed before child");
                    if take {
                        state.outputs[parent].take().unwrap()
                    } else {
                        parent_out.clone()
                    }
                }
            };

            // logical-clock start of this plan node's span
            let node_t0 = state.metrics.simulated_secs;
            match &node.op {
                NodeOp::Source(name) => {
                    // Injected store-read faults retry the read; each
                    // attempt's decision is pure in (source, attempt).
                    if let Some(fault_plan) = &res.faults {
                        let mut attempt: u32 = 0;
                        while fault_plan.injects_at(FaultKind::StoreRead, name, attempt as u64) {
                            state.metrics.store_read_retries += 1;
                            state.metrics.simulated_secs += STORE_READ_RETRY_SECS;
                            attempt += 1;
                            if attempt > res.partition_retries {
                                return Err(ExecutionError::StoreReadFailed {
                                    source: name.clone(),
                                });
                            }
                        }
                    }
                    let data = inputs
                        .remove(name)
                        .ok_or_else(|| ExecutionError::MissingSource(name.clone()))?;
                    let labels = Labels::new(&[("source", name)]);
                    obs.registry()
                        .counter("flow.source_records", &labels)
                        .add(data.len() as u64);
                    obs.tracer().span(
                        "flow.source",
                        node_t0,
                        state.metrics.simulated_secs - node_t0,
                        labels,
                    );
                    state.outputs[node.id] = Some(data);
                }
                NodeOp::Sink(name) => {
                    let bytes: u64 = input.iter().map(Record::approx_bytes).sum();
                    let scaled = (bytes as f64 * self.config.byte_scale) as u64;
                    state.metrics.network_bytes += scaled * SINK_REPLICATION;
                    state.metrics.simulated_secs +=
                        self.config.cluster.network_secs(scaled * SINK_REPLICATION);
                    let labels = Labels::new(&[("sink", name)]);
                    obs.registry()
                        .counter("flow.sink_records", &labels)
                        .add(input.len() as u64);
                    obs.registry()
                        .counter("flow.sink_bytes", &labels)
                        .add(scaled * SINK_REPLICATION);
                    obs.profiler().record(
                        &["flow", &format!("sink:{name}")],
                        state.metrics.simulated_secs - node_t0,
                        scaled * SINK_REPLICATION,
                    );
                    obs.tracer().span(
                        "flow.sink",
                        node_t0,
                        state.metrics.simulated_secs - node_t0,
                        labels,
                    );
                    state.sinks.entry(name.clone()).or_default().extend(input);
                    state.outputs[node.id] = Some(Vec::new());
                }
                NodeOp::Op(op) => {
                    // Collapse the maximal fusable stage starting here
                    // into one physical pass — possibly extending through
                    // a trailing combinable Reduce (partial aggregation).
                    // Stop-after boundaries act as fusion barriers;
                    // checkpoint boundaries no longer cut stages: frames
                    // landing inside a stage are synthesized by the
                    // replay, byte-identical to unfused execution. With
                    // fusion off the stage has length 1 and this is plain
                    // node-at-a-time execution through the same code path
                    // (a lone combinable Reduce still pre-aggregates per
                    // chunk when combining is on).
                    let stop = res.stop_after_nodes;
                    let stage = if self.config.fusion && op.is_pipelineable() {
                        fused_stage(
                            plan,
                            node.id,
                            |id| stop.is_some_and(|s| id >= s),
                            self.config.combining,
                        )
                    } else if self.config.combining && op.combinable_reduce() {
                        FusedStage { len: 1, combined_reduce: true }
                    } else {
                        FusedStage { len: 1, combined_reduce: false }
                    };
                    stages_run.push(StageDecision {
                        first: node.id,
                        len: stage.len,
                        combined_reduce: stage.combined_reduce,
                    });
                    self.run_chain(
                        plan,
                        node.id,
                        &stage,
                        input,
                        &mut state,
                        res,
                        obs,
                        &mut checkpoints,
                        &mut physical,
                        &mut pool,
                    )?;
                    state.next_node += stage.len - 1;
                }
            }

            state.next_node += 1;
            if let Some(every) = res.checkpoint_every_nodes {
                if every > 0 && state.next_node.is_multiple_of(every) && state.next_node < plan.len() {
                    let lost = res.faults.as_ref().is_some_and(|fault_plan| {
                        fault_plan.injects_at(
                            FaultKind::StoreWrite,
                            "flow-checkpoint",
                            state.next_node as u64,
                        )
                    });
                    if lost {
                        state.metrics.store_write_failures += 1;
                    } else {
                        state.metrics.checkpoints_taken += 1;
                        mirror_flow_gauges(obs, &state.metrics);
                        let mut w = Writer::new();
                        state.encode(&mut w);
                        // the frame carries the registry so resumed runs
                        // continue their counters bit-identically
                        obs.registry().snapshot().encode(&mut w);
                        checkpoints.push(FlowCheckpoint::seal(state.next_node, &w.into_bytes()));
                    }
                }
            }
        }

        // Network overload check on the peak edge volume.
        let per_round = match self.config.chunk_rounds {
            Some(rounds) if rounds > 0 => state.metrics.peak_intermediate_bytes / rounds as u64,
            _ => state.metrics.peak_intermediate_bytes,
        };
        if self.config.cluster.overloaded_by(per_round) {
            return Err(ExecutionError::NetworkOverload {
                intermediate_bytes: per_round,
                capacity_bytes: self.config.cluster.network_overload_bytes,
            });
        }
        // chunked execution pays a per-round latency overhead
        if let Some(rounds) = self.config.chunk_rounds {
            state.metrics.simulated_secs += rounds as f64 * 2.0;
        }

        state.metrics.wall_ms += started.elapsed().as_secs_f64() * 1000.0;
        mirror_flow_gauges(obs, &state.metrics);
        Ok(ResilientRun {
            output: Some(FlowOutput {
                sinks: state.sinks,
                metrics: state.metrics,
                physical,
                stages: stages_run,
            }),
            checkpoints,
        })
    }

    /// Executes the fused stage of operator nodes `first .. first +
    /// stage.len` as one physical pass, then replays the cost model per
    /// constituent in node-id order.
    ///
    /// The physical dataflow and the simulated accounting are
    /// deliberately decoupled. Records move **by value** stage to stage
    /// inside a single thread scope (no per-record clones), while each
    /// stage tallies per-record simulated costs (in record order) and
    /// incremental byte counts. When the stage ends in a combinable
    /// Reduce, each worker folds its chunk into per-key partial-aggregate
    /// states and ships only the sorted-key partial maps across the
    /// shuffle; the merge reproduces the serial grouping exactly (per-key
    /// record order is chunk-concatenation order, which is input order).
    /// The replay then walks the constituents in order and reproduces
    /// exactly what unfused node-at-a-time execution would have charged
    /// and observed: node losses, injected partition retries, startup,
    /// per-partition work (re-partitioned with each constituent's own
    /// `dop_eff` and cardinality, summed left-to-right per partition so
    /// the f64 accumulation order is identical), reduce shuffles,
    /// registry counters, profiler scopes, tracer spans — and checkpoint
    /// frames whose boundaries land inside the stage, synthesized
    /// byte-identically from tapped intermediate streams. Stage shape
    /// therefore never changes a deterministic number.
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    /// The in-process physical pass for one fused stage: chunks run on
    /// a local thread pool, each through the same
    /// [`crate::shuffle::StageKernel`] worker shards run, and results
    /// come back in chunk order. `Err((stage, chunk))` reports a genuine
    /// UDF panic.
    #[allow(clippy::too_many_arguments)]
    fn run_stage_local(
        &self,
        stage_ops: &[&Operator],
        combiner: &Option<(crate::operator::KeyFn, Aggregate)>,
        do_fold: bool,
        reduce_cost: crate::operator::CostModel,
        tapped_stages: &[usize],
        chain_len: usize,
        chunks: Vec<Vec<Record>>,
        batch_size: usize,
        dop_eff: usize,
    ) -> Result<Vec<ChunkOut>, (usize, usize)> {
        let n_chunks = chunks.len();
        let pending: Vec<Vec<RecordBatch>> = chunks
            .into_iter()
            .map(|c| RecordBatch::split(c, batch_size))
            .collect();
        let kernel = crate::shuffle::StageKernel {
            ops: stage_ops,
            fold: combiner
                .as_ref()
                .filter(|_| do_fold)
                .map(|(key, agg)| (key, agg, reduce_cost)),
            tapped: tapped_stages,
            work_scale: self.config.work_scale,
            chain_len,
        };
        let slots: Vec<parking_lot::Mutex<Option<Vec<RecordBatch>>>> =
            pending.into_iter().map(|c| parking_lot::Mutex::new(Some(c))).collect();
        let results: Vec<parking_lot::Mutex<Option<ChunkOut>>> =
            (0..n_chunks).map(|_| parking_lot::Mutex::new(None)).collect();
        let queue: parking_lot::Mutex<Vec<usize>> =
            parking_lot::Mutex::new((0..n_chunks).rev().collect());
        // (stage, chunk) of a genuine UDF panic — injected panics are
        // accounted analytically in the replay and never fire here
        let fatal: parking_lot::Mutex<Option<(usize, usize)>> = parking_lot::Mutex::new(None);
        let worker_count = dop_eff.min(n_chunks).min(self.config.max_workers).max(1);
        std::thread::scope(|scope| {
            for _ in 0..worker_count {
                scope.spawn(|| {
                    // Worker-persistent arena: per-batch scratch is
                    // reclaimed (capacity kept) between batches, and
                    // the combiner's wire encode reuses its byte
                    // buffer across chunks.
                    let mut arena = BatchArena::new();
                    loop {
                        if fatal.lock().is_some() {
                            break;
                        }
                        let Some(i) = queue.lock().pop() else { break };
                        let batches =
                            slots[i].lock().take().expect("each chunk is taken once");
                        let stage_at = std::cell::Cell::new(0usize);
                        let arena = &mut arena;
                        let outcome = catch_unwind(AssertUnwindSafe(|| {
                            kernel.run_chunk(batches, arena, &stage_at)
                        }));
                        match outcome {
                            Ok(r) => *results[i].lock() = Some(r),
                            Err(_) => *fatal.lock() = Some((stage_at.get(), i)),
                        }
                    }
                });
            }
        });
        if let Some(hit) = fatal.into_inner() {
            // A genuine (non-injected) UDF panic is a deterministic
            // programming bug: every retry would fail identically, so
            // the exhausted budget is reported directly. The flow aborts
            // and nothing from this chain is committed.
            return Err(hit);
        }
        Ok(results
            .into_iter()
            .map(|slot| slot.into_inner().expect("every chunk completed"))
            .collect())
    }

    #[allow(clippy::too_many_arguments)]
    fn run_chain(
        &self,
        plan: &LogicalPlan,
        first: usize,
        stage: &FusedStage,
        input: Vec<Record>,
        state: &mut ExecState,
        res: &FlowResilience,
        obs: &Observer,
        checkpoints: &mut Vec<FlowCheckpoint>,
        physical: &mut PhysicalStats,
        pool: &mut Option<ShardPool>,
    ) -> Result<(), ExecutionError> {
        let len = stage.len;
        let ops: Vec<&Operator> = (first..first + len)
            .map(|id| match &plan.nodes()[id].op {
                NodeOp::Op(op) => op,
                _ => unreachable!("chain nodes are operator nodes"),
            })
            .collect();
        // The combinable Reduce closing this stage, if combining applies.
        let combiner: Option<(crate::operator::KeyFn, Aggregate)> = if stage.combined_reduce {
            match ops[len - 1].func() {
                OpFunc::Reduce { key, aggregate } => Some((key.clone(), aggregate.clone())),
                _ => unreachable!("combined stage ends in a reduce"),
            }
        } else {
            None
        };
        // Interior boundaries the physical pass must tap (cloning the
        // record stream crossing them, in unfused record order):
        //
        // - checkpoint boundaries `first + s + 1` the cadence hits
        //   strictly inside this stage, so the replay can synthesize the
        //   frame an unfused run would have written there;
        // - tee boundaries — interior nodes with consumers outside the
        //   chain (fan-out), whose tap becomes the node's live output so
        //   those consumers read exactly what unfused execution would
        //   have handed them.
        let every = res.checkpoint_every_nodes.filter(|&e| e > 0);
        let teed = |s: usize| s + 1 < len && plan.children(first + s).len() > 1;
        let tapped_stages: Vec<usize> = (0..len)
            .filter(|&s| {
                s + 1 < len
                    && (every.is_some_and(|e| (first + s + 1).is_multiple_of(e)) || teed(s))
            })
            .collect();

        // Maps a sharded-runtime failure onto the executor's error
        // vocabulary. A worker-reported panic is the same deterministic
        // bug the in-process path reports; a lost shard carries every
        // checkpoint taken so far so the caller can resume.
        let shard_err = |e: ShardRunError, checkpoints: &[FlowCheckpoint]| match e {
            ShardRunError::Panicked { stage, chunk } => ExecutionError::OperatorPanicked {
                operator: ops[stage.min(len - 1)].name.clone(),
                partition: chunk,
                attempts: res.partition_retries + 1,
            },
            ShardRunError::Lost { shard } => ExecutionError::ShardLost {
                shard,
                operator: ops[0].name.clone(),
                checkpoints: checkpoints.to_vec(),
            },
            ShardRunError::Protocol { shard, detail } => {
                ExecutionError::ShardProtocol { shard, detail }
            }
        };

        // Phase 1 — schedule: node losses and effective DoP per
        // constituent are pure functions of the fault plan and node ids,
        // so they are decided up front (on a scratch liveness vector; the
        // replay applies them to real state in order). If a constituent
        // loses every node, later stages never run physically either.
        struct StageSched {
            losses: Vec<usize>,
            all_nodes_dead: bool,
            dop_eff: usize,
        }
        let mut alive = state.node_alive.clone();
        let mut scheds: Vec<StageSched> = Vec::with_capacity(len);
        let mut physical_stages = len;
        for s in 0..len {
            let node_id = first + s;
            let mut losses = Vec::new();
            if let Some(fault_plan) = &res.faults {
                for (j, a) in alive.iter_mut().enumerate() {
                    if *a
                        && fault_plan.injects_at(
                            FaultKind::NodeLoss,
                            &format!("node{j}"),
                            node_id as u64,
                        )
                    {
                        *a = false;
                        losses.push(j);
                    }
                }
            }
            let all_nodes_dead = !alive.iter().any(|&a| a);
            let n_alive = alive.iter().filter(|&&a| a).count();
            let total = alive.len().max(1);
            let dop_eff = (self.config.dop * n_alive / total).max(1);
            scheds.push(StageSched { losses, all_nodes_dead, dop_eff });
            if all_nodes_dead {
                physical_stages = s;
                break;
            }
        }

        // Per-stage observations from the physical pass, merged across
        // chunks in chunk order (pipeline stages preserve record order,
        // so concatenated per-chunk tallies reproduce the record order an
        // unfused run would have seen). Shared with the sharded runtime:
        // worker shards ship these back through the frame codec.
        use crate::shuffle::ChunkStats as StageStats;
        let mut stats: Vec<StageStats> = (0..physical_stages).map(|_| StageStats::default()).collect();
        let mut output: Vec<Record> = Vec::new();
        let mut final_bytes_out: u64 = 0;
        let mut reduce_work: f64 = 0.0;
        // Records crossing each tapped interior boundary, in unfused
        // record order (chunk-concatenation order).
        let mut stage_taps: HashMap<usize, Vec<Record>> = HashMap::new();

        let is_reduce = combiner.is_none() && len == 1 && ops[0].kind == Kind::Reduce;
        if is_reduce && physical_stages == 1 {
            // Uncombined hash shuffle: every record physically crosses
            // the boundary through the snapshot codec (encode at the
            // mapper side, decode at the reducer side) — the cost a real
            // cluster pays to ship the full stream. decode∘encode is the
            // identity on records, so deterministic surfaces are
            // untouched; only wall clock and `PhysicalStats` see it.
            // Groups then aggregate in key order.
            let OpFunc::Reduce { key, aggregate } = ops[0].func() else {
                unreachable!("reduce operator carries a reduce func")
            };
            // lint:allow(wall_clock): per-op wall_ms is runtime-only diagnostics
            let started = Instant::now();
            let st = &mut stats[0];
            let n = input.len();
            st.records_in = n as u64;
            // The shard pool performs this shuffle for real when
            // sharding is on and the Reduce carries a serializable key
            // spec: contiguous per-shard input slices stream to worker
            // group tables (spilling over-memory groups to sorted disk
            // runs) and come back as key-sorted, arrival-ordered groups.
            // Concatenating shard outputs in shard order rebuilds the
            // exact grouping of the serial path below, so the shared
            // cost/apply tail is bit-identical either way.
            let shard_key = match (&self.config.sharding, ops[0].spec()) {
                (Some(_), Some(spec)) => match &spec.op {
                    SpecOp::Reduce { key: k, .. } => Some(k.clone()),
                    _ => None,
                },
                _ => None,
            };
            let grouped: Vec<(String, Vec<Record>)> = if let Some(kspec) = shard_key {
                for r in &input {
                    st.bytes_in += r.approx_bytes();
                }
                let cfg = self.config.sharding.clone().expect("sharded branch");
                let pool = pool.get_or_insert_with(|| ShardPool::new(cfg));
                let n_shards = pool.shards();
                let slice_len = n.div_ceil(n_shards).max(1);
                let chunk_size = n.div_ceil(scheds[0].dop_eff).max(1);
                let mut slices: Vec<Vec<Vec<Record>>> = Vec::with_capacity(n_shards);
                let mut rest = input;
                while !rest.is_empty() {
                    let tail = if rest.len() > slice_len {
                        rest.split_off(slice_len)
                    } else {
                        Vec::new()
                    };
                    let mut subs: Vec<Vec<Record>> = Vec::new();
                    let mut cur = rest;
                    while cur.len() > chunk_size {
                        let t = cur.split_off(chunk_size);
                        subs.push(cur);
                        cur = t;
                    }
                    if !cur.is_empty() {
                        subs.push(cur);
                    }
                    slices.push(subs);
                    rest = tail;
                }
                while slices.len() < n_shards {
                    slices.push(Vec::new());
                }
                let shard_outs = run_reduce_sharded(pool, &kspec, slices)
                    .map_err(|e| shard_err(e, checkpoints))?;
                let mut merged: BTreeMap<String, Vec<Record>> = BTreeMap::new();
                for so in shard_outs {
                    physical.spill_runs += so.spill_runs;
                    physical.spill_bytes += so.spill_bytes;
                    for (k, rs) in so.groups {
                        merged.entry(k).or_default().extend(rs);
                    }
                }
                physical.shards_used = pool.shards() as u64;
                physical.shard_frames = pool.frames_total();
                physical.shard_wire_bytes = pool.wire_bytes_total();
                physical.shard_respawns = pool.respawns;
                merged.into_iter().collect()
            } else {
                let mut shuf = Writer::new();
                for r in input {
                    st.bytes_in += r.approx_bytes();
                    r.encode(&mut shuf);
                }
                let wire = shuf.into_bytes();
                physical.shuffle_bytes += wire.len() as u64;
                let mut rd = Reader::new(&wire);
                let mut groups: HashMap<String, Vec<Record>> = HashMap::new();
                for _ in 0..n {
                    let r = Record::decode(&mut rd).expect("shuffled records round-trip");
                    groups.entry(key(&r)).or_default().push(r);
                }
                let mut grouped: Vec<(String, Vec<Record>)> = groups.into_iter().collect();
                grouped.sort_by(|a, b| a.0.cmp(&b.0));
                grouped
            };
            let mut work_secs = 0.0f64;
            for (k, rs) in grouped {
                for r in &rs {
                    work_secs += self.config.work_scale
                        * ops[0].cost.record_cost_secs(r.text().map(str::len).unwrap_or(64));
                }
                output.extend(aggregate.apply_group(&k, rs));
            }
            reduce_work = work_secs / scheds[0].dop_eff as f64;
            final_bytes_out = output.iter().map(Record::approx_bytes).sum();
            st.wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        } else if physical_stages > 0 {
            // Phase 2 — the fused pass: partition the owned input into
            // contiguous chunks (same boundaries the unfused first stage
            // would use), split each chunk into fixed-size record
            // batches, and push every batch through every stage inside
            // one thread scope, records moved by value throughout.
            // Batching is physical only: batches never span chunk
            // boundaries and each chunk's batches run in order, so the
            // per-stage record streams (and everything derived from
            // them) are identical for every batch size.
            let chunk_size = input.len().div_ceil(scheds[0].dop_eff).max(1);
            let batch_size = self
                .config
                .batch_size
                .unwrap_or(crate::batch::DEFAULT_BATCH_SIZE)
                .max(1);
            let mut chunks: Vec<Vec<Record>> =
                Vec::with_capacity(input.len() / chunk_size + 1);
            let mut rest = input;
            while rest.len() > chunk_size {
                let tail = rest.split_off(chunk_size);
                chunks.push(rest);
                rest = tail;
            }
            if !rest.is_empty() {
                chunks.push(rest);
            }
            // Pipeline constituents run per chunk; a combined Reduce is
            // folded after them (only when every constituent survives the
            // schedule — a dead constituent means the replay errors out
            // before the reduce would have run).
            let chain_op_count = if combiner.is_some() { len - 1 } else { len };
            let stage_ops = &ops[..physical_stages.min(chain_op_count)];
            let do_fold = combiner.is_some() && physical_stages == len;
            let reduce_cost = ops[len - 1].cost;

            // Sharded placement: when every constituent (and the folded
            // Reduce, if any) carries a serializable spec, the chunks run
            // on worker shards over the frame protocol instead of local
            // threads. Chunk boundaries and merge order are identical, so
            // this choice is invisible to every deterministic surface.
            let sharded_task = match &self.config.sharding {
                Some(_) => {
                    let fold_spec: Option<OpSpec> =
                        if do_fold { ops[len - 1].spec().cloned() } else { None };
                    let chain_specs: Option<Vec<OpSpec>> =
                        stage_ops.iter().map(|op| op.spec().cloned()).collect();
                    match chain_specs {
                        Some(specs) if !do_fold || fold_spec.is_some() => {
                            Some(StageTask::Pipeline {
                                ops: specs,
                                fold: fold_spec,
                                tapped: tapped_stages.clone(),
                                work_scale: self.config.work_scale,
                                batch_size,
                                chain_len: len,
                            })
                        }
                        _ => None,
                    }
                }
                None => None,
            };

            let chunk_outs: Vec<ChunkOut> = if let Some(task) = sharded_task {
                let cfg = self.config.sharding.clone().expect("sharded task implies config");
                let pool = pool.get_or_insert_with(|| ShardPool::new(cfg));
                let outs = run_stage_sharded(pool, &task, chunks)
                    .map_err(|e| shard_err(e, checkpoints))?;
                physical.shards_used = pool.shards() as u64;
                physical.shard_frames = pool.frames_total();
                physical.shard_wire_bytes = pool.wire_bytes_total();
                physical.shard_respawns = pool.respawns;
                outs
            } else {
                self.run_stage_local(
                    stage_ops,
                    &combiner,
                    do_fold,
                    reduce_cost,
                    &tapped_stages,
                    len,
                    chunks,
                    batch_size,
                    scheds[0].dop_eff,
                )
                .map_err(|(stage, chunk)| ExecutionError::OperatorPanicked {
                    operator: ops[stage].name.clone(),
                    partition: chunk,
                    attempts: res.partition_retries + 1,
                })?
            };

            // Merge chunk results in chunk order: pipeline stages
            // preserve record order, so concatenation reproduces the
            // record order an unfused run would have seen — including the
            // per-key cost lists the reduce-work replay depends on.
            let mut merged: BTreeMap<String, (AggState, Vec<f64>)> = BTreeMap::new();
            for r in chunk_outs {
                for (s, t) in r.stages.into_iter().enumerate() {
                    stats[s].records_in += t.records_in;
                    stats[s].bytes_in += t.bytes_in;
                    stats[s].wall_ms += t.wall_ms;
                    stats[s].costs.extend(t.costs);
                }
                if let Some((entries, shuffled)) = r.partial {
                    physical.shuffle_bytes += shuffled;
                    for (k, st, costs) in entries {
                        match merged.entry(k) {
                            std::collections::btree_map::Entry::Occupied(mut e) => {
                                let agg = &combiner.as_ref().expect("partials imply combiner").1;
                                agg.merge(&mut e.get_mut().0, st);
                                e.get_mut().1.extend(costs);
                            }
                            std::collections::btree_map::Entry::Vacant(v) => {
                                v.insert((st, costs));
                            }
                        }
                    }
                }
                for (&s, tap) in tapped_stages.iter().zip(r.taps) {
                    stage_taps.entry(s).or_default().extend(tap);
                }
                final_bytes_out += r.bytes_out;
                output.extend(r.out);
            }
            if do_fold {
                // Final merge: finish every key in sorted order, and
                // replay the serial reduce's per-record cost accumulation
                // — one left-to-right f64 sum over (sorted key, record
                // arrival) order, bit-identical to the uncombined path.
                let agg = &combiner.as_ref().expect("fold implies a combiner").1;
                let mut work_secs = 0.0f64;
                for (k, (st, costs)) in merged {
                    for c in costs {
                        work_secs += c;
                    }
                    output.extend(agg.finish(&k, st));
                }
                reduce_work = work_secs / scheds[len - 1].dop_eff as f64;
                final_bytes_out = output.iter().map(Record::approx_bytes).sum();
            }
        }

        // Phase 3 — replay: charge and observe every constituent in node
        // order, exactly as the unfused drive loop would have.
        for (s, sched) in scheds.iter().enumerate() {
            let op = ops[s];
            let node_t0 = state.metrics.simulated_secs;
            // Simulated node losses: dead nodes drop out of the placement
            // and their share of work is rescheduled onto the survivors
            // (slower, but correct). The replacement placement re-runs
            // the operator's startup on the survivors.
            for &j in &sched.losses {
                state.node_alive[j] = false;
                state.metrics.nodes_lost.push(j);
                state.metrics.simulated_secs += NODE_LOSS_RESCHEDULE_SECS;
                state.metrics.simulated_secs += op.cost.startup_secs;
            }
            if sched.all_nodes_dead {
                let node_id = state.metrics.nodes_lost.last().copied().unwrap_or(0);
                return Err(ExecutionError::Scheduling(SchedulingError::NodeFailed {
                    node: node_id,
                }));
            }
            let records_in = stats[s].records_in;
            let records_out = match stats.get(s + 1) {
                Some(next) => next.records_in,
                None => output.len() as u64,
            };
            let bytes_in = stats[s].bytes_in;
            let bytes_out = match stats.get(s + 1) {
                Some(next) => next.bytes_in,
                None => final_bytes_out,
            };
            // Injected worker panics, replayed per partition of *this*
            // constituent's own chunking (cardinality × dop_eff), with
            // the retry-queue semantics of physical re-execution: each
            // injected panic burns one attempt until the budget is gone.
            let n = records_in as usize;
            let stage_chunk_size = n.div_ceil(sched.dop_eff).max(1);
            let stage_chunks = if n == 0 { 0 } else { n.div_ceil(stage_chunk_size) };
            let mut retries: u64 = 0;
            if op.kind != Kind::Reduce {
                if let Some(fault_plan) = &res.faults {
                    for p in 0..stage_chunks {
                        let key = format!("{}#p{p}", op.name);
                        let mut attempt: u32 = 0;
                        while fault_plan.injects_at(FaultKind::WorkerPanic, &key, attempt as u64) {
                            if attempt < res.partition_retries {
                                retries += 1;
                                attempt += 1;
                            } else {
                                return Err(ExecutionError::OperatorPanicked {
                                    operator: op.name.clone(),
                                    partition: p,
                                    attempts: attempt + 1,
                                });
                            }
                        }
                    }
                }
            }
            state.metrics.partition_retries += retries;
            state.metrics.simulated_secs += retries as f64 * PARTITION_RETRY_SECS;
            // startup is charged once per distinct operator name (workers
            // start it in parallel; it floors the clock), plus the cost
            // of shipping the operator's resident data (dictionaries,
            // models) to every worker over the shared switch — the term
            // that makes heavy flows scale sub-linearly in DoP (Figs. 4/5)
            if state.startup_charged.insert(op.name.clone()) {
                let ship_bytes = op.cost.memory_bytes.saturating_mul(self.config.dop as u64);
                let startup_secs =
                    op.cost.startup_secs + self.config.cluster.network_secs(ship_bytes);
                state.metrics.simulated_secs += startup_secs;
                obs.profiler().record(
                    &["flow", &format!("op:{}", op.name), "startup"],
                    startup_secs,
                    ship_bytes,
                );
            }
            // per-partition work: max over this constituent's partitions
            // of the left-to-right sum of per-record costs
            let work = if op.kind == Kind::Reduce {
                reduce_work
            } else {
                let mut max_secs = 0.0f64;
                for chunk in stats[s].costs.chunks(stage_chunk_size) {
                    let mut secs = 0.0f64;
                    for c in chunk {
                        secs += *c;
                    }
                    max_secs = max_secs.max(secs);
                }
                max_secs
            };
            state.metrics.simulated_secs += work;
            obs.profiler()
                .record(&["flow", &format!("op:{}", op.name), "work"], work, bytes_in);
            // shuffle accounting for reduce
            if op.kind == Kind::Reduce {
                let scaled = (bytes_in as f64 * self.config.byte_scale) as u64;
                state.metrics.network_bytes += scaled;
                state.metrics.peak_intermediate_bytes =
                    state.metrics.peak_intermediate_bytes.max(scaled);
                state.metrics.simulated_secs += self.config.cluster.network_secs(scaled);
            }
            let scaled_out = (bytes_out as f64 * self.config.byte_scale) as u64;
            state.metrics.peak_intermediate_bytes =
                state.metrics.peak_intermediate_bytes.max(scaled_out);

            // write the raw numbers through registry handles, then derive
            // the public OpMetrics view back *from* the registry — the
            // struct stays, the registry is the source of truth
            let node_id = (first + s).to_string();
            let labels = Labels::new(&[("node", &node_id), ("op", &op.name)]);
            let reg = obs.registry();
            reg.counter("flow.records_in", &labels).add(records_in);
            reg.counter("flow.records_out", &labels).add(records_out);
            reg.counter("flow.bytes_in", &labels).add(bytes_in);
            reg.counter("flow.bytes_out", &labels).add(bytes_out);
            reg.histogram("flow.op_secs", &Labels::new(&[("op", &op.name)]))
                .record(work);
            let view = OpMetrics {
                name: op.name.clone(),
                records_in: reg.counter("flow.records_in", &labels).value(),
                records_out: reg.counter("flow.records_out", &labels).value(),
                bytes_in: reg.counter("flow.bytes_in", &labels).value(),
                bytes_out: reg.counter("flow.bytes_out", &labels).value(),
                wall_ms: stats[s].wall_ms,
                simulated_secs: work,
            };
            obs.tracer().span(
                "flow.op",
                node_t0,
                state.metrics.simulated_secs - node_t0,
                labels,
            );
            state.metrics.per_op.push(view);

            // Synthesize the checkpoint frame an unfused run would have
            // written at the node boundary `first + s + 1` when the
            // cadence hits strictly inside this stage. The ExecState is
            // momentarily shaped exactly as at that boundary — interior
            // parents consumed (tee'd ones keep their remaining
            // consumers and live tapped stream), node `b - 1`'s output
            // live (the tapped stream), `next_node` at the boundary — so
            // the frame bytes match the unfused run's bit for bit, and a
            // resume from it re-enters the plan mid-stage.
            if s + 1 < len && every.is_some_and(|e| (first + s + 1).is_multiple_of(e)) {
                let b = first + s + 1;
                let lost = res.faults.as_ref().is_some_and(|fault_plan| {
                    fault_plan.injects_at(FaultKind::StoreWrite, "flow-checkpoint", b as u64)
                });
                if lost {
                    state.metrics.store_write_failures += 1;
                } else {
                    state.metrics.checkpoints_taken += 1;
                    mirror_flow_gauges(obs, &state.metrics);
                    for id in first..b - 1 {
                        let extra = plan.children(id).len().saturating_sub(1);
                        state.consumers_left[id] = extra;
                        if extra > 0 {
                            state.outputs[id] = Some(
                                stage_taps.get(&(id - first)).cloned().unwrap_or_default(),
                            );
                        }
                    }
                    let saved_next = state.next_node;
                    state.next_node = b;
                    state.outputs[b - 1] = Some(stage_taps.get(&s).cloned().unwrap_or_default());
                    let mut w = Writer::new();
                    state.encode(&mut w);
                    obs.registry().snapshot().encode(&mut w);
                    checkpoints.push(FlowCheckpoint::seal(b, &w.into_bytes()));
                    for id in first..b {
                        state.outputs[id] = None;
                    }
                    state.next_node = saved_next;
                }
            }
        }

        // Interior chain edges were consumed inside the pass: after an
        // unfused run each interior node's single consumer (node id + 1)
        // would have taken or cloned its output. Nodes whose only
        // consumer was the chain end with `None` and zero consumers;
        // tee'd nodes keep their remaining out-of-chain consumers and
        // publish the tapped stream as their live output — exactly the
        // state unfused execution leaves behind.
        for id in first..first + len - 1 {
            let extra = plan.children(id).len().saturating_sub(1);
            state.consumers_left[id] = extra;
            if extra > 0 {
                state.outputs[id] =
                    Some(stage_taps.remove(&(id - first)).unwrap_or_default());
            }
        }
        state.outputs[first + len - 1] = Some(output);
        Ok(())
    }
}

/// Mirrors the flow-level totals into registry gauges (deterministic
/// fields only — never `wall_ms`), so observers see flow state without
/// holding a `FlowMetrics`.
fn mirror_flow_gauges(obs: &Observer, m: &FlowMetrics) {
    let reg = obs.registry();
    let at = Labels::empty();
    reg.gauge("flow.simulated_secs", &at).set(m.simulated_secs);
    reg.gauge("flow.network_bytes", &at).set(m.network_bytes as f64);
    reg.gauge("flow.peak_intermediate_bytes", &at)
        .set(m.peak_intermediate_bytes as f64);
    reg.gauge("flow.partition_retries", &at).set(m.partition_retries as f64);
    reg.gauge("flow.store_read_retries", &at).set(m.store_read_retries as f64);
    reg.gauge("flow.checkpoints_taken", &at).set(m.checkpoints_taken as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, Operator, Package};
    use crate::record::Value;

    fn docs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::new();
                r.set("id", i).set("text", format!("document number {i} with some text"));
                r
            })
            .collect()
    }

    fn simple_plan() -> LogicalPlan {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let upper = plan
            .add(
                src,
                Operator::map("upper", Package::Base, |mut r| {
                    let t = r.text().unwrap().to_uppercase();
                    r.set("text", t);
                    r
                }),
            )
            .unwrap();
        let keep_even = plan
            .add(
                upper,
                Operator::filter("even", Package::Base, |r| {
                    r.get("id").unwrap().as_int().unwrap() % 2 == 0
                }),
            )
            .unwrap();
        plan.sink(keep_even, "out").unwrap();
        plan
    }

    fn run(plan: &LogicalPlan, input: Vec<Record>, dop: usize) -> FlowOutput {
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        Executor::new(ExecutionConfig::local(dop)).run(plan, inputs).unwrap()
    }

    #[test]
    fn executes_linear_plan() {
        let out = run(&simple_plan(), docs(10), 4);
        let records = &out.sinks["out"];
        assert_eq!(records.len(), 5);
        assert!(records[0].text().unwrap().contains("DOCUMENT"));
    }

    /// Records a `run_into` call sequence for the store-routing tests.
    struct RecordingStore {
        name: String,
        appended: Vec<(String, usize)>,
    }

    impl StoreSink for RecordingStore {
        fn store_name(&self) -> &str {
            &self.name
        }

        fn append(&mut self, dataset: &str, records: Vec<Record>) {
            self.appended.push((dataset.to_string(), records.len()));
        }
    }

    #[test]
    fn run_into_routes_store_sinks_and_keeps_plain_ones() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        plan.store_sink(src, "serve", "entities").unwrap();
        plan.store_sink(src, "serve", "aux").unwrap();
        plan.sink(src, "plain").unwrap();

        let mut store = RecordingStore { name: "serve".into(), appended: vec![] };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(6));
        let out = Executor::new(ExecutionConfig::local(2))
            .run_into(&plan, inputs, &mut store)
            .unwrap();

        // store sinks drained (in sorted name order), plain sink kept
        assert_eq!(store.appended, vec![("aux".to_string(), 6), ("entities".to_string(), 6)]);
        assert_eq!(out.sinks.len(), 1);
        assert_eq!(out.sinks["plain"].len(), 6);
    }

    #[test]
    fn run_into_rejects_sinks_for_other_stores() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        plan.store_sink(src, "archive", "entities").unwrap();

        let mut store = RecordingStore { name: "serve".into(), appended: vec![] };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(2));
        let err = Executor::new(ExecutionConfig::local(1))
            .run_into(&plan, inputs, &mut store)
            .unwrap_err();
        assert_eq!(
            err,
            ExecutionError::UnknownStore {
                sink: "store:archive/entities".into(),
                store: "archive".into(),
            }
        );
        assert!(store.appended.is_empty());
        assert!(err.to_string().contains("store 'archive'"));
    }

    #[test]
    fn results_identical_across_dops() {
        let a = run(&simple_plan(), docs(37), 1);
        let b = run(&simple_plan(), docs(37), 8);
        assert_eq!(a.sinks["out"], b.sinks["out"]);
    }

    #[test]
    fn branching_plan_feeds_both_sinks() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let pre = plan.add(src, Operator::map("pre", Package::Base, |r| r)).unwrap();
        let odd = plan
            .add(
                pre,
                Operator::filter("odd", Package::Base, |r| {
                    r.get("id").unwrap().as_int().unwrap() % 2 == 1
                }),
            )
            .unwrap();
        let even = plan
            .add(
                pre,
                Operator::filter("even", Package::Base, |r| {
                    r.get("id").unwrap().as_int().unwrap() % 2 == 0
                }),
            )
            .unwrap();
        plan.sink(odd, "odd").unwrap();
        plan.sink(even, "even").unwrap();
        let out = run(&plan, docs(10), 4);
        assert_eq!(out.sinks["odd"].len(), 5);
        assert_eq!(out.sinks["even"].len(), 5);
    }

    #[test]
    fn reduce_counts_groups() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let red = plan
            .add(
                src,
                Operator::reduce(
                    "count",
                    Package::Base,
                    |r| (r.get("id").unwrap().as_int().unwrap() % 3).to_string(),
                    |k, rs| {
                        let mut r = Record::new();
                        r.set("key", k).set("n", rs.len());
                        vec![r]
                    },
                ),
            )
            .unwrap();
        plan.sink(red, "out").unwrap();
        let out = run(&plan, docs(9), 4);
        assert_eq!(out.sinks["out"].len(), 3);
        for r in &out.sinks["out"] {
            assert_eq!(r.get("n").unwrap().as_int(), Some(3));
        }
        assert!(out.metrics.network_bytes > 0, "reduce shuffles bytes");
    }

    #[test]
    fn missing_source_errors() {
        let plan = simple_plan();
        let err = Executor::new(ExecutionConfig::local(2))
            .run(&plan, HashMap::new())
            .unwrap_err();
        assert_eq!(err, ExecutionError::MissingSource("in".to_string()));
    }

    #[test]
    fn admission_failure_propagates() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let fat = plan
            .add(
                src,
                Operator::map("fat", Package::Ie, |r| r).with_cost(CostModel {
                    memory_bytes: 100 << 30,
                    ..CostModel::default()
                }),
            )
            .unwrap();
        plan.sink(fat, "out").unwrap();
        // analyze: false reaches the runtime scheduler's own rejection
        let config = ExecutionConfig {
            admission: true,
            analyze: false,
            cluster: ClusterSpec::paper_cluster(),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(1));
        let err = Executor::new(config).run(&plan, inputs).unwrap_err();
        assert!(matches!(
            err,
            ExecutionError::Scheduling(SchedulingError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn analyzer_rejects_over_memory_plan_preflight() {
        // same plan as admission_failure_propagates, but with the default
        // analyze: true the static analyzer catches it before the
        // scheduler — and before any operator runs
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let fat = plan
            .add(
                src,
                Operator::map("fat", Package::Ie, |r| r).with_cost(CostModel {
                    memory_bytes: 100 << 30,
                    ..CostModel::default()
                }),
            )
            .unwrap();
        plan.sink(fat, "out").unwrap();
        let config = ExecutionConfig {
            admission: true,
            cluster: ClusterSpec::paper_cluster(),
            ..ExecutionConfig::local(4)
        };
        // empty inputs: rejection must happen before the missing source
        // could even be noticed
        let err = Executor::new(config).run(&plan, HashMap::new()).unwrap_err();
        match err {
            ExecutionError::PlanRejected { diagnostics } => {
                // WS007 (whole-plan sum) and WS014 (even the peak fused
                // stage alone) both reject a single 100 GB operator
                let codes: Vec<&str> = diagnostics.iter().map(|d| d.code.as_str()).collect();
                assert_eq!(codes, vec!["WS007", "WS014"]);
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
    }

    #[test]
    fn analyzer_rejects_use_before_def_preflight() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let neg = plan
            .add(
                src,
                Operator::map("negation", Package::Ie, |r| r)
                    .with_reads(&["text", "sentences"])
                    .with_writes(&["negation"]),
            )
            .unwrap();
        let sents = plan
            .add(
                neg,
                Operator::map("sentences", Package::Ie, |r| r)
                    .with_reads(&["text"])
                    .with_writes(&["sentences"]),
            )
            .unwrap();
        plan.sink(sents, "out").unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(3));
        let err = Executor::new(ExecutionConfig::local(2)).run(&plan, inputs).unwrap_err();
        match err {
            ExecutionError::PlanRejected { diagnostics } => {
                assert_eq!(diagnostics[0].code, "WS001");
                assert!(diagnostics[0].message.contains("'sentences'"));
            }
            other => panic!("expected PlanRejected, got {other:?}"),
        }
    }

    #[test]
    fn simulated_time_decreases_with_dop_but_floors_at_startup() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let heavy = plan
            .add(
                src,
                Operator::map("dict-tagger", Package::Ie, |r| r).with_cost(CostModel {
                    startup_secs: 1200.0,
                    us_per_char: 1000.0,
                    ..CostModel::default()
                }),
            )
            .unwrap();
        plan.sink(heavy, "out").unwrap();
        let run_at = |dop: usize| {
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(64));
            Executor::new(ExecutionConfig::local(dop))
                .run(&plan, inputs)
                .unwrap()
                .metrics
                .simulated_secs
        };
        let t1 = run_at(1);
        let t8 = run_at(8);
        assert!(t8 < t1, "parallelism helps: {t1} vs {t8}");
        assert!(t8 >= 1200.0, "startup floors the runtime");
    }

    #[test]
    fn network_overload_and_chunking_mitigation() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let inflate = plan
            .add(
                src,
                Operator::map("annotate-everything", Package::Ie, |mut r| {
                    r.set("annotations", Value::from("x".repeat(2000)));
                    r
                }),
            )
            .unwrap();
        plan.sink(inflate, "out").unwrap();
        let mut cluster = ClusterSpec::paper_cluster();
        cluster.network_overload_bytes = 50_000; // tiny threshold for the test
        let config = ExecutionConfig {
            cluster: cluster.clone(),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(100));
        let err = Executor::new(config).run(&plan, inputs).unwrap_err();
        assert!(matches!(err, ExecutionError::NetworkOverload { .. }));

        // chunking into enough rounds gets it through
        let config = ExecutionConfig {
            cluster,
            chunk_rounds: Some(10),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(100));
        assert!(Executor::new(config).run(&plan, inputs).is_ok());
    }

    #[test]
    fn metrics_track_record_and_byte_flow() {
        let out = run(&simple_plan(), docs(20), 4);
        let upper = out.metrics.per_op.iter().find(|m| m.name == "upper").unwrap();
        assert_eq!(upper.records_in, 20);
        assert_eq!(upper.records_out, 20);
        assert!(upper.bytes_out >= upper.bytes_in);
        let even = out.metrics.per_op.iter().find(|m| m.name == "even").unwrap();
        assert_eq!(even.records_out, 10);
        assert!(out.metrics.wall_ms >= 0.0);
    }

    fn run_resilient(
        plan: &LogicalPlan,
        input: Vec<Record>,
        dop: usize,
        res: &FlowResilience,
    ) -> Result<ResilientRun, ExecutionError> {
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        Executor::new(ExecutionConfig::local(dop)).run_resilient(plan, inputs, res)
    }

    #[test]
    fn panicked_partitions_are_retried() {
        let res = FlowResilience {
            faults: Some(
                FaultPlan::new(11).with_rate(FaultKind::WorkerPanic, 0.5),
            ),
            partition_retries: 8,
            ..FlowResilience::default()
        };
        let run = run_resilient(&simple_plan(), docs(40), 4, &res).unwrap();
        let out = run.output.unwrap();
        assert_eq!(out.sinks["out"].len(), 20, "results survive worker panics");
        assert!(out.metrics.partition_retries > 0, "no retries recorded");

        // the same flow without faults produces identical sink contents
        let clean = run_resilient(&simple_plan(), docs(40), 4, &FlowResilience::default())
            .unwrap()
            .output
            .unwrap();
        assert_eq!(clean.sinks["out"], out.sinks["out"]);
    }

    #[test]
    fn exhausted_partition_retries_fail_typed() {
        let res = FlowResilience {
            faults: Some(
                FaultPlan::new(7).with_rate(FaultKind::WorkerPanic, 1.0),
            ),
            partition_retries: 2,
            ..FlowResilience::default()
        };
        let err = run_resilient(&simple_plan(), docs(10), 2, &res).unwrap_err();
        match err {
            ExecutionError::OperatorPanicked { operator, attempts, .. } => {
                assert_eq!(operator, "upper");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected OperatorPanicked, got {other:?}"),
        }
    }

    #[test]
    fn node_loss_reschedules_onto_survivors() {
        let res = FlowResilience {
            faults: Some(
                FaultPlan::new(5).with_rate(FaultKind::NodeLoss, 0.3),
            ),
            ..FlowResilience::default()
        };
        let faulty = run_resilient(&simple_plan(), docs(40), 8, &res).unwrap().output.unwrap();
        assert!(!faulty.metrics.nodes_lost.is_empty(), "no nodes lost at 50%");
        let clean = run_resilient(&simple_plan(), docs(40), 8, &FlowResilience::default())
            .unwrap()
            .output
            .unwrap();
        assert_eq!(clean.sinks["out"], faulty.sinks["out"], "results unchanged");
        assert!(
            faulty.metrics.simulated_secs > clean.metrics.simulated_secs,
            "losing nodes must cost simulated time"
        );
    }

    #[test]
    fn losing_every_node_reports_the_failed_node() {
        let res = FlowResilience {
            faults: Some(
                FaultPlan::new(3).with_rate(FaultKind::NodeLoss, 1.0),
            ),
            ..FlowResilience::default()
        };
        let err = run_resilient(&simple_plan(), docs(10), 4, &res).unwrap_err();
        assert!(
            matches!(
                err,
                ExecutionError::Scheduling(SchedulingError::NodeFailed { node: 3 })
            ),
            "expected NodeFailed with the last node id, got {err:?}"
        );
    }

    #[test]
    fn store_read_faults_retry_sources() {
        let res = FlowResilience {
            faults: Some(
                FaultPlan::new(21).with_rate(FaultKind::StoreRead, 0.7),
            ),
            partition_retries: 10,
            ..FlowResilience::default()
        };
        let run = run_resilient(&simple_plan(), docs(10), 2, &res).unwrap();
        let out = run.output.unwrap();
        assert_eq!(out.sinks["out"].len(), 5);
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_flow() {
        let plan = simple_plan();
        let res = FlowResilience::injected(0xFEED, 0.3, 1);

        let baseline = run_resilient(&plan, docs(50), 4, &res).unwrap();
        let base_out = baseline.output.expect("baseline must complete");

        // kill before plan node 2 (after source + first operator)
        let killed_res = FlowResilience {
            stop_after_nodes: Some(2),
            ..res.clone()
        };
        let killed = run_resilient(&plan, docs(50), 4, &killed_res).unwrap();
        assert!(killed.output.is_none(), "killed run must not complete");
        let ckpt = killed.checkpoints.last().expect("no checkpoint before kill");

        // resume from durable bytes and run to completion
        let restored =
            FlowCheckpoint::from_bytes(ckpt.next_node, ckpt.as_bytes().to_vec()).unwrap();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(50));
        let resumed = Executor::new(ExecutionConfig::local(4))
            .resume_from(&plan, &restored, inputs, &res)
            .unwrap();
        let resumed_out = resumed.output.expect("resumed run must complete");

        assert_eq!(base_out.sinks, resumed_out.sinks);
        assert_eq!(
            base_out.deterministic_digest(),
            resumed_out.deterministic_digest(),
            "resumed flow diverged from uninterrupted baseline"
        );
        assert_eq!(
            base_out.metrics.simulated_secs.to_bits(),
            resumed_out.metrics.simulated_secs.to_bits()
        );
    }

    #[test]
    fn observed_run_emits_node_spans_and_registry_views() {
        let obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(12));
        let out = Executor::new(ExecutionConfig::local(4))
            .run_observed(&simple_plan(), inputs, &FlowResilience::default(), &obs)
            .unwrap()
            .output
            .unwrap();

        // one span per executed plan node: source, two ops, sink
        let events = obs.tracer().events();
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["flow.source", "flow.op", "flow.op", "flow.sink"]);
        assert!(events.iter().all(|e| e.dur_secs.is_some()));

        // the public OpMetrics are views over the registry
        for m in &out.metrics.per_op {
            let snap = obs.registry().snapshot();
            let by_op: u64 = snap
                .by_name("flow.records_in")
                .filter(|(_, l, _)| l.get("op") == Some(&m.name))
                .map(|(_, _, v)| match v {
                    websift_observe::MetricValue::Counter(c) => *c,
                    _ => 0,
                })
                .sum();
            assert_eq!(by_op, m.records_in);
        }

        // flow totals mirror into gauges
        assert_eq!(
            obs.registry().gauge("flow.simulated_secs", &Labels::empty()).value(),
            out.metrics.simulated_secs
        );

        // startup/work decomposition lands in the profiler
        let folded = obs.profiler().folded();
        assert!(folded.contains("flow;op:upper;work"), "missing work scope: {folded}");
    }

    #[test]
    fn resume_restores_registry_state() {
        let plan = simple_plan();
        let res = FlowResilience {
            checkpoint_every_nodes: Some(1),
            stop_after_nodes: Some(2),
            ..FlowResilience::default()
        };
        let obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(20));
        let killed = Executor::new(ExecutionConfig::local(2))
            .run_observed(&plan, inputs, &res, &obs)
            .unwrap();
        let ckpt = killed.checkpoints.last().unwrap();

        let continue_res = FlowResilience {
            checkpoint_every_nodes: Some(1),
            ..FlowResilience::default()
        };
        let resumed_obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(20));
        Executor::new(ExecutionConfig::local(2))
            .resume_observed(&plan, ckpt, inputs, &continue_res, &resumed_obs)
            .unwrap()
            .output
            .unwrap();

        // a full observed run and the killed+resumed pair agree on every
        // counter and histogram (gauges included)
        let full_obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(20));
        Executor::new(ExecutionConfig::local(2))
            .run_observed(&plan, inputs, &continue_res, &full_obs)
            .unwrap();
        assert_eq!(resumed_obs.registry().snapshot(), full_obs.registry().snapshot());
    }

    /// Runs `plan` under `config` with faults from `res`, returning the
    /// output plus the full observable surface (tracer JSONL + registry).
    fn observed_run(
        plan: &LogicalPlan,
        input: Vec<Record>,
        config: ExecutionConfig,
        res: &FlowResilience,
    ) -> (FlowOutput, String, websift_observe::RegistrySnapshot) {
        let obs = Observer::new();
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        let out = Executor::new(config)
            .run_observed(plan, inputs, res, &obs)
            .unwrap()
            .output
            .unwrap();
        (out, obs.tracer().to_jsonl(), obs.registry().snapshot())
    }

    fn chain_heavy_plan() -> LogicalPlan {
        // map -> flatmap -> filter -> map: a fusable run with cardinality
        // growth and drops in the middle
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let a = plan
            .add(
                src,
                Operator::map("stamp", Package::Base, |mut r| {
                    let id = r.get("id").unwrap().as_int().unwrap();
                    r.set("stamp", id * 3);
                    r
                }),
            )
            .unwrap();
        let b = plan
            .add(
                a,
                Operator::flat_map("split", Package::Base, |r| {
                    let mut copy = r.clone();
                    copy.set("half", 1i64);
                    vec![r, copy]
                }),
            )
            .unwrap();
        let c = plan
            .add(
                b,
                Operator::filter("trim", Package::Base, |r| {
                    r.get("id").unwrap().as_int().unwrap() % 3 != 1
                }),
            )
            .unwrap();
        let d = plan
            .add(
                c,
                Operator::map("upper", Package::Base, |mut r| {
                    let t = r.text().unwrap().to_uppercase();
                    r.set("text", t);
                    r
                }),
            )
            .unwrap();
        plan.sink(d, "out").unwrap();
        plan
    }

    #[test]
    fn fused_execution_is_byte_identical_to_unfused() {
        let plan = chain_heavy_plan();
        let res = FlowResilience::injected(0xC0FFEE, 0.2, 2);
        let fused = ExecutionConfig::local(4);
        assert!(fused.fusion, "fusion is on by default");
        let unfused = ExecutionConfig { fusion: false, ..ExecutionConfig::local(4) };

        let (out_f, jsonl_f, reg_f) = observed_run(&plan, docs(53), fused, &res);
        let (out_u, jsonl_u, reg_u) = observed_run(&plan, docs(53), unfused, &res);

        assert_eq!(out_f.sinks, out_u.sinks);
        assert_eq!(jsonl_f, jsonl_u, "tracer JSONL must not see fusion");
        assert_eq!(reg_f, reg_u, "registry must not see fusion");
        assert_eq!(out_f.deterministic_digest(), out_u.deterministic_digest());
        assert_eq!(
            out_f.metrics.simulated_secs.to_bits(),
            out_u.metrics.simulated_secs.to_bits(),
            "simulated clock must be bit-identical"
        );
        let mut wf = Writer::new();
        out_f.metrics.encode(&mut wf);
        let mut wu = Writer::new();
        out_u.metrics.encode(&mut wu);
        assert_eq!(wf.into_bytes(), wu.into_bytes(), "metrics codec bytes must match");
    }

    #[test]
    fn worker_count_never_affects_deterministic_outputs() {
        let plan = chain_heavy_plan();
        let res = FlowResilience::injected(0xBEEF, 0.15, 3);
        let serial = ExecutionConfig { max_workers: 1, ..ExecutionConfig::local(8) };
        let wide = ExecutionConfig { max_workers: 32, ..ExecutionConfig::local(8) };

        let (out_s, jsonl_s, reg_s) = observed_run(&plan, docs(41), serial, &res);
        let (out_w, jsonl_w, reg_w) = observed_run(&plan, docs(41), wide, &res);

        assert_eq!(out_s.sinks, out_w.sinks);
        assert_eq!(jsonl_s, jsonl_w, "tracer JSONL must not see worker count");
        assert_eq!(reg_s, reg_w, "registry must not see worker count");
        assert_eq!(out_s.deterministic_digest(), out_w.deterministic_digest());
        assert_eq!(
            out_s.metrics.simulated_secs.to_bits(),
            out_w.metrics.simulated_secs.to_bits()
        );
    }

    #[test]
    fn fused_checkpoints_match_unfused_checkpoints() {
        let plan = chain_heavy_plan();
        let res = FlowResilience {
            checkpoint_every_nodes: Some(2),
            ..FlowResilience::default()
        };
        let run_with = |fusion: bool| {
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(20));
            Executor::new(ExecutionConfig { fusion, ..ExecutionConfig::local(4) })
                .run_resilient(&plan, inputs, &res)
                .unwrap()
        };
        let fused = run_with(true);
        let unfused = run_with(false);
        assert!(!fused.checkpoints.is_empty(), "checkpoint cadence must survive fusion");
        assert_eq!(fused.checkpoints.len(), unfused.checkpoints.len());
        for (a, b) in fused.checkpoints.iter().zip(&unfused.checkpoints) {
            assert_eq!(a.next_node, b.next_node);
            assert_eq!(a.as_bytes(), b.as_bytes(), "checkpoint frames must be byte-identical");
        }
    }

    #[test]
    fn wall_ms_is_excluded_from_snapshot_codecs() {
        let metrics = FlowMetrics {
            wall_ms: 123.456,
            simulated_secs: 9.0,
            per_op: vec![OpMetrics {
                name: "op".into(),
                records_in: 1,
                records_out: 1,
                bytes_in: 10,
                bytes_out: 10,
                wall_ms: 77.7,
                simulated_secs: 2.0,
            }],
            ..FlowMetrics::default()
        };
        let mut w = Writer::new();
        metrics.encode(&mut w);
        let bytes = w.into_bytes();

        let mut with_other_wall = metrics.clone();
        with_other_wall.wall_ms = 999.0;
        with_other_wall.per_op[0].wall_ms = 0.001;
        let mut w = Writer::new();
        with_other_wall.encode(&mut w);
        assert_eq!(bytes, w.into_bytes(), "wall time must not reach checkpoint bytes");

        let decoded = FlowMetrics::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(decoded.wall_ms, 0.0);
        assert_eq!(decoded.per_op[0].wall_ms, 0.0);
        assert_eq!(decoded.simulated_secs, 9.0);
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_on_resume() {
        let plan = simple_plan();
        let res = FlowResilience {
            checkpoint_every_nodes: Some(1),
            stop_after_nodes: Some(2),
            ..FlowResilience::default()
        };
        let killed = run_resilient(&plan, docs(10), 2, &res).unwrap();
        let ckpt = killed.checkpoints.last().unwrap();
        let mut bytes = ckpt.as_bytes().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        assert!(FlowCheckpoint::from_bytes(ckpt.next_node, bytes).is_err());
    }
}
