//! The parallel executor: runs a logical plan for real on local threads
//! while accounting simulated cluster time.
//!
//! Execution is node-at-a-time over the (topologically ordered) plan DAG;
//! each operator is data-parallel across `DoP` partitions. Two clocks are
//! kept:
//!
//! - **wall time** — real elapsed time of this process (what Criterion
//!   benches measure);
//! - **simulated time** — paper-scale time from the operators' cost models
//!   plus the cluster's network model: per-worker startup (the 20-minute
//!   dictionary load that floors the entity flow's runtime in Fig. 5),
//!   per-partition work `max_p Σ cost(record)`, and shuffle/store traffic.
//!
//! The simulated clock is what reproduces the shapes of Figs. 4 and 5
//! without the authors' 28-node cluster.

use crate::cluster::{admit, ClusterSpec, SchedulingError};
use crate::logical::{LogicalPlan, NodeOp};
use crate::operator::{Kind, OpFunc, Operator};
use crate::record::Record;
use serde::Serialize;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct ExecutionConfig {
    /// Degree of parallelism (number of partitions / simulated workers).
    pub dop: usize,
    /// The simulated cluster.
    pub cluster: ClusterSpec,
    /// Run admission control before executing (the paper's scheduler did
    /// not — setting this to false reproduces its behaviour and risks the
    /// same failures).
    pub admission: bool,
    /// Multiplier applied to observed byte volumes before the network
    /// model (lets small local datasets exercise paper-scale traffic).
    pub byte_scale: f64,
    /// If set, intermediate data is shipped in this many rounds ("we
    /// splitted the crawled data into chunks ... and executed the
    /// different flows separately on these chunks") — each round must fit
    /// under the overload threshold.
    pub chunk_rounds: Option<usize>,
    /// Multiplier on per-record simulated work (startup excluded): lets a
    /// small local corpus stand in for the paper's 20 GB scalability
    /// sample. Does not affect real computation or results.
    pub work_scale: f64,
}

impl ExecutionConfig {
    /// Local config: given DoP, a permissive local cluster.
    pub fn local(dop: usize) -> ExecutionConfig {
        ExecutionConfig {
            dop,
            cluster: ClusterSpec::local(4, 64, 16),
            admission: false,
            byte_scale: 1.0,
            chunk_rounds: None,
            work_scale: 1.0,
        }
    }
}

/// Per-operator metrics.
#[derive(Debug, Clone, Serialize)]
pub struct OpMetrics {
    pub name: String,
    pub records_in: u64,
    pub records_out: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
    pub wall_ms: f64,
    pub simulated_secs: f64,
}

/// Flow-level metrics.
#[derive(Debug, Clone, Default, Serialize)]
pub struct FlowMetrics {
    pub wall_ms: f64,
    /// Critical-path simulated seconds (operators + network).
    pub simulated_secs: f64,
    /// Bytes crossing the network: shuffles plus replicated sink writes.
    pub network_bytes: u64,
    /// Peak intermediate data volume (largest single edge).
    pub peak_intermediate_bytes: u64,
    pub per_op: Vec<OpMetrics>,
}

/// Execution failures.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecutionError {
    Scheduling(SchedulingError),
    /// The network model declared timeout-induced failure.
    NetworkOverload {
        intermediate_bytes: u64,
        capacity_bytes: u64,
    },
    MissingSource(String),
}

impl std::fmt::Display for ExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionError::Scheduling(e) => write!(f, "scheduling failed: {e}"),
            ExecutionError::NetworkOverload {
                intermediate_bytes,
                capacity_bytes,
            } => write!(
                f,
                "network overload: {intermediate_bytes} bytes in flight exceeds {capacity_bytes}"
            ),
            ExecutionError::MissingSource(s) => write!(f, "no input bound for source '{s}'"),
        }
    }
}

impl std::error::Error for ExecutionError {}

/// The result of a successful run.
#[derive(Debug)]
pub struct FlowOutput {
    pub sinks: HashMap<String, Vec<Record>>,
    pub metrics: FlowMetrics,
}

/// The executor.
pub struct Executor {
    config: ExecutionConfig,
}

/// Replication factor of sink writes (paper: HDFS with replication 3).
const SINK_REPLICATION: u64 = 3;

impl Executor {
    pub fn new(config: ExecutionConfig) -> Executor {
        assert!(config.dop > 0, "DoP must be positive");
        Executor { config }
    }

    pub fn config(&self) -> &ExecutionConfig {
        &self.config
    }

    /// Runs `plan` against named source datasets.
    pub fn run(
        &self,
        plan: &LogicalPlan,
        mut inputs: HashMap<String, Vec<Record>>,
    ) -> Result<FlowOutput, ExecutionError> {
        plan.validate().map_err(|e| {
            ExecutionError::Scheduling(SchedulingError::LibraryConflict {
                library: format!("invalid plan: {e}"),
                versions: vec![],
            })
        })?;
        if self.config.admission {
            admit(plan, self.config.dop, &self.config.cluster)
                .map_err(ExecutionError::Scheduling)?;
        }

        let started = Instant::now();
        let mut outputs: Vec<Option<Vec<Record>>> = vec![None; plan.len()];
        let mut consumers_left: Vec<usize> =
            (0..plan.len()).map(|id| plan.children(id).len()).collect();
        let mut sinks: HashMap<String, Vec<Record>> = HashMap::new();
        let mut metrics = FlowMetrics::default();
        let mut startup_charged: std::collections::HashSet<String> = Default::default();

        for node in plan.nodes() {
            // Unreachable nodes (orphaned by the optimizer) with no
            // consumers and no sink role are skipped.
            let is_sink = matches!(node.op, NodeOp::Sink(_));
            if !is_sink && consumers_left[node.id] == 0 {
                continue;
            }
            let input: Vec<Record> = match node.input {
                None => Vec::new(),
                Some(parent) => {
                    let take = {
                        consumers_left[parent] -= 1;
                        consumers_left[parent] == 0
                    };
                    let parent_out = outputs[parent]
                        .as_ref()
                        .expect("parent executed before child");
                    if take {
                        outputs[parent].take().unwrap()
                    } else {
                        parent_out.clone()
                    }
                }
            };

            match &node.op {
                NodeOp::Source(name) => {
                    let data = inputs
                        .remove(name)
                        .ok_or_else(|| ExecutionError::MissingSource(name.clone()))?;
                    outputs[node.id] = Some(data);
                }
                NodeOp::Sink(name) => {
                    let bytes: u64 = input.iter().map(Record::approx_bytes).sum();
                    let scaled = (bytes as f64 * self.config.byte_scale) as u64;
                    metrics.network_bytes += scaled * SINK_REPLICATION;
                    metrics.simulated_secs +=
                        self.config.cluster.network_secs(scaled * SINK_REPLICATION);
                    sinks.entry(name.clone()).or_default().extend(input);
                    outputs[node.id] = Some(Vec::new());
                }
                NodeOp::Op(op) => {
                    let op_metrics = self.run_operator(op, &input, &mut outputs[node.id])?;
                    // startup is charged once per distinct operator name
                    // (workers start it in parallel; it floors the clock),
                    // plus the cost of shipping the operator's resident
                    // data (dictionaries, models) to every worker over the
                    // shared switch — the term that makes heavy flows
                    // scale sub-linearly in DoP (Figs. 4/5)
                    if startup_charged.insert(op.name.clone()) {
                        metrics.simulated_secs += op.cost.startup_secs;
                        metrics.simulated_secs += self.config.cluster.network_secs(
                            op.cost.memory_bytes.saturating_mul(self.config.dop as u64),
                        );
                    }
                    metrics.simulated_secs += op_metrics.simulated_secs;
                    // shuffle accounting for reduce
                    if op.kind == Kind::Reduce {
                        let scaled = (op_metrics.bytes_in as f64 * self.config.byte_scale) as u64;
                        metrics.network_bytes += scaled;
                        metrics.peak_intermediate_bytes =
                            metrics.peak_intermediate_bytes.max(scaled);
                        metrics.simulated_secs += self.config.cluster.network_secs(scaled);
                    }
                    let scaled_out = (op_metrics.bytes_out as f64 * self.config.byte_scale) as u64;
                    metrics.peak_intermediate_bytes =
                        metrics.peak_intermediate_bytes.max(scaled_out);
                    metrics.per_op.push(op_metrics);
                }
            }
        }

        // Network overload check on the peak edge volume.
        let per_round = match self.config.chunk_rounds {
            Some(rounds) if rounds > 0 => metrics.peak_intermediate_bytes / rounds as u64,
            _ => metrics.peak_intermediate_bytes,
        };
        if self.config.cluster.overloaded_by(per_round) {
            return Err(ExecutionError::NetworkOverload {
                intermediate_bytes: per_round,
                capacity_bytes: self.config.cluster.network_overload_bytes,
            });
        }
        // chunked execution pays a per-round latency overhead
        if let Some(rounds) = self.config.chunk_rounds {
            metrics.simulated_secs += rounds as f64 * 2.0;
        }

        metrics.wall_ms = started.elapsed().as_secs_f64() * 1000.0;
        Ok(FlowOutput { sinks, metrics })
    }

    /// Runs one operator data-parallel over `dop` partitions.
    fn run_operator(
        &self,
        op: &Operator,
        input: &[Record],
        out_slot: &mut Option<Vec<Record>>,
    ) -> Result<OpMetrics, ExecutionError> {
        let started = Instant::now();
        let dop = self.config.dop;
        let bytes_in: u64 = input.iter().map(Record::approx_bytes).sum();

        let (result, max_partition_secs) = match op.func() {
            OpFunc::Reduce { key, aggregate } => {
                // group sequentially (hash shuffle), aggregate groups in parallel
                let mut groups: HashMap<String, Vec<Record>> = HashMap::new();
                for r in input {
                    groups.entry(key(r)).or_default().push(r.clone());
                }
                let mut grouped: Vec<(String, Vec<Record>)> = groups.into_iter().collect();
                grouped.sort_by(|a, b| a.0.cmp(&b.0));
                let mut out = Vec::new();
                let mut work_secs = 0.0f64;
                for (k, rs) in grouped {
                    for r in &rs {
                        work_secs += self.config.work_scale
                            * op.cost.record_cost_secs(r.text().map(str::len).unwrap_or(64));
                    }
                    out.extend(aggregate(&k, rs));
                }
                (out, work_secs / dop as f64)
            }
            _ => {
                // partition into dop contiguous chunks, process in parallel
                let chunk_size = input.len().div_ceil(dop).max(1);
                let chunks: Vec<&[Record]> = input.chunks(chunk_size).collect();
                let worker_count = dop.min(chunks.len()).min(32).max(1);
                let next = AtomicUsize::new(0);
                let results: Vec<parking_lot::Mutex<(Vec<Record>, f64)>> = (0..chunks.len())
                    .map(|_| parking_lot::Mutex::new((Vec::new(), 0.0)))
                    .collect();

                crossbeam::thread::scope(|scope| {
                    for _ in 0..worker_count {
                        scope.spawn(|_| loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= chunks.len() {
                                break;
                            }
                            let mut out = Vec::with_capacity(chunks[i].len());
                            let mut secs = 0.0f64;
                            for r in chunks[i] {
                                secs += self.config.work_scale
                                    * op.cost.record_cost_secs(r.text().map(str::len).unwrap_or(64));
                                match op.func() {
                                    OpFunc::Map(f) => out.push(f(r.clone())),
                                    OpFunc::FlatMap(f) => out.extend(f(r.clone())),
                                    OpFunc::Filter(f) => {
                                        if f(r) {
                                            out.push(r.clone());
                                        }
                                    }
                                    OpFunc::Reduce { .. } => unreachable!(),
                                }
                            }
                            *results[i].lock() = (out, secs);
                        });
                    }
                })
                .expect("operator workers panicked");

                let mut out = Vec::with_capacity(input.len());
                let mut max_secs = 0.0f64;
                for m in results {
                    let (chunk_out, secs) = m.into_inner();
                    out.extend(chunk_out);
                    max_secs = max_secs.max(secs);
                }
                (out, max_secs)
            }
        };

        let bytes_out: u64 = result.iter().map(Record::approx_bytes).sum();
        let metrics = OpMetrics {
            name: op.name.clone(),
            records_in: input.len() as u64,
            records_out: result.len() as u64,
            bytes_in,
            bytes_out,
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
            simulated_secs: max_partition_secs,
        };
        *out_slot = Some(result);
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{CostModel, Operator, Package};
    use crate::record::Value;

    fn docs(n: usize) -> Vec<Record> {
        (0..n)
            .map(|i| {
                let mut r = Record::new();
                r.set("id", i).set("text", format!("document number {i} with some text"));
                r
            })
            .collect()
    }

    fn simple_plan() -> LogicalPlan {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let upper = plan.add(
            src,
            Operator::map("upper", Package::Base, |mut r| {
                let t = r.text().unwrap().to_uppercase();
                r.set("text", t);
                r
            }),
        );
        let keep_even = plan.add(
            upper,
            Operator::filter("even", Package::Base, |r| {
                r.get("id").unwrap().as_int().unwrap() % 2 == 0
            }),
        );
        plan.sink(keep_even, "out");
        plan
    }

    fn run(plan: &LogicalPlan, input: Vec<Record>, dop: usize) -> FlowOutput {
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), input);
        Executor::new(ExecutionConfig::local(dop)).run(plan, inputs).unwrap()
    }

    #[test]
    fn executes_linear_plan() {
        let out = run(&simple_plan(), docs(10), 4);
        let records = &out.sinks["out"];
        assert_eq!(records.len(), 5);
        assert!(records[0].text().unwrap().contains("DOCUMENT"));
    }

    #[test]
    fn results_identical_across_dops() {
        let a = run(&simple_plan(), docs(37), 1);
        let b = run(&simple_plan(), docs(37), 8);
        assert_eq!(a.sinks["out"], b.sinks["out"]);
    }

    #[test]
    fn branching_plan_feeds_both_sinks() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let pre = plan.add(src, Operator::map("pre", Package::Base, |r| r));
        let odd = plan.add(
            pre,
            Operator::filter("odd", Package::Base, |r| {
                r.get("id").unwrap().as_int().unwrap() % 2 == 1
            }),
        );
        let even = plan.add(
            pre,
            Operator::filter("even", Package::Base, |r| {
                r.get("id").unwrap().as_int().unwrap() % 2 == 0
            }),
        );
        plan.sink(odd, "odd");
        plan.sink(even, "even");
        let out = run(&plan, docs(10), 4);
        assert_eq!(out.sinks["odd"].len(), 5);
        assert_eq!(out.sinks["even"].len(), 5);
    }

    #[test]
    fn reduce_counts_groups() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let red = plan.add(
            src,
            Operator::reduce(
                "count",
                Package::Base,
                |r| (r.get("id").unwrap().as_int().unwrap() % 3).to_string(),
                |k, rs| {
                    let mut r = Record::new();
                    r.set("key", k).set("n", rs.len());
                    vec![r]
                },
            ),
        );
        plan.sink(red, "out");
        let out = run(&plan, docs(9), 4);
        assert_eq!(out.sinks["out"].len(), 3);
        for r in &out.sinks["out"] {
            assert_eq!(r.get("n").unwrap().as_int(), Some(3));
        }
        assert!(out.metrics.network_bytes > 0, "reduce shuffles bytes");
    }

    #[test]
    fn missing_source_errors() {
        let plan = simple_plan();
        let err = Executor::new(ExecutionConfig::local(2))
            .run(&plan, HashMap::new())
            .unwrap_err();
        assert_eq!(err, ExecutionError::MissingSource("in".to_string()));
    }

    #[test]
    fn admission_failure_propagates() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let fat = plan.add(
            src,
            Operator::map("fat", Package::Ie, |r| r).with_cost(CostModel {
                memory_bytes: 100 << 30,
                ..CostModel::default()
            }),
        );
        plan.sink(fat, "out");
        let config = ExecutionConfig {
            admission: true,
            cluster: ClusterSpec::paper_cluster(),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(1));
        let err = Executor::new(config).run(&plan, inputs).unwrap_err();
        assert!(matches!(
            err,
            ExecutionError::Scheduling(SchedulingError::InsufficientMemory { .. })
        ));
    }

    #[test]
    fn simulated_time_decreases_with_dop_but_floors_at_startup() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let heavy = plan.add(
            src,
            Operator::map("dict-tagger", Package::Ie, |r| r).with_cost(CostModel {
                startup_secs: 1200.0,
                us_per_char: 1000.0,
                ..CostModel::default()
            }),
        );
        plan.sink(heavy, "out");
        let run_at = |dop: usize| {
            let mut inputs = HashMap::new();
            inputs.insert("in".to_string(), docs(64));
            Executor::new(ExecutionConfig::local(dop))
                .run(&plan, inputs)
                .unwrap()
                .metrics
                .simulated_secs
        };
        let t1 = run_at(1);
        let t8 = run_at(8);
        assert!(t8 < t1, "parallelism helps: {t1} vs {t8}");
        assert!(t8 >= 1200.0, "startup floors the runtime");
    }

    #[test]
    fn network_overload_and_chunking_mitigation() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("in");
        let inflate = plan.add(
            src,
            Operator::map("annotate-everything", Package::Ie, |mut r| {
                r.set("annotations", Value::Str("x".repeat(2000)));
                r
            }),
        );
        plan.sink(inflate, "out");
        let mut cluster = ClusterSpec::paper_cluster();
        cluster.network_overload_bytes = 50_000; // tiny threshold for the test
        let config = ExecutionConfig {
            cluster: cluster.clone(),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(100));
        let err = Executor::new(config).run(&plan, inputs).unwrap_err();
        assert!(matches!(err, ExecutionError::NetworkOverload { .. }));

        // chunking into enough rounds gets it through
        let config = ExecutionConfig {
            cluster,
            chunk_rounds: Some(10),
            ..ExecutionConfig::local(4)
        };
        let mut inputs = HashMap::new();
        inputs.insert("in".to_string(), docs(100));
        assert!(Executor::new(config).run(&plan, inputs).is_ok());
    }

    #[test]
    fn metrics_track_record_and_byte_flow() {
        let out = run(&simple_plan(), docs(20), 4);
        let upper = out.metrics.per_op.iter().find(|m| m.name == "upper").unwrap();
        assert_eq!(upper.records_in, 20);
        assert_eq!(upper.records_out, 20);
        assert!(upper.bytes_out >= upper.bytes_in);
        let even = out.metrics.per_op.iter().find(|m| m.name == "even").unwrap();
        assert_eq!(even.records_out, 10);
        assert!(out.metrics.wall_ms >= 0.0);
    }
}
