//! Concurrent-query admission control.
//!
//! The paper's scheduler decides whether a *flow* fits the cluster; the
//! serving layer asks the same question about queries. Each in-flight
//! query is modeled as one worker of a one-operator flow whose cost
//! model carries the per-query memory footprint, and the current
//! concurrency level is the flow's DoP — so
//! [`websift_flow::cluster::admit`] answers "can one more query run?"
//! with exactly the core-budget and memory-envelope arithmetic the flow
//! engine uses. Queries beyond the budget get the scheduler's typed
//! [`SchedulingError`]s (which is why `admit` had to stop panicking on
//! degenerate inputs — a concurrency counter reaching a weird state must
//! surface as an error, not abort the server).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use websift_flow::cluster::{admit, ClusterSpec, SchedulingError};
use websift_flow::{CostModel, LogicalPlan, Operator, Package};

/// Admission state shared by all clients of one serving process.
#[derive(Debug)]
pub struct AdmissionController {
    cluster: ClusterSpec,
    /// The one-operator "query flow" admitted at DoP = concurrency.
    query_plan: LogicalPlan,
    active: Arc<AtomicUsize>,
}

/// RAII admission slot: holding one means the query it was issued for is
/// counted against the cluster budget; dropping it releases the slot.
#[derive(Debug)]
pub struct QueryPermit {
    active: Arc<AtomicUsize>,
}

impl Drop for QueryPermit {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

impl AdmissionController {
    /// A controller for `cluster`, charging `query_memory_bytes` per
    /// in-flight query. Fails up front (rather than on the first query)
    /// if even a single query cannot be admitted — e.g. a zero memory
    /// footprint, which `admit` rejects as a missing cost model.
    pub fn new(
        cluster: ClusterSpec,
        query_memory_bytes: u64,
    ) -> Result<AdmissionController, SchedulingError> {
        let mut plan = LogicalPlan::new();
        let src = plan.source("queries");
        let op = Operator::map("query", Package::Base, |r| r).with_cost(CostModel {
            memory_bytes: query_memory_bytes,
            ..CostModel::default()
        });
        let node = plan.add(src, op).expect("source id is valid");
        plan.sink(node, "responses").expect("fresh plan has no sink");
        admit(&plan, 1, &cluster)?;
        Ok(AdmissionController {
            cluster,
            query_plan: plan,
            active: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Queries currently holding permits.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The most queries this controller will ever run at once (the
    /// scheduler's core budget caps DoP).
    pub fn capacity(&self) -> usize {
        let cores = self.cluster.total_cores();
        (1..=cores)
            .take_while(|&dop| admit(&self.query_plan, dop, &self.cluster).is_ok())
            .count()
    }

    /// Tries to admit one more query: bumps the concurrency level and
    /// asks the scheduler whether the query flow still fits at that DoP.
    /// On rejection the level is restored and the scheduler's typed
    /// error returned.
    pub fn try_admit(&self) -> Result<QueryPermit, SchedulingError> {
        let dop = self.active.fetch_add(1, Ordering::SeqCst) + 1;
        match admit(&self.query_plan, dop, &self.cluster) {
            Ok(_) => Ok(QueryPermit { active: Arc::clone(&self.active) }),
            Err(e) => {
                self.active.fetch_sub(1, Ordering::SeqCst);
                Err(e)
            }
        }
    }

    /// Admits, waiting (by yielding) for a slot when the cluster is at
    /// capacity. Rejections here are always transient — capacity errors
    /// clear when another permit drops — because construction already
    /// proved a lone query admissible.
    pub fn admit_blocking(&self) -> QueryPermit {
        loop {
            match self.try_admit() {
                Ok(permit) => return permit,
                Err(_) => std::thread::yield_now(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(nodes: usize, ram_gb: u64, cores: usize, query_mb: u64) -> AdmissionController {
        AdmissionController::new(ClusterSpec::local(nodes, ram_gb, cores), query_mb << 20)
            .unwrap()
    }

    #[test]
    fn permits_are_bounded_by_core_budget() {
        let ctl = controller(1, 64, 4, 10);
        assert_eq!(ctl.capacity(), 4);
        let permits: Vec<QueryPermit> =
            (0..4).map(|_| ctl.try_admit().unwrap()).collect();
        assert_eq!(ctl.active(), 4);
        let err = ctl.try_admit().unwrap_err();
        assert!(matches!(err, SchedulingError::DopExceedsCores { dop: 5, cores: 4 }));
        drop(permits);
        assert_eq!(ctl.active(), 0);
        let _again = ctl.try_admit().unwrap();
    }

    #[test]
    fn memory_envelope_limits_before_cores() {
        // 1 GB node, 300 MB per query: 3 fit in memory, though 8 cores
        let ctl = controller(1, 1, 8, 300);
        assert_eq!(ctl.capacity(), 3);
        let _permits: Vec<QueryPermit> =
            (0..3).map(|_| ctl.try_admit().unwrap()).collect();
        assert!(matches!(
            ctl.try_admit().unwrap_err(),
            SchedulingError::InsufficientMemory { .. }
        ));
    }

    #[test]
    fn zero_footprint_fails_at_construction() {
        let err = AdmissionController::new(ClusterSpec::local(1, 8, 4), 0).unwrap_err();
        assert!(matches!(err, SchedulingError::ZeroMemoryPlan { operators: 1 }));
    }

    #[test]
    fn permits_release_on_panic_paths_too() {
        let ctl = std::sync::Arc::new(controller(1, 64, 2, 10));
        let inner = std::sync::Arc::clone(&ctl);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
            let _permit = inner.try_admit().unwrap();
            panic!("query died");
        }));
        assert!(result.is_err());
        // the permit dropped during unwind
        assert_eq!(ctl.active(), 0);
    }
}
