//! Byte-deterministic store snapshots, in the sealed-frame style of the
//! flow checkpoints (`WSFK`) and crawl frontier checkpoints.
//!
//! The payload encodes the store's *logical* content — posting lists in
//! global key order — plus its configuration (name, shard count, round,
//! ingest counters). Two stores with equal content and configuration
//! snapshot to identical bytes regardless of ingest interleaving, and a
//! store restored from a snapshot continues ingesting exactly where the
//! original would have: kill-and-resume mid-ingest is byte-identical to
//! an uninterrupted run.

use websift_resilience::{
    codec, CodecError, Reader, Snapshot, Writer,
};

use crate::store::{ExtractionStore, Method, Posting, PostingKey};

/// Frame tag for store snapshots.
pub const STORE_SNAPSHOT_TAG: [u8; 4] = *b"WSST";
/// Current frame version.
pub const STORE_SNAPSHOT_VERSION: u16 = 1;

impl Snapshot for Method {
    fn encode(&self, w: &mut Writer) {
        w.u8(match self {
            Method::Dict => 0,
            Method::Ml => 1,
            Method::Unknown => 2,
        });
    }

    fn decode(r: &mut Reader<'_>) -> Result<Method, CodecError> {
        match r.u8()? {
            0 => Ok(Method::Dict),
            1 => Ok(Method::Ml),
            2 => Ok(Method::Unknown),
            tag => Err(CodecError::BadTag { what: "Method", tag }),
        }
    }
}

impl Snapshot for PostingKey {
    fn encode(&self, w: &mut Writer) {
        w.str(&self.entity);
        w.str(&self.etype);
        w.str(&self.corpus);
        w.u32(self.round);
    }

    fn decode(r: &mut Reader<'_>) -> Result<PostingKey, CodecError> {
        Ok(PostingKey {
            entity: r.str()?,
            etype: r.str()?,
            corpus: r.str()?,
            round: r.u32()?,
        })
    }
}

impl Snapshot for Posting {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.page);
        w.u64(self.start);
        w.u64(self.end);
        self.method.encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Posting, CodecError> {
        Ok(Posting {
            page: r.u64()?,
            start: r.u64()?,
            end: r.u64()?,
            method: Snapshot::decode(r)?,
        })
    }
}

/// Encodes the store's logical content and configuration. Posting lists
/// go out in global key order ([`ExtractionStore::iter`]), so the bytes
/// are independent of ingest interleaving across shards.
fn encode_store(store: &ExtractionStore, w: &mut Writer) {
    w.str(store.name());
    w.usize(store.shard_count());
    w.u32(store.round());
    w.u64(store.ingested_records());
    w.u64(store.ignored_records());
    w.usize(store.key_count());
    for (key, postings) in store.iter() {
        key.encode(w);
        postings.encode(w);
    }
}

fn decode_store(r: &mut Reader<'_>) -> Result<ExtractionStore, CodecError> {
    let name = r.str()?;
    let shards = r.usize()?;
    if shards == 0 {
        return Err(CodecError::BadTag { what: "shard count", tag: 0 });
    }
    let round = r.u32()?;
    let ingested = r.u64()?;
    let ignored = r.u64()?;
    let keys = r.usize()?;
    let mut store = ExtractionStore::new(&name, shards);
    for _ in 0..keys {
        let key = PostingKey::decode(r)?;
        let postings = Vec::<Posting>::decode(r)?;
        for posting in postings {
            store.insert(key.clone(), posting);
        }
    }
    store.restore_counters(round, ingested, ignored);
    Ok(store)
}

/// Digest of the store's logical content — what
/// [`ExtractionStore::content_digest`] returns. Deliberately excludes
/// configuration (name, shard count, counters): two stores holding the
/// same posting lists digest equally even when sharded differently,
/// which is the invariant that lets the bench compare shard counts.
pub(crate) fn content_digest(store: &ExtractionStore) -> u64 {
    let mut w = Writer::new();
    w.usize(store.key_count());
    for (key, postings) in store.iter() {
        key.encode(&mut w);
        postings.encode(&mut w);
    }
    codec::digest(&w.into_bytes())
}

/// A verified, sealed store snapshot frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreSnapshot {
    frame: Vec<u8>,
}

impl StoreSnapshot {
    /// Captures `store` into a sealed frame.
    pub fn capture(store: &ExtractionStore) -> StoreSnapshot {
        let mut w = Writer::new();
        encode_store(store, &mut w);
        StoreSnapshot {
            frame: codec::seal(STORE_SNAPSHOT_TAG, STORE_SNAPSHOT_VERSION, &w.into_bytes()),
        }
    }

    /// Wraps bytes read back from storage, verifying tag, version, and
    /// checksum before accepting them.
    pub fn from_bytes(bytes: &[u8]) -> Result<StoreSnapshot, CodecError> {
        codec::open(STORE_SNAPSHOT_TAG, STORE_SNAPSHOT_VERSION, bytes)?;
        Ok(StoreSnapshot { frame: bytes.to_vec() })
    }

    /// The sealed frame bytes (what gets persisted).
    pub fn as_bytes(&self) -> &[u8] {
        &self.frame
    }

    /// Rebuilds the store. The payload was verified on construction, so
    /// failures here mean a logical decode error, not corruption.
    pub fn restore(&self) -> Result<ExtractionStore, CodecError> {
        let payload = codec::open(STORE_SNAPSHOT_TAG, STORE_SNAPSHOT_VERSION, &self.frame)?;
        let mut r = Reader::new(payload);
        let store = decode_store(&mut r)?;
        if !r.is_empty() {
            return Err(CodecError::Truncated { what: "trailing bytes after store" });
        }
        Ok(store)
    }

    /// Digest of the full frame; equal digests mean byte-equal
    /// snapshots.
    pub fn digest(&self) -> u64 {
        codec::digest(&self.frame)
    }

    pub fn size_bytes(&self) -> usize {
        self.frame.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store(shards: usize) -> ExtractionStore {
        let mut store = ExtractionStore::new("serve", shards);
        for i in 0..50u64 {
            let key = PostingKey {
                entity: format!("entity{}", i % 7),
                etype: "drug".into(),
                corpus: if i % 2 == 0 { "pubmed" } else { "web" }.into(),
                round: (i % 3) as u32,
            };
            let posting = Posting {
                page: i,
                start: i * 10,
                end: i * 10 + 5,
                method: if i % 2 == 0 { Method::Dict } else { Method::Ml },
            };
            store.insert(key, posting);
        }
        store
    }

    #[test]
    fn snapshot_roundtrips_bit_exactly() {
        let store = sample_store(4);
        let snap = StoreSnapshot::capture(&store);
        let restored = snap.restore().unwrap();
        assert_eq!(restored, store);
        // and the restored store re-snapshots to the same bytes
        assert_eq!(StoreSnapshot::capture(&restored), snap);
    }

    #[test]
    fn frame_verifies_on_the_way_in() {
        let snap = StoreSnapshot::capture(&sample_store(2));
        let bytes = snap.as_bytes().to_vec();
        assert_eq!(StoreSnapshot::from_bytes(&bytes).unwrap(), snap);

        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x40;
        assert!(matches!(
            StoreSnapshot::from_bytes(&corrupted),
            Err(CodecError::BadChecksum { .. })
        ));
        assert!(matches!(
            StoreSnapshot::from_bytes(&bytes[..10]),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn content_digest_ignores_shard_count() {
        assert_eq!(sample_store(1).content_digest(), sample_store(16).content_digest());
        // but the full snapshot records the configured shard count
        assert_ne!(
            StoreSnapshot::capture(&sample_store(1)),
            StoreSnapshot::capture(&sample_store(16))
        );
    }
}
