//! Query execution against the extraction store.
//!
//! The engine is read-only over a shared store reference, so any number
//! of queries may execute concurrently. Responses are pure functions of
//! `(store content, query)` — shard-count and concurrency invariant —
//! which is what the serve bench's byte-identity checks lean on.
//!
//! The stats path deliberately reuses the flow engine's combinable
//! [`Aggregate`] machinery: each shard folds a partial [`AggState`] over
//! its slice of the entity's postings and the partials are merged at the
//! end, exactly the partial-aggregation shape the executor uses across
//! Reduce boundaries. Because those merges are exact, the result cannot
//! depend on how postings are split across shards.
//!
//! Every query reports through `websift-observe`: a per-kind counter,
//! scanned-posting and row counters, a simulated-cost histogram, and a
//! tracer span. Counters and histograms are order-independent, so they
//! stay deterministic under concurrent load; span *order* in the trace
//! ring buffer is interleaving-dependent and is only asserted on in
//! serial tests.

use std::collections::BTreeMap;

use websift_flow::{AggState, Aggregate, Record, Value};
use websift_observe::{json::ObjectWriter, Labels, Observer};
use websift_resilience::checkpoint::encode_to_vec;
use websift_resilience::codec;

use crate::query::Query;
use crate::store::{ExtractionStore, Posting, PostingKey};

/// Simulated seconds charged per scanned posting (index walk).
const COST_PER_POSTING_SECS: f64 = 1e-6;
/// Simulated fixed overhead per query (parse, admission, response).
const COST_PER_QUERY_SECS: f64 = 5e-5;

/// One query's result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResponse {
    /// Result rows, deterministically ordered.
    pub rows: Vec<Record>,
    /// Postings touched while answering — the cost driver.
    pub postings_scanned: u64,
    /// Simulated execution cost (the serving analogue of the flow
    /// engine's simulated clock; never wall time).
    pub simulated_cost_secs: f64,
}

impl QueryResponse {
    /// Canonical byte encoding of the rows (the wire response).
    pub fn bytes(&self) -> Vec<u8> {
        encode_to_vec(&self.rows)
    }

    /// Digest of [`QueryResponse::bytes`] — equal digests mean
    /// byte-identical responses.
    pub fn digest(&self) -> u64 {
        codec::digest(&self.bytes())
    }

    /// Compact JSON rendering for logs and the bench report.
    pub fn to_json(&self) -> String {
        ObjectWriter::new()
            .u64("rows", self.rows.len() as u64)
            .u64("postings_scanned", self.postings_scanned)
            .f64("simulated_cost_secs", self.simulated_cost_secs)
            .u64("digest", self.digest())
            .finish()
    }
}

/// Executes queries against one store, observing through one observer.
pub struct QueryEngine<'a> {
    store: &'a ExtractionStore,
    obs: &'a Observer,
}

impl<'a> QueryEngine<'a> {
    pub fn new(store: &'a ExtractionStore, obs: &'a Observer) -> QueryEngine<'a> {
        QueryEngine { store, obs }
    }

    /// Statically checks `query` against what the store has actually
    /// ingested (known corpora, current crawl round) — WS016
    /// diagnostics; an empty vector means the query can plausibly
    /// return rows. Purely advisory: `execute` never refuses a query.
    pub fn check(&self, query: &Query) -> Vec<websift_analyze::Diagnostic> {
        crate::check::check_query(query, &crate::check::StoreSchema::of(self.store))
    }

    /// Runs `query`. `t_secs` is the caller's logical timestamp for the
    /// tracer span (the bench uses the query's sequence number, keeping
    /// traces wall-clock free).
    pub fn execute(&self, query: &Query, t_secs: f64) -> QueryResponse {
        let (rows, postings_scanned) = match query {
            Query::Lookup { entity, corpus, round, since } => {
                self.lookup(entity, corpus.as_deref(), *round, *since)
            }
            Query::Cooccur { left, right, corpus } => {
                self.cooccur(left, right, corpus.as_deref())
            }
            Query::Stats { entity, corpus, round, since, top } => {
                self.stats(entity, corpus.as_deref(), *round, *since, *top)
            }
        };
        let simulated_cost_secs =
            COST_PER_QUERY_SECS + COST_PER_POSTING_SECS * postings_scanned as f64;
        let labels = Labels::new(&[("kind", query.kind())]);
        self.obs.registry().counter("serve.queries", &labels).inc();
        self.obs
            .registry()
            .counter("serve.rows", &labels)
            .add(rows.len() as u64);
        self.obs
            .registry()
            .counter("serve.postings_scanned", &labels)
            .add(postings_scanned);
        self.obs
            .registry()
            .histogram("serve.query_cost_secs", &labels)
            .record(simulated_cost_secs);
        self.obs
            .tracer()
            .span("serve.query", t_secs, simulated_cost_secs, labels);
        QueryResponse { rows, postings_scanned, simulated_cost_secs }
    }

    /// Posting lists for `entity`, filtered, one row per posting.
    fn lookup(
        &self,
        entity: &str,
        corpus: Option<&str>,
        round: Option<u32>,
        since: Option<u32>,
    ) -> (Vec<Record>, u64) {
        let mut rows = Vec::new();
        let mut scanned = 0u64;
        for (key, postings) in self.store.lookup_entity(entity) {
            scanned += postings.len() as u64;
            if !key_matches(key, corpus, round, since) {
                continue;
            }
            for posting in postings {
                rows.push(posting_row(key, posting));
            }
        }
        (rows, scanned)
    }

    /// Pages mentioning both entities (within `corpus` if given): one
    /// row per page with each side's mention count on that page.
    fn cooccur(&self, left: &str, right: &str, corpus: Option<&str>) -> (Vec<Record>, u64) {
        let mut scanned = 0u64;
        let mut pages =
            |entity: &str| -> BTreeMap<u64, i64> {
                let mut counts = BTreeMap::new();
                for (key, postings) in self.store.lookup_entity(entity) {
                    scanned += postings.len() as u64;
                    if !key_matches(key, corpus, None, None) {
                        continue;
                    }
                    for posting in postings {
                        *counts.entry(posting.page).or_insert(0) += 1;
                    }
                }
                counts
            };
        let left_pages = pages(left);
        let right_pages = pages(right);
        let rows = left_pages
            .iter()
            .filter_map(|(page, left_mentions)| {
                right_pages.get(page).map(|right_mentions| {
                    let mut row = Record::new();
                    row.set("page", *page as i64)
                        .set("left", left)
                        .set("right", right)
                        .set("left_mentions", *left_mentions)
                        .set("right_mentions", *right_mentions);
                    row
                })
            })
            .collect();
        (rows, scanned)
    }

    /// Per-corpus aggregates over the entity's postings, via partial
    /// aggregation: fold one [`AggState`] per (corpus, aggregate) per
    /// shard, then merge partials exactly as the flow engine's combiner
    /// does.
    fn stats(
        &self,
        entity: &str,
        corpus: Option<&str>,
        round: Option<u32>,
        since: Option<u32>,
        top: usize,
    ) -> (Vec<Record>, u64) {
        let aggregates: Vec<Aggregate> = vec![
            Aggregate::Count { into: "mentions".into() },
            Aggregate::Min { field: "start".into(), into: "first_start".into() },
            Aggregate::Max { field: "end".into(), into: "last_end".into() },
            Aggregate::TopK { field: "page".into(), k: top, into: "top_pages".into() },
        ];
        let mut scanned = 0u64;
        // per-corpus partial states, one slot per aggregate
        let mut partials: BTreeMap<String, Vec<AggState>> = BTreeMap::new();
        for shard in self.store.shards() {
            // this shard's partials, merged into the global map below —
            // the executor's combine-at-the-boundary shape
            let mut local: BTreeMap<String, Vec<AggState>> = BTreeMap::new();
            for (key, postings) in shard.postings.iter() {
                if key.entity != entity || !key_matches(key, corpus, round, since) {
                    continue;
                }
                scanned += postings.len() as u64;
                let states = local.entry(key.corpus.clone()).or_insert_with(|| {
                    aggregates.iter().map(Aggregate::seed).collect()
                });
                for posting in postings {
                    let row = posting_row(key, posting);
                    for (agg, state) in aggregates.iter().zip(states.iter_mut()) {
                        agg.fold(state, &row);
                    }
                }
            }
            for (corpus_key, states) in local {
                match partials.entry(corpus_key) {
                    std::collections::btree_map::Entry::Vacant(slot) => {
                        slot.insert(states);
                    }
                    std::collections::btree_map::Entry::Occupied(mut slot) => {
                        for (agg, (left, right)) in aggregates
                            .iter()
                            .zip(slot.get_mut().iter_mut().zip(states))
                        {
                            agg.merge(left, right);
                        }
                    }
                }
            }
        }
        let rows = partials
            .into_iter()
            .map(|(corpus_key, states)| {
                let mut row = Record::new();
                row.set("entity", entity).set("corpus", corpus_key.as_str());
                for (agg, state) in aggregates.iter().zip(states) {
                    for finished in agg.finish(&corpus_key, state) {
                        copy_aggregate_field(agg, &finished, &mut row);
                    }
                }
                row
            })
            .collect();
        (rows, scanned)
    }
}

/// Does `key` survive the optional corpus/round/freshness filters?
/// `round` pins an exact crawl round; `since` keeps rounds `>= s`.
fn key_matches(
    key: &PostingKey,
    corpus: Option<&str>,
    round: Option<u32>,
    since: Option<u32>,
) -> bool {
    corpus.is_none_or(|c| key.corpus == c)
        && round.is_none_or(|r| key.round == r)
        && since.is_none_or(|s| key.round >= s)
}

/// One posting as a result row (also the record shape stats folds over).
fn posting_row(key: &PostingKey, posting: &Posting) -> Record {
    let mut row = Record::new();
    row.set("entity", key.entity.as_str())
        .set("type", key.etype.as_str())
        .set("corpus", key.corpus.as_str())
        .set("round", key.round as i64)
        .set("page", posting.page as i64)
        .set("start", posting.start as i64)
        .set("end", posting.end as i64)
        .set("method", posting.method.as_str());
    row
}

/// Copies an aggregate's output field from its `finish` record into the
/// combined stats row.
fn copy_aggregate_field(agg: &Aggregate, finished: &Record, row: &mut Record) {
    let into = match agg {
        Aggregate::Count { into }
        | Aggregate::Sum { into, .. }
        | Aggregate::Min { into, .. }
        | Aggregate::Max { into, .. }
        | Aggregate::Concat { into, .. }
        | Aggregate::TopK { into, .. } => into.as_str(),
        // Custom closures (combinable or not) have no declared output
        // field to copy.
        Aggregate::Custom(_) | Aggregate::CustomCombinable(_) => return,
    };
    let value = finished.get(into).cloned().unwrap_or(Value::Null);
    row.set(into, value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::store::Method;

    fn store_with(shards: usize) -> ExtractionStore {
        let mut store = ExtractionStore::new("serve", shards);
        for i in 0..30u64 {
            let entity = if i % 3 == 0 { "aspirin" } else { "warfarin" };
            let key = PostingKey {
                entity: entity.into(),
                etype: "drug".into(),
                corpus: if i % 2 == 0 { "pubmed" } else { "web" }.into(),
                round: 0,
            };
            store.insert(
                key,
                Posting { page: i / 2, start: i * 7, end: i * 7 + 5, method: Method::Dict },
            );
        }
        store
    }

    fn run(store: &ExtractionStore, q: &str) -> QueryResponse {
        let obs = Observer::new();
        QueryEngine::new(store, &obs).execute(&parse_query(q).unwrap(), 0.0)
    }

    #[test]
    fn lookup_returns_provenance_rows() {
        let store = store_with(4);
        let resp = run(&store, "lookup aspirin in pubmed");
        assert!(!resp.rows.is_empty());
        for row in &resp.rows {
            assert_eq!(row.get("corpus").unwrap().as_str(), Some("pubmed"));
            assert!(row.get("page").is_some());
            assert!(row.get("start").is_some());
            assert!(row.get("end").is_some());
        }
        // filters narrow: unfiltered lookup sees more rows
        assert!(run(&store, "lookup aspirin").rows.len() > resp.rows.len());
    }

    #[test]
    fn cooccur_intersects_pages() {
        let store = store_with(4);
        let resp = run(&store, "cooccur aspirin warfarin");
        assert!(!resp.rows.is_empty());
        for row in &resp.rows {
            assert!(row.get("left_mentions").unwrap().as_int().unwrap() >= 1);
            assert!(row.get("right_mentions").unwrap().as_int().unwrap() >= 1);
        }
        // pages ascend (BTreeMap order)
        let pages: Vec<i64> =
            resp.rows.iter().map(|r| r.get("page").unwrap().as_int().unwrap()).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        assert_eq!(pages, sorted);
    }

    #[test]
    fn stats_aggregates_per_corpus() {
        let store = store_with(4);
        let resp = run(&store, "stats warfarin top 2");
        assert_eq!(resp.rows.len(), 2); // pubmed + web
        for row in &resp.rows {
            assert!(row.get("mentions").unwrap().as_int().unwrap() > 0);
            assert!(row.get("first_start").is_some());
            assert!(row.get("last_end").is_some());
            assert!(row.get("top_pages").unwrap().as_array().unwrap().len() <= 2);
        }
    }

    #[test]
    fn since_keeps_only_fresh_rounds() {
        let mut store = ExtractionStore::new("serve", 4);
        for round in 1..=3u32 {
            let key = PostingKey {
                entity: "aspirin".into(),
                etype: "drug".into(),
                corpus: "web".into(),
                round,
            };
            store.insert(
                key,
                Posting { page: round as u64, start: 0, end: 5, method: Method::Dict },
            );
        }
        assert_eq!(run(&store, "lookup aspirin").rows.len(), 3);
        assert_eq!(run(&store, "lookup aspirin since 2").rows.len(), 2);
        assert_eq!(run(&store, "lookup aspirin since 4").rows.len(), 0);
        // round pins exactly; since is a lower bound — they compose
        assert_eq!(run(&store, "lookup aspirin round 2 since 2").rows.len(), 1);
        let stats = run(&store, "stats aspirin since 3");
        assert_eq!(stats.rows.len(), 1);
        assert_eq!(stats.rows[0].get("mentions").unwrap().as_int(), Some(1));
    }

    #[test]
    fn responses_are_shard_count_invariant() {
        let one = store_with(1);
        let many = store_with(16);
        for q in [
            "lookup aspirin",
            "lookup warfarin in web",
            "cooccur aspirin warfarin in pubmed",
            "stats aspirin top 3",
            "stats warfarin in web round 0",
            "lookup missing",
        ] {
            let a = run(&one, q);
            let b = run(&many, q);
            assert_eq!(a.rows, b.rows, "{q}");
            assert_eq!(a.digest(), b.digest(), "{q}");
        }
    }

    #[test]
    fn observer_sees_every_query_path() {
        let store = store_with(2);
        let obs = Observer::new();
        let engine = QueryEngine::new(&store, &obs);
        engine.execute(&parse_query("lookup aspirin").unwrap(), 0.0);
        engine.execute(&parse_query("stats aspirin").unwrap(), 1.0);
        engine.execute(&parse_query("cooccur aspirin warfarin").unwrap(), 2.0);

        let snap = obs.registry().snapshot();
        for kind in ["lookup", "stats", "cooccur"] {
            let labels = Labels::new(&[("kind", kind)]);
            assert!(snap.get("serve.queries", &labels).is_some(), "{kind}");
            assert!(snap.get("serve.query_cost_secs", &labels).is_some(), "{kind}");
        }
        assert_eq!(obs.tracer().len(), 3);
    }
}
