//! The websift serving layer.
//!
//! Everything upstream of this crate ends at a sink: the flow engine
//! extracts entities at paper scale and then drops them on the floor.
//! This crate is where extraction output goes to be *served* — the
//! ROADMAP's "heavy traffic from millions of users" half of the paper's
//! motivation:
//!
//! - [`store`] — a persistent extraction store holding posting lists
//!   keyed by `(entity, type, corpus, crawl round)` with per-posting
//!   source provenance (page id + byte span), sharded by entity key
//!   range. It implements [`websift_flow::StoreSink`], so a pipeline
//!   writes into it directly via `Executor::run_into` and a
//!   `store:<name>/entities` plan sink.
//! - [`snapshot`] — byte-deterministic store snapshots in the same
//!   sealed-frame style as the flow checkpoints: a store killed
//!   mid-ingest and resumed from a snapshot is byte-identical to an
//!   uninterrupted one.
//! - [`query`] — a tiny query language (`lookup` / `cooccur` / `stats`)
//!   parsed with typed errors; query strings are untrusted input.
//! - [`check`] — static query checking (WS016): the field-flow analysis
//!   from `websift-analyze` infers the record schema a plan delivers to
//!   each `store:` sink, and parsed queries are checked against it (or
//!   against a live store's ingested corpora/round) before execution.
//! - [`engine`] — executes parsed queries against the store, reusing the
//!   flow engine's combinable [`websift_flow::Aggregate`] machinery for
//!   the stats path and reporting every query through `websift-observe`.
//! - [`admission`] — concurrent-query admission control built on the
//!   cluster scheduler's [`websift_flow::cluster::admit`] arithmetic: a
//!   query is a one-operator flow with a memory footprint, and the
//!   controller admits as many in parallel as the cluster would.
//!
//! Determinism contract: store content, snapshots, and query responses
//! are pure functions of the ingested record sequence and the query —
//! independent of shard count and of how many queries run concurrently.

pub mod admission;
pub mod check;
pub mod engine;
pub mod query;
pub mod snapshot;
pub mod store;

pub use admission::{AdmissionController, QueryPermit};
pub use check::{check_query, StoreSchema};
pub use engine::{QueryEngine, QueryResponse};
pub use query::{parse_query, Query, QueryError};
pub use snapshot::{StoreSnapshot, STORE_SNAPSHOT_TAG, STORE_SNAPSHOT_VERSION};
pub use store::{shard_for, ExtractionStore, Method, Posting, PostingKey, ENTITY_DATASET};
