//! Static query checking against an inferred store schema.
//!
//! The store's ingest path ([`ExtractionStore::ingest_record`]) silently
//! ignores records that lack a page `id` or an `entities` annotation
//! array — the right behaviour for heterogeneous extraction output, but
//! it means a mis-wired flow produces an *empty* store and queries that
//! return nothing, with no error anywhere. This module closes that gap
//! statically: [`StoreSchema::from_plan`] runs the field-flow analysis
//! (`websift_flow::field_flow`) over the producing plan and captures the
//! inferred record schema at every `store:` sink edge, and
//! [`check_query`] compares a parsed [`Query`] against it, reporting
//! WS016 diagnostics in the same format as the plan analyzer:
//!
//! | condition | severity |
//! |---|---|
//! | nothing feeds the `entities` dataset | error |
//! | `entities` annotation never written / wrong type | error |
//! | `entities` or `id` only conditionally present | warning |
//! | `corpus` never written but query filters by corpus | warning |
//! | `round`/`since` beyond the store's ingested round | warning |
//! | corpus filter names a corpus with no postings | warning |
//!
//! [`StoreSchema::of`] derives the same structure from a live store
//! (known corpora, current round), so the engine can check queries
//! against what was actually ingested rather than what a plan promises.

use std::collections::{BTreeMap, BTreeSet};

use websift_analyze::lattice::{FieldFact, FieldSchema, FieldType, Presence};
use websift_analyze::{sort_diagnostics, Diagnostic};
use websift_flow::{
    field_flow, parse_store_sink, AnalyzeOptions, LogicalPlan, NodeOp,
};

use crate::query::Query;
use crate::store::{ExtractionStore, ENTITY_DATASET};

/// What a store expects (per-dataset record schema) and what it holds
/// (ingested round, known corpora).
#[derive(Debug, Clone, Default)]
pub struct StoreSchema {
    datasets: BTreeMap<String, FieldSchema>,
    round: u32,
    /// Corpora with at least one posting. Empty means "unknown" (a
    /// plan-derived schema cannot enumerate corpora), which disables
    /// the corpus-membership check.
    corpora: BTreeSet<String>,
}

impl StoreSchema {
    /// Infers the schema a plan delivers to `store`: one entry per
    /// `store:<store>/<dataset>` sink, holding the field-flow record
    /// schema at the sink's input edge. Sink names are unique within a
    /// plan, so each dataset has exactly one feeding edge.
    pub fn from_plan(plan: &LogicalPlan, opts: &AnalyzeOptions, store: &str) -> StoreSchema {
        let flow = field_flow(plan, opts);
        let mut datasets: BTreeMap<String, FieldSchema> = BTreeMap::new();
        for node in plan.nodes() {
            let NodeOp::Sink(name) = &node.op else { continue };
            let Some((sink_store, dataset)) = parse_store_sink(name) else { continue };
            if sink_store != store {
                continue;
            }
            let schema = flow
                .input(plan, node.id)
                .map(|edge| edge.schema.clone())
                .unwrap_or_default();
            datasets.insert(dataset.to_string(), schema);
        }
        StoreSchema { datasets, round: 0, corpora: BTreeSet::new() }
    }

    /// The schema of a live store: the ingest contract (`id`, `corpus`,
    /// `entities` all definite — ignored records never made it in) plus
    /// the corpora and crawl round actually ingested.
    pub fn of(store: &ExtractionStore) -> StoreSchema {
        let mut fields = FieldSchema::new();
        fields.insert("id".to_string(), FieldFact::definite(FieldType::Int, None));
        fields.insert("corpus".to_string(), FieldFact::definite(FieldType::Str, None));
        fields.insert("entities".to_string(), FieldFact::definite(FieldType::Array, None));
        let mut datasets = BTreeMap::new();
        datasets.insert(ENTITY_DATASET.to_string(), fields);
        let corpora = store
            .iter()
            .filter(|(key, _)| !key.corpus.is_empty())
            .map(|(key, _)| key.corpus.clone())
            .collect();
        StoreSchema { datasets, round: store.round(), corpora }
    }

    /// The inferred record schema for one dataset, if anything feeds it.
    pub fn dataset(&self, name: &str) -> Option<&FieldSchema> {
        self.datasets.get(name)
    }
}

/// Checks the ingest contract of the `entities` dataset — shared by
/// every verb, since all three scan the posting index.
fn check_ingest_contract(fields: &FieldSchema, out: &mut Vec<Diagnostic>) {
    match fields.get("entities") {
        None => out.push(Diagnostic::error(
            "WS016",
            "the flow feeding 'entities' never writes the 'entities' annotation array; \
             ingest ignores every record and queries return nothing",
        )),
        Some(fact) => {
            if fact.presence == Presence::Absent {
                out.push(Diagnostic::error(
                    "WS016",
                    "the flow feeding 'entities' never writes the 'entities' annotation array; \
                     ingest ignores every record and queries return nothing",
                ));
            } else if fact.presence == Presence::Possible {
                out.push(Diagnostic::warning(
                    "WS016",
                    "the flow feeding 'entities' only conditionally writes the 'entities' \
                     annotation; records without it are silently ignored at ingest",
                ));
            }
            if fact.ty != FieldType::Array && fact.ty != FieldType::Unknown {
                out.push(Diagnostic::error(
                    "WS016",
                    format!(
                        "the 'entities' annotation is written as {} but ingest expects an \
                         array of mention objects; every record will be ignored",
                        fact.ty.as_str()
                    ),
                ));
            }
        }
    }
    match fields.get("id") {
        None => out.push(Diagnostic::error(
            "WS016",
            "the flow feeding 'entities' drops the page 'id' field; ingest needs it for \
             posting provenance and ignores records without one",
        )),
        Some(fact) if fact.presence == Presence::Possible => out.push(Diagnostic::warning(
            "WS016",
            "the page 'id' field is only conditionally present; records without it are \
             silently ignored at ingest",
        )),
        Some(_) => {}
    }
}

/// Statically checks one parsed query against a store schema. Returns
/// WS016 diagnostics (sorted errors-first like the plan analyzer); an
/// empty vector means the query can plausibly return rows.
pub fn check_query(query: &Query, schema: &StoreSchema) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(fields) = schema.dataset(ENTITY_DATASET) else {
        out.push(Diagnostic::error(
            "WS016",
            format!(
                "nothing feeds the '{ENTITY_DATASET}' dataset of this store; every query \
                 scans an empty posting index — add a store sink for '{ENTITY_DATASET}' \
                 or target the store the flow actually writes"
            ),
        ));
        return out;
    };
    check_ingest_contract(fields, &mut out);

    let (corpus, round, since) = match query {
        Query::Lookup { corpus, round, since, .. } => (corpus, *round, *since),
        Query::Cooccur { corpus, .. } => (corpus, None, None),
        Query::Stats { corpus, round, since, .. } => (corpus, *round, *since),
    };
    if let Some(corpus) = corpus {
        let corpus_written = fields
            .get("corpus")
            .is_some_and(|fact| fact.presence != Presence::Absent);
        if !corpus_written {
            out.push(Diagnostic::warning(
                "WS016",
                format!(
                    "the query filters by corpus '{corpus}' but the flow never sets a \
                     'corpus' field; all postings land in the unnamed corpus and the \
                     filter matches nothing"
                ),
            ));
        } else if !schema.corpora.is_empty() && !schema.corpora.contains(corpus) {
            out.push(Diagnostic::warning(
                "WS016",
                format!("corpus '{corpus}' has no postings in this store"),
            ));
        }
    }
    for (clause, bound) in [("round", round), ("since", since)] {
        if let Some(n) = bound {
            if n > schema.round {
                out.push(Diagnostic::warning(
                    "WS016",
                    format!(
                        "the query's '{clause} {n}' clause is ahead of the store's \
                         ingested round {}; it cannot match until the crawl catches up",
                        schema.round
                    ),
                ));
            }
        }
    }
    sort_diagnostics(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::parse_query;
    use crate::store::Posting;
    use crate::store::{Method, PostingKey};
    use websift_flow::{Operator, Package};

    /// docs → extract (writes `entities` as an array) → store sink.
    fn producing_plan(maybe: bool) -> LogicalPlan {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let mut extract = Operator::map("ie.extract", Package::Ie, |r| r).with_reads(&["text"]);
        extract = if maybe {
            extract.with_maybe_writes(&["entities"])
        } else {
            extract
                .with_writes(&["entities"])
                .with_write_types(&[("entities", FieldType::Array)])
        };
        let node = plan.add(src, extract).unwrap();
        plan.store_sink(node, "serve", ENTITY_DATASET).unwrap();
        plan
    }

    #[test]
    fn well_typed_plan_passes_every_verb() {
        let schema =
            StoreSchema::from_plan(&producing_plan(false), &AnalyzeOptions::default(), "serve");
        for q in ["lookup aspirin", "cooccur aspirin warfarin", "stats tp53 top 2"] {
            let diags = check_query(&parse_query(q).unwrap(), &schema);
            assert!(diags.is_empty(), "{q}: {diags:?}");
        }
    }

    #[test]
    fn missing_dataset_is_an_error() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        plan.sink(src, "out").unwrap(); // plain sink, not a store sink
        let schema = StoreSchema::from_plan(&plan, &AnalyzeOptions::default(), "serve");
        let diags = check_query(&parse_query("lookup aspirin").unwrap(), &schema);
        assert_eq!(diags.len(), 1);
        assert!(websift_analyze::has_errors(&diags));
        assert!(diags[0].message.contains("nothing feeds"));
    }

    #[test]
    fn conditional_entities_warns_and_dropped_id_errors() {
        let schema =
            StoreSchema::from_plan(&producing_plan(true), &AnalyzeOptions::default(), "serve");
        let diags = check_query(&parse_query("lookup aspirin").unwrap(), &schema);
        let codes: Vec<_> = diags.iter().map(|d| d.severity).collect();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("conditionally"), "{codes:?}");

        // a custom reduce demotes the inherited source fields: `id` is
        // no longer definite downstream, so ingest provenance breaks
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let reduce = plan
            .add(src, Operator::reduce("collapse", Package::Base, |_| String::new(), |_, rs| rs))
            .unwrap();
        let tagged = plan
            .add(
                reduce,
                Operator::map("ie.extract", Package::Ie, |r| r)
                    .with_writes(&["entities"])
                    .with_write_types(&[("entities", FieldType::Array)]),
            )
            .unwrap();
        plan.store_sink(tagged, "serve", ENTITY_DATASET).unwrap();
        let schema = StoreSchema::from_plan(&plan, &AnalyzeOptions::default(), "serve");
        let diags = check_query(&parse_query("lookup aspirin").unwrap(), &schema);
        assert!(
            diags.iter().any(|d| d.message.contains("'id' field")),
            "{diags:?}"
        );
    }

    #[test]
    fn wrong_entities_type_is_an_error() {
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let node = plan
            .add(
                src,
                Operator::map("ie.extract", Package::Ie, |r| r)
                    .with_writes(&["entities"])
                    .with_write_types(&[("entities", FieldType::Str)]),
            )
            .unwrap();
        plan.store_sink(node, "serve", ENTITY_DATASET).unwrap();
        let schema = StoreSchema::from_plan(&plan, &AnalyzeOptions::default(), "serve");
        let diags = check_query(&parse_query("lookup aspirin").unwrap(), &schema);
        assert!(websift_analyze::has_errors(&diags));
        assert!(diags[0].message.contains("expects an"), "{diags:?}");
    }

    #[test]
    fn live_store_schema_checks_corpora_and_rounds() {
        let mut store = ExtractionStore::new("serve", 4);
        store.set_round(2);
        store.insert(
            PostingKey {
                entity: "aspirin".into(),
                etype: "drug".into(),
                corpus: "pubmed".into(),
                round: 1,
            },
            Posting { page: 7, start: 0, end: 7, method: Method::Dict },
        );
        let schema = StoreSchema::of(&store);

        let clean = check_query(&parse_query("lookup aspirin in pubmed round 1").unwrap(), &schema);
        assert!(clean.is_empty(), "{clean:?}");

        let wrong_corpus = check_query(&parse_query("lookup aspirin in web").unwrap(), &schema);
        assert_eq!(wrong_corpus.len(), 1);
        assert!(wrong_corpus[0].message.contains("no postings"));

        let future = check_query(&parse_query("stats aspirin since 9").unwrap(), &schema);
        assert_eq!(future.len(), 1);
        assert!(future[0].message.contains("ahead of the store's ingested round 2"));
    }

    #[test]
    fn schema_is_scoped_to_the_named_store() {
        // a second store's sink must not leak into this store's schema
        let mut plan = LogicalPlan::new();
        let src = plan.source("docs");
        let tagged = plan
            .add(
                src,
                Operator::map("ie.extract", Package::Ie, |r| r)
                    .with_writes(&["entities"])
                    .with_write_types(&[("entities", FieldType::Array)]),
            )
            .unwrap();
        plan.store_sink(tagged, "serve", ENTITY_DATASET).unwrap();
        let plain = plan.add(src, Operator::map("noop", Package::Base, |r| r)).unwrap();
        plan.store_sink(plain, "other", ENTITY_DATASET).unwrap();
        let schema = StoreSchema::from_plan(&plan, &AnalyzeOptions::default(), "serve");
        let fields = schema.dataset(ENTITY_DATASET).unwrap();
        assert_eq!(fields.get("entities").unwrap().presence, Presence::Definite);
        let other = StoreSchema::from_plan(&plan, &AnalyzeOptions::default(), "other");
        assert!(!other.dataset(ENTITY_DATASET).unwrap().contains_key("entities"));
    }
}
