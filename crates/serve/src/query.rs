//! The serving layer's query language.
//!
//! Three verbs, whitespace-tokenized, case-sensitive keywords:
//!
//! ```text
//! lookup <entity> [in <corpus>] [round <n>] [since <n>]
//! cooccur <entity> <entity> [in <corpus>]
//! stats <entity> [in <corpus>] [round <n>] [top <k>] [since <n>]
//! ```
//!
//! `round` pins an exact crawl round; `since` keeps postings from round
//! `n` onward — the freshness filter for live sessions.
//!
//! Query strings arrive from clients, so they are untrusted input: the
//! parser returns typed [`QueryError`]s and never panics (enforced by
//! the `untrusted_unwrap` repo lint, which covers this file).

use std::fmt;

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Every posting for an entity, optionally narrowed to a corpus
    /// and/or crawl round.
    Lookup {
        entity: String,
        corpus: Option<String>,
        round: Option<u32>,
        /// Only postings from this crawl round onward.
        since: Option<u32>,
    },
    /// Pages where both entities occur, optionally within one corpus.
    Cooccur {
        left: String,
        right: String,
        corpus: Option<String>,
    },
    /// Per-corpus aggregate statistics for an entity (mention count,
    /// span extremes, top pages).
    Stats {
        entity: String,
        corpus: Option<String>,
        round: Option<u32>,
        /// Only postings from this crawl round onward.
        since: Option<u32>,
        /// How many top pages to report (default 3).
        top: usize,
    },
}

impl Query {
    /// The verb, as a metric label.
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Lookup { .. } => "lookup",
            Query::Cooccur { .. } => "cooccur",
            Query::Stats { .. } => "stats",
        }
    }
}

/// Typed parse failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Empty (or all-whitespace) query string.
    Empty,
    /// First token is not a known verb.
    UnknownVerb { verb: String },
    /// A verb or clause needed an argument that was not there.
    MissingArgument { what: &'static str },
    /// A numeric clause argument did not parse.
    BadNumber { clause: &'static str, got: String },
    /// A token where a clause keyword was expected.
    UnexpectedToken { token: String },
    /// The same clause appeared twice.
    DuplicateClause { clause: &'static str },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Empty => write!(f, "empty query"),
            QueryError::UnknownVerb { verb } => {
                write!(f, "unknown verb '{verb}' (expected lookup, cooccur, or stats)")
            }
            QueryError::MissingArgument { what } => write!(f, "missing {what}"),
            QueryError::BadNumber { clause, got } => {
                write!(f, "'{clause}' needs a non-negative integer, got '{got}'")
            }
            QueryError::UnexpectedToken { token } => {
                write!(f, "unexpected token '{token}' (expected a clause keyword)")
            }
            QueryError::DuplicateClause { clause } => {
                write!(f, "clause '{clause}' given twice")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Optional trailing clauses shared by the verbs.
#[derive(Default)]
struct Clauses {
    corpus: Option<String>,
    round: Option<u32>,
    since: Option<u32>,
    top: Option<usize>,
}

/// Parses `[in <corpus>] [round <n>] [top <k>] [since <n>]` clauses from the
/// remaining tokens. `allow` lists the clause keywords this verb
/// accepts; anything else is an [`QueryError::UnexpectedToken`].
fn parse_clauses<'a>(
    mut tokens: impl Iterator<Item = &'a str>,
    allow: &[&str],
) -> Result<Clauses, QueryError> {
    let mut out = Clauses::default();
    while let Some(token) = tokens.next() {
        if !allow.contains(&token) {
            return Err(QueryError::UnexpectedToken { token: token.to_string() });
        }
        match token {
            "in" => {
                if out.corpus.is_some() {
                    return Err(QueryError::DuplicateClause { clause: "in" });
                }
                let corpus = tokens
                    .next()
                    .ok_or(QueryError::MissingArgument { what: "corpus after 'in'" })?;
                out.corpus = Some(corpus.to_string());
            }
            "round" => {
                if out.round.is_some() {
                    return Err(QueryError::DuplicateClause { clause: "round" });
                }
                let n = tokens
                    .next()
                    .ok_or(QueryError::MissingArgument { what: "number after 'round'" })?;
                out.round = Some(n.parse().map_err(|_| QueryError::BadNumber {
                    clause: "round",
                    got: n.to_string(),
                })?);
            }
            "since" => {
                if out.since.is_some() {
                    return Err(QueryError::DuplicateClause { clause: "since" });
                }
                let n = tokens
                    .next()
                    .ok_or(QueryError::MissingArgument { what: "number after 'since'" })?;
                out.since = Some(n.parse().map_err(|_| QueryError::BadNumber {
                    clause: "since",
                    got: n.to_string(),
                })?);
            }
            "top" => {
                if out.top.is_some() {
                    return Err(QueryError::DuplicateClause { clause: "top" });
                }
                let k = tokens
                    .next()
                    .ok_or(QueryError::MissingArgument { what: "number after 'top'" })?;
                out.top = Some(k.parse().map_err(|_| QueryError::BadNumber {
                    clause: "top",
                    got: k.to_string(),
                })?);
            }
            _ => return Err(QueryError::UnexpectedToken { token: token.to_string() }),
        }
    }
    Ok(out)
}

/// Entities are matched case-insensitively; the store keys are
/// lowercased at ingest, so queries lowercase too.
fn entity_token(token: &str) -> String {
    token.to_lowercase()
}

/// Parses one query string.
pub fn parse_query(input: &str) -> Result<Query, QueryError> {
    let mut tokens = input.split_whitespace();
    let verb = tokens.next().ok_or(QueryError::Empty)?;
    match verb {
        "lookup" => {
            let entity = tokens
                .next()
                .ok_or(QueryError::MissingArgument { what: "entity after 'lookup'" })?;
            let clauses = parse_clauses(tokens, &["in", "round", "since"])?;
            Ok(Query::Lookup {
                entity: entity_token(entity),
                corpus: clauses.corpus,
                round: clauses.round,
                since: clauses.since,
            })
        }
        "cooccur" => {
            let left = tokens
                .next()
                .ok_or(QueryError::MissingArgument { what: "first entity after 'cooccur'" })?;
            let right = tokens
                .next()
                .ok_or(QueryError::MissingArgument { what: "second entity after 'cooccur'" })?;
            let clauses = parse_clauses(tokens, &["in"])?;
            Ok(Query::Cooccur {
                left: entity_token(left),
                right: entity_token(right),
                corpus: clauses.corpus,
            })
        }
        "stats" => {
            let entity = tokens
                .next()
                .ok_or(QueryError::MissingArgument { what: "entity after 'stats'" })?;
            let clauses = parse_clauses(tokens, &["in", "round", "top", "since"])?;
            Ok(Query::Stats {
                entity: entity_token(entity),
                corpus: clauses.corpus,
                round: clauses.round,
                since: clauses.since,
                top: clauses.top.unwrap_or(3),
            })
        }
        other => Err(QueryError::UnknownVerb { verb: other.to_string() }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_verb() {
        assert_eq!(
            parse_query("lookup Aspirin in pubmed round 2").unwrap(),
            Query::Lookup {
                entity: "aspirin".into(),
                corpus: Some("pubmed".into()),
                round: Some(2),
                since: None,
            }
        );
        assert_eq!(
            parse_query("cooccur aspirin warfarin").unwrap(),
            Query::Cooccur { left: "aspirin".into(), right: "warfarin".into(), corpus: None }
        );
        assert_eq!(
            parse_query("stats tp53 top 5").unwrap(),
            Query::Stats { entity: "tp53".into(), corpus: None, round: None, since: None, top: 5 }
        );
    }

    #[test]
    fn parses_the_since_freshness_clause() {
        assert_eq!(
            parse_query("lookup aspirin since 3").unwrap(),
            Query::Lookup { entity: "aspirin".into(), corpus: None, round: None, since: Some(3) }
        );
        assert_eq!(
            parse_query("stats tp53 since 2 top 1").unwrap(),
            Query::Stats { entity: "tp53".into(), corpus: None, round: None, since: Some(2), top: 1 }
        );
        assert_eq!(
            parse_query("lookup a since 1 since 2"),
            Err(QueryError::DuplicateClause { clause: "since" })
        );
        assert_eq!(
            parse_query("lookup a since"),
            Err(QueryError::MissingArgument { what: "number after 'since'" })
        );
        assert_eq!(
            parse_query("lookup a since soon"),
            Err(QueryError::BadNumber { clause: "since", got: "soon".into() })
        );
        // cooccur does not take freshness clauses
        assert_eq!(
            parse_query("cooccur a b since 1"),
            Err(QueryError::UnexpectedToken { token: "since".into() })
        );
    }

    #[test]
    fn rejects_malformed_queries_with_typed_errors() {
        assert_eq!(parse_query("   "), Err(QueryError::Empty));
        assert_eq!(
            parse_query("droptable x"),
            Err(QueryError::UnknownVerb { verb: "droptable".into() })
        );
        assert_eq!(
            parse_query("lookup"),
            Err(QueryError::MissingArgument { what: "entity after 'lookup'" })
        );
        assert_eq!(
            parse_query("lookup aspirin round many"),
            Err(QueryError::BadNumber { clause: "round", got: "many".into() })
        );
        assert_eq!(
            parse_query("lookup aspirin top 3"),
            Err(QueryError::UnexpectedToken { token: "top".into() })
        );
        assert_eq!(
            parse_query("stats x in a in b"),
            Err(QueryError::DuplicateClause { clause: "in" })
        );
        assert_eq!(
            parse_query("cooccur aspirin"),
            Err(QueryError::MissingArgument { what: "second entity after 'cooccur'" })
        );
        // errors render without panicking
        assert!(parse_query("lookup aspirin round x")
            .unwrap_err()
            .to_string()
            .contains("round"));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input() {
        for garbage in [
            "", " \t ", "lookup \u{0}", "stats e top 99999999999999999999",
            "in in in", "lookup a b c", "cooccur a b in", "round",
        ] {
            let _ = parse_query(garbage); // must return, not panic
        }
    }
}
