//! The sharded extraction store.
//!
//! Layout: posting lists in `BTreeMap<PostingKey, Vec<Posting>>` per
//! shard, sharded by entity key range. [`PostingKey`] orders by
//! `(entity, type, corpus, round)` and [`shard_for`] assigns every key
//! whose entity shares a first byte to the same shard, so shards own
//! contiguous, non-overlapping key ranges — concatenating the shards in
//! index order walks every posting list in global key order, which is
//! what makes query results (and [`ExtractionStore::content_digest`])
//! invariant under resharding.
//!
//! Each [`Posting`] carries source provenance — the page id and the byte
//! span of the mention inside that page's text — so every served answer
//! can point back at the crawled sentence it came from (the WebIE
//! "faithful to the source" requirement).

use std::collections::BTreeMap;

use websift_flow::{Record, StoreSink, Value};

/// The dataset name the store ingests as entity mentions; a pipeline
/// writes to it via `plan.store_sink(node, store_name, ENTITY_DATASET)`.
pub const ENTITY_DATASET: &str = "entities";

/// How a mention was extracted (the paper's dictionary vs. ML annotator
/// split). Stored per posting so serving can filter or weight by method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Method {
    Dict,
    Ml,
    /// Annotator did not say — kept distinct rather than guessed.
    Unknown,
}

impl Method {
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Dict => "dict",
            Method::Ml => "ml",
            Method::Unknown => "unknown",
        }
    }

    pub fn from_name(name: &str) -> Method {
        match name {
            "dict" => Method::Dict,
            "ml" => Method::Ml,
            _ => Method::Unknown,
        }
    }
}

/// Posting-list key: which entity, in which corpus, from which crawl
/// round. Entity first so the derived `Ord` (and therefore the shard
/// ranges) spread by entity name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct PostingKey {
    /// Lowercased surface form of the entity.
    pub entity: String,
    /// Entity type ("gene", "drug", "disease", ...).
    pub etype: String,
    /// Corpus the mention came from.
    pub corpus: String,
    /// Crawl round that produced the mention.
    pub round: u32,
}

/// One mention occurrence with source provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Posting {
    /// Page (document) id the mention was extracted from.
    pub page: u64,
    /// Byte span of the mention inside the page text.
    pub start: u64,
    pub end: u64,
    /// Extraction method that produced it.
    pub method: Method,
}

/// Shard index for `entity` in a store of `shards` shards: a static
/// range partition on the entity's first byte. A pure function of
/// `(entity, shards)`, so the same key always lands in the same shard
/// and shard ranges are contiguous.
pub fn shard_for(entity: &str, shards: usize) -> usize {
    let first = entity.as_bytes().first().copied().unwrap_or(0) as usize;
    first * shards / 256
}

/// One key-range shard: its slice of the posting lists.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Shard {
    pub postings: BTreeMap<PostingKey, Vec<Posting>>,
}

/// The persistent extraction store.
///
/// Ingest happens through [`StoreSink::append`] (fed by
/// `Executor::run_into`) or [`ExtractionStore::insert`]; postings within
/// one list keep ingest order, so the store's content is a pure function
/// of the ingested record sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractionStore {
    name: String,
    shards: Vec<Shard>,
    /// Crawl round stamped on newly ingested postings.
    round: u32,
    /// Records accepted through the sink interface.
    ingested_records: u64,
    /// Records offered to a dataset the store does not model; counted
    /// rather than silently dropped so benches and tests can assert on
    /// it.
    ignored_records: u64,
}

impl ExtractionStore {
    /// A store named `name` with `shards` key-range shards (>= 1).
    pub fn new(name: &str, shards: usize) -> ExtractionStore {
        assert!(shards >= 1, "a store needs at least one shard");
        ExtractionStore {
            name: name.to_string(),
            shards: vec![Shard::default(); shards],
            round: 0,
            ingested_records: 0,
            ignored_records: 0,
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    pub fn round(&self) -> u32 {
        self.round
    }

    /// Sets the crawl round stamped on subsequent ingests.
    pub fn set_round(&mut self, round: u32) {
        self.round = round;
    }

    pub fn ingested_records(&self) -> u64 {
        self.ingested_records
    }

    pub fn ignored_records(&self) -> u64 {
        self.ignored_records
    }

    /// Total number of posting entries across all lists.
    pub fn posting_count(&self) -> u64 {
        self.shards
            .iter()
            .flat_map(|s| s.postings.values())
            .map(|l| l.len() as u64)
            .sum()
    }

    /// Number of distinct posting keys.
    pub fn key_count(&self) -> usize {
        self.shards.iter().map(|s| s.postings.len()).sum()
    }

    /// Appends one posting to its key's list (in the key's shard).
    pub fn insert(&mut self, key: PostingKey, posting: Posting) {
        let shard = shard_for(&key.entity, self.shards.len());
        self.shards[shard].postings.entry(key).or_default().push(posting);
    }

    /// All posting lists in global key order (shards own contiguous
    /// ranges, so chaining them in index order is already sorted).
    pub fn iter(&self) -> impl Iterator<Item = (&PostingKey, &Vec<Posting>)> {
        self.shards.iter().flat_map(|s| s.postings.iter())
    }

    /// Posting lists for one entity (every type / corpus / round), in
    /// key order. Touches exactly one shard.
    pub fn lookup_entity(&self, entity: &str) -> Vec<(&PostingKey, &Vec<Posting>)> {
        let shard = &self.shards[shard_for(entity, self.shards.len())];
        let from = PostingKey {
            entity: entity.to_string(),
            etype: String::new(),
            corpus: String::new(),
            round: 0,
        };
        shard
            .postings
            .range(from..)
            .take_while(|(k, _)| k.entity == entity)
            .collect()
    }

    /// Ingests one pipeline output record: page id from `id`, corpus
    /// from `corpus`, one posting per span in the `entities` annotation
    /// array. Records without a page id or entity spans count as
    /// ignored, not errors — extraction output is heterogeneous.
    pub fn ingest_record(&mut self, record: &Record) {
        let Some(page) = record.get("id").and_then(Value::as_int) else {
            self.ignored_records += 1;
            return;
        };
        let corpus = record
            .get("corpus")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
        let Some(mentions) = record.get("entities").and_then(Value::as_array) else {
            self.ignored_records += 1;
            return;
        };
        self.ingested_records += 1;
        let round = self.round;
        for mention in mentions {
            let Some(obj) = mention.as_object() else { continue };
            let Some(name) = obj.get("name").and_then(Value::as_str) else { continue };
            let key = PostingKey {
                entity: name.to_lowercase(),
                etype: obj
                    .get("type")
                    .and_then(Value::as_str)
                    .unwrap_or("")
                    .to_string(),
                corpus: corpus.clone(),
                round,
            };
            let posting = Posting {
                page: page as u64,
                start: obj.get("start").and_then(Value::as_int).unwrap_or(0) as u64,
                end: obj.get("end").and_then(Value::as_int).unwrap_or(0) as u64,
                method: Method::from_name(
                    obj.get("method").and_then(Value::as_str).unwrap_or(""),
                ),
            };
            self.insert(key, posting);
        }
    }

    /// Digest of the store's logical content — shard-count invariant,
    /// because [`ExtractionStore::iter`] is.
    pub fn content_digest(&self) -> u64 {
        crate::snapshot::content_digest(self)
    }

    /// Restores the non-content state a snapshot carries alongside the
    /// posting lists.
    pub(crate) fn restore_counters(&mut self, round: u32, ingested: u64, ignored: u64) {
        self.round = round;
        self.ingested_records = ingested;
        self.ignored_records = ignored;
    }
}

impl StoreSink for ExtractionStore {
    fn store_name(&self) -> &str {
        &self.name
    }

    fn append(&mut self, dataset: &str, records: Vec<Record>) {
        if dataset == ENTITY_DATASET {
            for record in &records {
                self.ingest_record(record);
            }
        } else {
            self.ignored_records += records.len() as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websift_flow::span_annotation;

    fn mention_record(page: i64, corpus: &str, names: &[(&str, usize)]) -> Record {
        let mut r = Record::new();
        r.set("id", page).set("corpus", corpus);
        for (name, start) in names {
            r.push_to(
                "entities",
                span_annotation(*start, start + name.len(), &[
                    ("name", Value::from(*name)),
                    ("type", Value::from("drug")),
                    ("method", Value::from("dict")),
                ]),
            );
        }
        r
    }

    #[test]
    fn ingest_builds_posting_lists_with_provenance() {
        let mut store = ExtractionStore::new("serve", 4);
        store.ingest_record(&mention_record(7, "pubmed", &[("Aspirin", 3), ("aspirin", 40)]));
        store.ingest_record(&mention_record(9, "pubmed", &[("aspirin", 0)]));

        assert_eq!(store.posting_count(), 3);
        assert_eq!(store.key_count(), 1); // case-folded to one key
        let lists = store.lookup_entity("aspirin");
        assert_eq!(lists.len(), 1);
        let (key, postings) = lists[0];
        assert_eq!(key.corpus, "pubmed");
        assert_eq!(key.etype, "drug");
        assert_eq!(postings[0], Posting { page: 7, start: 3, end: 10, method: Method::Dict });
        assert_eq!(postings[2].page, 9);
    }

    #[test]
    fn shard_assignment_is_contiguous_and_total() {
        // in-range, and monotone in the first byte (contiguous ranges)
        for shards in [1, 2, 4, 16, 256] {
            let mut last = 0;
            for b in 0u8..=127 {
                let entity = (b as char).to_string();
                let s = shard_for(&entity, shards);
                assert!(s < shards);
                assert!(s >= last);
                last = s;
            }
        }
        assert_eq!(shard_for("", 4), 0); // empty entity is still placed
    }

    #[test]
    fn content_is_shard_count_invariant() {
        let records: Vec<Record> = (0..20)
            .map(|i| mention_record(i, "web", &[("ibuprofen", 5), ("warfarin", 30)]))
            .collect();
        let mut a = ExtractionStore::new("serve", 1);
        let mut b = ExtractionStore::new("serve", 16);
        for r in &records {
            a.ingest_record(r);
            b.ingest_record(r);
        }
        assert_eq!(a.content_digest(), b.content_digest());
        assert_eq!(
            a.iter().collect::<Vec<_>>(),
            b.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn sink_interface_counts_unknown_datasets() {
        let mut store = ExtractionStore::new("serve", 2);
        store.append(ENTITY_DATASET, vec![mention_record(1, "web", &[("statin", 0)])]);
        store.append("aux", vec![Record::new(), Record::new()]);
        assert_eq!(store.ingested_records(), 1);
        assert_eq!(store.ignored_records(), 2);
    }

    #[test]
    fn rounds_stamp_new_postings() {
        let mut store = ExtractionStore::new("serve", 2);
        store.ingest_record(&mention_record(1, "web", &[("statin", 0)]));
        store.set_round(1);
        store.ingest_record(&mention_record(2, "web", &[("statin", 0)]));
        let lists = store.lookup_entity("statin");
        assert_eq!(lists.len(), 2);
        assert_eq!(lists[0].0.round, 0);
        assert_eq!(lists[1].0.round, 1);
    }
}
