//! Declarative analysis with the Meteor-like script front end: compile a
//! script against the standard operator registry, optimize it, and execute
//! it over generated documents — "complex information acquisition and
//! extraction from the web as an almost effortless end-to-end task".
//!
//! ```text
//! cargo run --release --example meteor_script
//! ```

use std::collections::HashMap;
use websift::corpus::{CorpusKind, Generator};
use websift::flow::{compile, optimize, ExecutionConfig, Executor, Value};
use websift::pipeline::{documents_to_records, ExperimentContext};

const SCRIPT: &str = "
    # the paper's Fig-2 pipeline, linguistic branch, as a Meteor script
    $pages    = read 'crawl';
    $bounded  = apply base.filter_length $pages;
    $repaired = apply wa.repair_markup $bounded;
    $net      = apply wa.extract_net_text $repaired;
    $clean    = apply dc.filter_empty_text $net;
    $sents    = apply ie.annotate_sentences $clean;
    $neg      = apply ie.annotate_negation $sents;
    $genes    = apply ie.annotate_entities_dict_gene $neg;
    write $genes 'annotated';
";

fn main() {
    let ctx = ExperimentContext::tiny(3);
    let mut plan = compile(SCRIPT, &ctx.registry).expect("script compiles");
    println!(
        "compiled plan: {} operators, sources {:?}, sinks {:?}",
        plan.operator_count(),
        plan.sources(),
        plan.sinks()
    );
    let rewrites = optimize(&mut plan);
    println!("optimizer applied {} rewrites: {rewrites:?}", rewrites.len());

    let docs = Generator::with_lexicon(CorpusKind::RelevantWeb, 5, ctx.lexicon.clone()).documents(6);
    let mut inputs = HashMap::new();
    inputs.insert("crawl".to_string(), documents_to_records(&docs));
    let out = Executor::new(ExecutionConfig::local(4))
        .run(&plan, inputs)
        .expect("flow executes");

    let records = &out.sinks["annotated"];
    let negations: usize = records
        .iter()
        .map(|r| r.get("negation").and_then(Value::as_array).map(<[Value]>::len).unwrap_or(0))
        .sum();
    let genes: usize = records
        .iter()
        .map(|r| r.get("entities").and_then(Value::as_array).map(<[Value]>::len).unwrap_or(0))
        .sum();
    println!(
        "executed over {} web pages -> {} annotated records, {negations} negations, {genes} gene mentions",
        docs.len(),
        records.len()
    );
    println!(
        "metrics: {:.1} ms wall, {} operator stages, {} bytes shuffled/stored",
        out.metrics.wall_ms,
        out.metrics.per_op.len(),
        out.metrics.network_bytes
    );
}
