//! A complete focused crawl of the simulated web: seed generation via the
//! simulated search engines, Naive-Bayes-guided crawling, and the harvest
//! report with PageRank'd top domains (the §2/§4.1 story end to end).
//!
//! ```text
//! cargo run --release --example focused_crawl
//! ```

use websift::corpus::{Lexicon, LexiconScale, SearchCategory};
use websift::crawler::{
    default_engines, generate_seeds, train_focus_classifier, CrawlConfig, FocusedCrawler,
};
use websift::web::pagerank::{aggregate_by_group, top_k};
use websift::web::{pagerank, SimulatedWeb, WebGraph, WebGraphConfig};

fn main() {
    // A mid-size simulated web (~10k pages).
    let web = SimulatedWeb::new(WebGraph::generate(WebGraphConfig {
        hosts: 200,
        ..WebGraphConfig::default()
    }));
    println!(
        "simulated web: {} hosts, {} pages",
        web.graph().num_hosts(),
        web.graph().num_pages()
    );

    // Seed generation from disease/gene keyword queries.
    let lexicon = Lexicon::generate(LexiconScale::default_scale());
    let queries: Vec<String> = lexicon
        .search_terms(SearchCategory::Disease, 120)
        .into_iter()
        .chain(lexicon.search_terms(SearchCategory::Gene, 120))
        .map(|t| t.to_lowercase())
        .collect();
    let seeds = generate_seeds(&web, &mut default_engines(&web), &queries);
    println!("seed generation: {} queries -> {} seed URLs", queries.len(), seeds.urls.len());

    // Train the focus classifier (Medline vs common-crawl-like) and crawl.
    let classifier = train_focus_classifier(300, 4.0, 7);
    let mut crawler = FocusedCrawler::new(
        &web,
        classifier,
        CrawlConfig {
            max_pages: 4_000,
            threads: 8,
            ..CrawlConfig::default()
        },
    );
    let report = crawler.crawl(seeds.urls);

    println!(
        "\ncrawl finished: {} relevant + {} irrelevant pages, harvest rate {:.1}% \
         ({:.1}% by bytes), {:.1} docs/simulated-second",
        report.relevant.len(),
        report.irrelevant.len(),
        report.harvest_rate() * 100.0,
        report.harvest_rate_bytes() * 100.0,
        report.docs_per_sec()
    );
    let (mime, length, lang) = report.filter_stats.reduction_fractions();
    println!(
        "filter reductions: MIME {:.1}%, length {:.1}%, language {:.1}%; duplicates {}, failures {}",
        mime * 100.0,
        length * 100.0,
        lang * 100.0,
        report.duplicates,
        report.failed
    );

    // Top-10 domains by PageRank over the crawled link graph (Table 2).
    let scores = pagerank(crawler.linkdb.adjacency(), 0.85, 40);
    let (groups, names) = crawler.linkdb.host_groups();
    let host_scores = aggregate_by_group(&scores, &groups, names.len());
    println!("\ntop 10 domains by PageRank:");
    for (rank, &h) in top_k(&host_scores, 10).iter().enumerate() {
        println!("  {:>2}. {} ({:.5})", rank + 1, names[h], host_scores[h]);
    }
}
