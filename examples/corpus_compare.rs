//! The paper's headline use case in miniature: compare the "web view" of
//! biomedicine with the scientific literature. Generates all four corpora,
//! runs the consolidated analysis flow over each, and prints the
//! linguistic and entity comparisons (Figs. 6/7, Table 4's shape).
//!
//! ```text
//! cargo run --release --example corpus_compare
//! ```

use websift::corpus::CorpusKind;
use websift::ner::{EntityType, Method};
use websift::pipeline::{
    aggregate, aggregate_entities, compare, full_analysis_plan, run_over_documents,
    ExperimentContext, Measure,
};

fn main() {
    println!("building corpora and IE resources (dictionaries, CRF taggers)...");
    let ctx = ExperimentContext::tiny(11);
    let plan = full_analysis_plan(&ctx.resources);
    println!(
        "analysis flow: {} elementary operators, sinks {:?}\n",
        plan.operator_count(),
        plan.sinks()
    );

    let mut linguistic = Vec::new();
    for kind in CorpusKind::all() {
        let docs = ctx.corpora.get(kind);
        let out = run_over_documents(&plan, docs, 4).expect("flow runs");
        let ling = aggregate(&out.sinks["linguistic"]);
        let ents = aggregate_entities(&out.sinks["entities"]);
        println!(
            "{:<17} {:>4} docs | mean doc {:>6.0} chars | negation {:>6.1}/1000 sents | \
             genes dict/ML {:>3}/{:>3} distinct",
            kind.name(),
            ling.documents,
            ling.doc_length.as_ref().map(|d| d.mean).unwrap_or(0.0),
            ling.negation_per_1000_sentences,
            ents.distinct_names(EntityType::Gene, Method::Dictionary),
            ents.distinct_names(EntityType::Gene, Method::Ml),
        );
        linguistic.push((kind, ling));
    }

    // Significance of the relevant-vs-Medline document-length difference.
    let rel = &linguistic.iter().find(|(k, _)| *k == CorpusKind::RelevantWeb).unwrap().1;
    let medline = &linguistic.iter().find(|(k, _)| *k == CorpusKind::Medline).unwrap().1;
    if let Some(test) = compare(rel, medline, Measure::DocumentLength) {
        println!(
            "\nMann-Whitney U, relevant vs Medline document length: P = {:.2e} ({}significant at 0.01)",
            test.p_value,
            if test.significant_at(0.01) { "" } else { "not " }
        );
    }
}
