//! Quickstart: generate a small biomedical corpus, run the linguistic
//! analysis flow over it, and tag entities in one document.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use websift::corpus::{CorpusKind, Generator, Lexicon, LexiconScale};
use websift::flow::{IeConfig, IeResources};
use websift::ner::EntityType;
use websift::pipeline::flows;

fn main() {
    // 1. A deterministic Medline-like corpus.
    let generator = Generator::new(CorpusKind::Medline, 42);
    let docs = generator.documents(25);
    println!("generated {} abstracts; first title: {}", docs.len(), docs[0].title);

    // 2. Linguistic analysis through the data-flow engine.
    let report = flows::linguistic_report(&docs);
    println!(
        "linguistic flow: {} sentences, {} negations, {} pronouns, {} parentheticals",
        report.sentences, report.negations, report.pronouns, report.parentheses
    );

    // 3. Entity extraction on one document with both method families.
    let lexicon = Arc::new(Lexicon::generate(LexiconScale::tiny()));
    let resources = IeResources::standard(
        &lexicon,
        IeConfig {
            crf_training_sentences: 80,
            crf_epochs: 3,
            ..IeConfig::default()
        },
    );
    let local_docs = Generator::with_lexicon(CorpusKind::Medline, 7, lexicon).documents(1);
    let text = &local_docs[0].body;
    println!("\nsample text: {}", &text[..text.len().min(200)]);
    for entity in EntityType::all() {
        let dict = resources.dict[&entity].tag(text);
        let ml = resources.crf[&entity].tag(text);
        println!(
            "{entity}: dictionary found {:?}, ML found {:?}",
            dict.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
            ml.iter().map(|m| m.name.as_str()).collect::<Vec<_>>(),
        );
    }
}
