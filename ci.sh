#!/usr/bin/env bash
# Tier-1 gate plus the workspace lint wall and the observability smoke
# check. Criterion benches stay behind the bench crate's [[bench]]
# targets and are not built here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: a small traced flow must yield parseable
# folded-stack (flamegraph) output — "scope;path <integer usecs>" lines.
folded="$(cargo run -q --release -p websift-bench --bin exp_profile -- --folded)"
echo "$folded" | awk '
  NF != 2 { print "bad folded line: " $0; bad = 1 }
  $2 !~ /^[0-9]+$/ { print "non-integer count: " $0; bad = 1 }
  END {
    if (NR == 0) { print "folded-stack output is empty"; exit 1 }
    exit bad
  }'
echo "exp_profile smoke: $(echo "$folded" | wc -l) folded stacks ok"

# Determinism lint wall: wall-clock reads, hash iteration feeding
# deterministic outputs, and unwrap() in untrusted-input parsers are all
# hard failures unless carrying a justified lint:allow.
cargo run -q --release -p websift-analyze --bin repo_lint

# Static-analyzer smoke: the known-bad plans must produce diagnostics,
# and the JSON report must be byte-identical across runs.
analyze_a="$(cargo run -q --release -p websift-bench --bin exp_analyze -- --json)"
analyze_b="$(cargo run -q --release -p websift-bench --bin exp_analyze -- --json)"
if [ -z "$analyze_a" ]; then
  echo "exp_analyze --json produced no output" >&2
  exit 1
fi
if [ "$analyze_a" != "$analyze_b" ]; then
  echo "exp_analyze --json is not byte-stable across runs" >&2
  exit 1
fi
if ! echo "$analyze_a" | grep -q 'WS001'; then
  echo "exp_analyze --json is missing expected diagnostics" >&2
  exit 1
fi
echo "exp_analyze smoke: deterministic diagnostics ok"

# Field-flow explain differential: statically predicted fusion/combining
# stage decisions must equal the executor's actual decisions on random
# plans, and WS013–WS015 verdicts must survive optimizer rewrites.
PROPTEST_CASES=64 cargo test -q -p websift-flow --test explain
echo "explain differential: predicted stages == executed stages ok"

# Explain artifact smoke: render the fusion/combining explain twice
# in-process and fail on byte drift or predicted-vs-executed mismatch.
cargo run -q --release -p websift-bench --bin exp_analyze -- --quick --check > /dev/null
echo "exp_analyze check: explain byte-stable and matches executor decisions ok"

# Partial-aggregation equivalence: the combining executor must be
# byte-identical to the uncombined one on every deterministic surface.
# Cases are pinned so CI explores the same search space every run.
PROPTEST_CASES=64 cargo test -q -p websift-flow --test partial_agg
echo "partial_agg: combining equivalence holds ok"

# Batched-execution equivalence: any batch size must be byte-identical
# to record-at-a-time on every deterministic surface, across fusion and
# combining toggles, DoP {1,4,8}, fault seeds, fan-out tee plans, and
# kill/resume with mismatched batch sizes. Cases pinned as above.
PROPTEST_CASES=64 cargo test -q -p websift-flow --test batch
echo "batch: batched == record-at-a-time equivalence holds ok"

# Fusion + combining throughput smoke: the fused executor must not
# regress wall-clock records/sec against its own unfused mode, and
# combining must never lose to uncombined — including at DoP 1, where no
# parallelism hides the fold — and the default batch size must not lose
# to record-at-a-time dispatch at DoP 1 (--check exits non-zero below a
# 0.95x ratio on any gate).
cargo run -q --release -p websift-bench --bin exp_throughput -- --quick --check
echo "exp_throughput smoke: fused, combined, and batched throughput hold up ok"

# Serving-layer smoke: query responses must be byte-identical across
# shard counts and across snapshot/resume (--check exits non-zero on any
# digest mismatch), with admission-controlled concurrent clients.
cargo run -q --release -p websift-bench --bin exp_serve -- --quick --check > /dev/null
echo "exp_serve smoke: serving digests identical across shards and snapshot/resume ok"

# Live incremental-execution smoke: the incremental session, a batch
# full recompute, and a killed-and-resumed session must agree on every
# store digest, and the delta pass must beat the recompute per new
# document from round 2 on (--check exits non-zero otherwise).
cargo run -q --release -p websift-bench --bin exp_live -- --quick --check > /dev/null
echo "exp_live smoke: incremental == recompute == resumed digests, delta pass wins ok"

# Sharded-execution equivalence: N worker shards (threads or real OS
# processes exchanging length-prefixed frames) must be byte-identical to
# the in-process engine on every deterministic surface, including
# kill-and-resume at mismatched shard counts and spill-to-disk reduces.
# Cases pinned as above.
PROPTEST_CASES=64 cargo test -q -p websift-flow --test shuffle
echo "shuffle: sharded == in-process equivalence holds ok"

# Sharded scale-out smoke: every shard count (worker threads and real
# worker processes) must reproduce the unsharded run's deterministic
# digest (--check exits non-zero on any divergence).
cargo run -q --release -p websift-bench --bin exp_shuffle -- --quick --check > /dev/null
echo "exp_shuffle smoke: digests identical across shard counts ok"
