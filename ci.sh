#!/usr/bin/env bash
# Tier-1 gate plus the resilience lint wall. Criterion benches stay
# behind the bench crate's [[bench]] targets and are not built here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy -p websift-resilience -- -D warnings
