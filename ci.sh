#!/usr/bin/env bash
# Tier-1 gate plus the workspace lint wall and the observability smoke
# check. Criterion benches stay behind the bench crate's [[bench]]
# targets and are not built here.
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: a small traced flow must yield parseable
# folded-stack (flamegraph) output — "scope;path <integer usecs>" lines.
folded="$(cargo run -q --release -p websift-bench --bin exp_profile -- --folded)"
echo "$folded" | awk '
  NF != 2 { print "bad folded line: " $0; bad = 1 }
  $2 !~ /^[0-9]+$/ { print "non-integer count: " $0; bad = 1 }
  END {
    if (NR == 0) { print "folded-stack output is empty"; exit 1 }
    exit bad
  }'
echo "exp_profile smoke: $(echo "$folded" | wc -l) folded stacks ok"
